//! The SecComm composite protocol and its runnable endpoints.

use crate::crypto::{des_decrypt, des_encrypt, keyed_md5, xor_cipher, DesKey};
use pdo_cactus::{CompositeBuilder, CompositeProtocol, EventProgram};
use pdo_events::wire::{Arrival, FaultyWire, WireFaults, WireStats};
use pdo_events::{Runtime, RuntimeError};
use pdo_ir::{EventId, RaiseMode, Value};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt;
use std::rc::Rc;

/// The configuration measured in the paper's Fig 12: DES + XOR + the
/// coordinator.
pub const CONFIG_PAPER: &[&str] = &["Coordinator", "DESPrivacy", "XorPrivacy"];

/// The full configuration: paper config plus keyed-MD5 integrity (the Fig 2
/// style richer stack).
pub const CONFIG_FULL: &[&str] = &[
    "Coordinator",
    "DESPrivacy",
    "XorPrivacy",
    "KeyedMd5Integrity",
];

/// Session keys for the micro-protocols.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Keys {
    /// 8-byte DES key.
    pub des: [u8; 8],
    /// XOR keystream (cycled).
    pub xor: Vec<u8>,
    /// MAC key for keyed MD5.
    pub mac: Vec<u8>,
}

impl Default for Keys {
    fn default() -> Self {
        Keys {
            des: *b"\x13\x34\x57\x79\x9b\xbc\xdf\xf1",
            xor: b"keystream".to_vec(),
            mac: b"integrity-key".to_vec(),
        }
    }
}

/// SecComm failure.
#[derive(Debug)]
pub enum SecCommError {
    /// The event runtime failed.
    Runtime(RuntimeError),
    /// The protocol definition is missing a symbol (indicates a build bug).
    MissingSymbol(String),
    /// `push` produced no wire message / `pop` delivered nothing.
    NoOutput,
    /// KeyedMD5 verification failed on the inbound packet; it was dropped
    /// and counted, and the rest of the decode chain was skipped.
    IntegrityFailure,
}

impl fmt::Display for SecCommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SecCommError::Runtime(e) => write!(f, "runtime error: {e}"),
            SecCommError::MissingSymbol(s) => write!(f, "missing symbol `{s}`"),
            SecCommError::NoOutput => write!(f, "the chain produced no output message"),
            SecCommError::IntegrityFailure => {
                write!(f, "MAC verification failed; packet dropped")
            }
        }
    }
}

impl std::error::Error for SecCommError {}

impl From<RuntimeError> for SecCommError {
    fn from(e: RuntimeError) -> Self {
        SecCommError::Runtime(e)
    }
}

/// Builds the SecComm composite protocol.
///
/// Push path: `msgFromUser` → (coordinator) → `EncodeMsg` (privacy and
/// integrity handlers transform the shared `push_buf`) → `msgToNet`
/// (hands `push_buf` to the network native). Pop path mirrors it through
/// `msgFromNet` → `DecodeMsg` → `msgToUser`.
pub fn seccomm_protocol() -> CompositeProtocol {
    let mut b = CompositeBuilder::new("SecComm");

    let msg_from_user = b.event("msgFromUser");
    let encode = b.event("EncodeMsg");
    let msg_to_net = b.event("msgToNet");
    let msg_from_net = b.event("msgFromNet");
    let decode = b.event("DecodeMsg");
    let msg_to_user = b.event("msgToUser");

    let push_buf = b.global("push_buf", Value::bytes(Vec::new()));
    let pop_buf = b.global("pop_buf", Value::bytes(Vec::new()));

    let n_des_enc = b.native("des_encrypt");
    let n_des_dec = b.native("des_decrypt");
    let n_xor = b.native("xor_apply");
    let n_mac_add = b.native("mac_append");
    let n_mac_strip = b.native("mac_verify_strip");
    let n_net_send = b.native("net_send");
    let n_deliver = b.native("deliver");
    let n_decode_ok = b.native("decode_ok");

    // Coordinator: stages a message into the shared buffer, drives the
    // chain, and hands the result off.
    b.micro_protocol("Coordinator", |mp| {
        mp.handler(msg_from_user, 0, "coord_push", 1, |f| {
            f.lock(push_buf);
            f.store_global(push_buf, f.param(0));
            f.unlock(push_buf);
            f.raise(encode, RaiseMode::Sync, &[]);
            f.raise(msg_to_net, RaiseMode::Sync, &[]);
            f.ret(None);
        });
        mp.handler(msg_to_net, 0, "coord_send", 0, |f| {
            f.lock(push_buf);
            let buf = f.load_global(push_buf);
            f.unlock(push_buf);
            let _ = f.call_native(n_net_send, &[buf]);
            f.ret(None);
        });
        mp.handler(msg_from_net, 0, "coord_pop", 1, |f| {
            f.lock(pop_buf);
            f.store_global(pop_buf, f.param(0));
            f.unlock(pop_buf);
            f.raise(decode, RaiseMode::Sync, &[]);
            f.raise(msg_to_user, RaiseMode::Sync, &[]);
            f.ret(None);
        });
        // Delivery is gated on the integrity verdict: a packet that failed
        // MAC verification is dropped, never handed to the user.
        mp.handler(msg_to_user, 0, "coord_deliver", 0, |f| {
            let work = f.new_block();
            let skip = f.new_block();
            let ok = f.call_native(n_decode_ok, &[]);
            f.branch(ok, work, skip);
            f.switch_to(work);
            f.lock(pop_buf);
            let buf = f.load_global(pop_buf);
            f.unlock(pop_buf);
            let _ = f.call_native(n_deliver, &[buf]);
            f.ret(None);
            f.switch_to(skip);
            f.ret(None);
        });
    });

    // A privacy/integrity handler body: buf = native(buf), under the lock.
    let transform =
        |f: &mut pdo_ir::FunctionBuilder, global: pdo_ir::GlobalId, native: pdo_ir::NativeId| {
            f.lock(global);
            let v = f.load_global(global);
            let out = f.call_native(native, &[v]);
            f.store_global(global, out);
            f.unlock(global);
            f.ret(None);
        };

    // A decode-side transform: same as above, but skipped entirely when the
    // packet already failed MAC verification (so garbage never reaches the
    // cipher layers and cannot fault in DES unpadding).
    let guarded =
        |f: &mut pdo_ir::FunctionBuilder, global: pdo_ir::GlobalId, native: pdo_ir::NativeId| {
            let work = f.new_block();
            let skip = f.new_block();
            let ok = f.call_native(n_decode_ok, &[]);
            f.branch(ok, work, skip);
            f.switch_to(work);
            f.lock(global);
            let v = f.load_global(global);
            let out = f.call_native(native, &[v]);
            f.store_global(global, out);
            f.unlock(global);
            f.ret(None);
            f.switch_to(skip);
            f.ret(None);
        };

    // Encode order: DES (10) then XOR (20) then MAC (30).
    // Decode order mirrors: MAC strip (5), XOR (10), DES (20).
    b.micro_protocol("DESPrivacy", |mp| {
        mp.handler(encode, 10, "des_push", 0, |f| {
            transform(f, push_buf, n_des_enc)
        });
        mp.handler(decode, 20, "des_pop", 0, |f| guarded(f, pop_buf, n_des_dec));
    });
    b.micro_protocol("XorPrivacy", |mp| {
        mp.handler(encode, 20, "xor_push", 0, |f| transform(f, push_buf, n_xor));
        mp.handler(decode, 10, "xor_pop", 0, |f| guarded(f, pop_buf, n_xor));
    });
    b.micro_protocol("KeyedMd5Integrity", |mp| {
        mp.handler(encode, 30, "mac_push", 0, |f| {
            transform(f, push_buf, n_mac_add)
        });
        mp.handler(decode, 5, "mac_pop", 0, |f| {
            transform(f, pop_buf, n_mac_strip)
        });
    });

    b.finish()
}

/// Portable image of an endpoint's native-side wire state: the outbox and
/// delivery queues, the decode verdict for any in-flight packet, and the
/// MAC-failure counter. Exported with [`Endpoint::export_wire`] and applied
/// with [`Endpoint::restore_wire`] so a rebuilt endpoint resumes exactly
/// where the killed one stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SecWireState {
    /// Wire messages produced by the encode chain, not yet taken.
    pub outbox: Vec<Vec<u8>>,
    /// Plaintexts recovered by the decode chain, not yet taken.
    pub delivered: Vec<Vec<u8>>,
    /// Integrity verdict for the packet currently in the decode chain.
    pub decode_ok: bool,
    /// Packets dropped because KeyedMD5 verification failed.
    pub mac_failures: u64,
}

impl Default for SecWireState {
    fn default() -> Self {
        SecWireState {
            outbox: Vec::new(),
            delivered: Vec::new(),
            decode_ok: true,
            mac_failures: 0,
        }
    }
}

/// Shared state of one endpoint's natives.
#[derive(Debug)]
struct Wire {
    outbox: VecDeque<Vec<u8>>,
    delivered: VecDeque<Vec<u8>>,
    /// Integrity verdict for the packet currently in the decode chain;
    /// reset to `true` at the top of each `pop`.
    decode_ok: bool,
    /// Packets dropped because KeyedMD5 verification failed.
    mac_failures: u64,
    /// Wire frames the outbound chain handed to `net_send`. Telemetry
    /// only — deliberately *not* part of [`SecWireState`], whose byte
    /// format is pinned by the golden snapshot fixture.
    frames_sent: u64,
}

impl Default for Wire {
    fn default() -> Self {
        Wire {
            outbox: VecDeque::new(),
            delivered: VecDeque::new(),
            decode_ok: true,
            mac_failures: 0,
            frames_sent: 0,
        }
    }
}

/// A runnable SecComm endpoint.
///
/// `push` runs the outbound chain on a plaintext and returns the wire
/// message; `pop` runs the inbound chain on a wire message and returns the
/// recovered plaintext.
pub struct Endpoint {
    rt: Runtime,
    wire: Rc<RefCell<Wire>>,
    msg_from_user: EventId,
    msg_from_net: EventId,
}

impl fmt::Debug for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Endpoint").field("rt", &self.rt).finish()
    }
}

impl Endpoint {
    /// Builds an endpoint for `program` (the plain program or the
    /// optimizer's extended module via [`EventProgram::with_module`]) using
    /// `keys` for the crypto natives.
    ///
    /// # Errors
    ///
    /// Fails if the program lacks SecComm's events or natives, or if
    /// binding fails.
    pub fn new(program: &EventProgram, keys: &Keys) -> Result<Endpoint, SecCommError> {
        let mut rt = program.runtime()?;
        let wire = Rc::new(RefCell::new(Wire::default()));
        Self::install_natives(&mut rt, keys, &wire)?;
        let find = |name: &str| {
            program
                .module
                .event_by_name(name)
                .ok_or_else(|| SecCommError::MissingSymbol(name.to_string()))
        };
        Ok(Endpoint {
            msg_from_user: find("msgFromUser")?,
            msg_from_net: find("msgFromNet")?,
            rt,
            wire,
        })
    }

    /// Binds the crypto and I/O natives into `rt`.
    fn install_natives(
        rt: &mut Runtime,
        keys: &Keys,
        wire: &Rc<RefCell<Wire>>,
    ) -> Result<(), SecCommError> {
        let bytes_arg = |args: &[Value]| -> Result<Vec<u8>, String> {
            args.first()
                .and_then(Value::as_bytes)
                .map(<[u8]>::to_vec)
                .ok_or_else(|| "expected a bytes argument".to_string())
        };

        let des = DesKey::new(&keys.des);
        let des2 = des.clone();
        let xor_key = keys.xor.clone();
        let mac_key = keys.mac.clone();
        let mac_key2 = keys.mac.clone();
        let mac_wire = Rc::clone(wire);
        let ok_wire = Rc::clone(wire);
        let out_wire = Rc::clone(wire);
        let del_wire = Rc::clone(wire);

        rt.bind_native_by_name("des_encrypt", move |args| {
            Ok(Value::bytes(des_encrypt(&des, &bytes_arg(args)?)))
        })
        .and_then(|()| {
            rt.bind_native_by_name("des_decrypt", move |args| {
                des_decrypt(&des2, &bytes_arg(args)?).map(Value::bytes)
            })
        })
        .and_then(|()| {
            rt.bind_native_by_name("xor_apply", move |args| {
                Ok(Value::bytes(xor_cipher(&xor_key, &bytes_arg(args)?)))
            })
        })
        .and_then(|()| {
            rt.bind_native_by_name("mac_append", move |args| {
                let mut data = bytes_arg(args)?;
                let mac = keyed_md5(&mac_key, &data);
                data.extend_from_slice(&mac);
                Ok(Value::bytes(data))
            })
        })
        .and_then(|()| {
            // Verification failure is not a fault: the packet is dropped and
            // counted, and the `decode_ok` flag tells the rest of the decode
            // chain to skip it.
            rt.bind_native_by_name("mac_verify_strip", move |args| {
                let data = bytes_arg(args)?;
                let verified = data.len() >= 16 && {
                    let (body, mac) = data.split_at(data.len() - 16);
                    keyed_md5(&mac_key2, body) == *mac
                };
                if verified {
                    Ok(Value::bytes(data[..data.len() - 16].to_vec()))
                } else {
                    let mut w = mac_wire.borrow_mut();
                    w.decode_ok = false;
                    w.mac_failures += 1;
                    Ok(Value::bytes(data))
                }
            })
        })
        .and_then(|()| {
            rt.bind_native_by_name("decode_ok", move |_args| {
                Ok(Value::Bool(ok_wire.borrow().decode_ok))
            })
        })
        .and_then(|()| {
            rt.bind_native_by_name("net_send", move |args| {
                let data = bytes_arg(args)?;
                let mut w = out_wire.borrow_mut();
                w.outbox.push_back(data);
                w.frames_sent += 1;
                Ok(Value::Unit)
            })
        })
        .and_then(|()| {
            rt.bind_native_by_name("deliver", move |args| {
                let data = bytes_arg(args)?;
                del_wire.borrow_mut().delivered.push_back(data);
                Ok(Value::Unit)
            })
        })
        .map_err(SecCommError::from)
    }

    /// Pushes a plaintext through the outbound chain; returns the wire
    /// message.
    ///
    /// # Errors
    ///
    /// Propagates handler faults; [`SecCommError::NoOutput`] if the chain
    /// never reached `net_send` (misconfiguration).
    pub fn push(&mut self, payload: &[u8]) -> Result<Vec<u8>, SecCommError> {
        self.rt.raise(
            self.msg_from_user,
            RaiseMode::Sync,
            &[Value::bytes(payload.to_vec())],
        )?;
        self.wire
            .borrow_mut()
            .outbox
            .pop_front()
            .ok_or(SecCommError::NoOutput)
    }

    /// Pops a wire message through the inbound chain; returns the
    /// recovered plaintext.
    ///
    /// # Errors
    ///
    /// Propagates handler faults; [`SecCommError::IntegrityFailure`] if the
    /// packet failed KeyedMD5 verification (dropped and counted, never
    /// delivered); [`SecCommError::NoOutput`] if nothing was delivered.
    pub fn pop(&mut self, wire_msg: &[u8]) -> Result<Vec<u8>, SecCommError> {
        self.wire.borrow_mut().decode_ok = true;
        self.rt.raise(
            self.msg_from_net,
            RaiseMode::Sync,
            &[Value::bytes(wire_msg.to_vec())],
        )?;
        let mut w = self.wire.borrow_mut();
        if !w.decode_ok {
            return Err(SecCommError::IntegrityFailure);
        }
        w.delivered.pop_front().ok_or(SecCommError::NoOutput)
    }

    /// Advances the endpoint's virtual clock by `delta_ns`. SecComm itself
    /// is purely synchronous, so this exists for hosts that attach
    /// time-based daemons (e.g. adaptation epoch hooks) to the session:
    /// ticking between push/pop bursts lets those fire.
    pub fn tick(&mut self, delta_ns: u64) {
        self.rt.advance_clock(delta_ns);
    }

    /// Inbound packets dropped because KeyedMD5 verification failed.
    pub fn mac_failures(&self) -> u64 {
        self.wire.borrow().mac_failures
    }

    /// Wire frames the outbound chain has handed to `net_send` over the
    /// endpoint's lifetime. Not persisted across snapshots (telemetry
    /// only): a restored endpoint restarts at zero.
    pub fn frames_sent(&self) -> u64 {
        self.wire.borrow().frames_sent
    }

    /// Exports the native-side wire state (queues, decode verdict,
    /// MAC-failure counter) for a snapshot.
    pub fn export_wire(&self) -> SecWireState {
        let w = self.wire.borrow();
        SecWireState {
            outbox: w.outbox.iter().cloned().collect(),
            delivered: w.delivered.iter().cloned().collect(),
            decode_ok: w.decode_ok,
            mac_failures: w.mac_failures,
        }
    }

    /// Restores wire state exported by [`Endpoint::export_wire`] into this
    /// (freshly built) endpoint.
    pub fn restore_wire(&mut self, state: SecWireState) {
        let mut w = self.wire.borrow_mut();
        w.outbox = state.outbox.into();
        w.delivered = state.delivered.into();
        w.decode_ok = state.decode_ok;
        w.mac_failures = state.mac_failures;
    }

    /// The underlying runtime (tracing, cost counters, chain installation).
    pub fn runtime_mut(&mut self) -> &mut Runtime {
        &mut self.rt
    }

    /// Read-only runtime access.
    pub fn runtime(&self) -> &Runtime {
        &self.rt
    }
}

/// A sender and receiver [`Endpoint`] joined by a seeded faulty wire.
///
/// The channel models a datagram link: wire messages produced by the
/// sender's encode chain cross a [`FaultyWire`] that can drop, duplicate,
/// reorder, and corrupt them before the receiver's decode chain runs.
/// SecComm carries no sequence numbers, so duplicates decode (and deliver)
/// twice and reordered packets deliver out of order — what matters for the
/// conformance oracle is that an optimized endpoint pair sees byte-for-byte
/// the same arrivals as the plain pair under the same seed.
///
/// Corruption flips one wire bit; under [`CONFIG_FULL`] that lands as a
/// KeyedMD5 verification failure and the packet is dropped and counted, not
/// a handler fault.
pub struct LossyChannel {
    tx: Endpoint,
    rx: Endpoint,
    wire: FaultyWire<Vec<u8>>,
    sent: u64,
    delivered: Vec<Vec<u8>>,
    mac_dropped: u64,
}

impl fmt::Debug for LossyChannel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LossyChannel")
            .field("sent", &self.sent)
            .field("delivered", &self.delivered.len())
            .field("mac_dropped", &self.mac_dropped)
            .field("wire", &self.wire.stats())
            .finish()
    }
}

impl LossyChannel {
    /// Joins `tx` and `rx` over a wire with `faults`.
    pub fn new(tx: Endpoint, rx: Endpoint, faults: WireFaults) -> LossyChannel {
        LossyChannel {
            tx,
            rx,
            wire: FaultyWire::new(faults),
            sent: 0,
            delivered: Vec::new(),
            mac_dropped: 0,
        }
    }

    /// Pushes `payload` through the sender's encode chain and carries the
    /// wire message across the faulty link; every copy that arrives runs
    /// the receiver's decode chain.
    ///
    /// # Errors
    ///
    /// Propagates encode/decode chain faults. MAC verification failures on
    /// corrupted arrivals are *not* errors: the packet is dropped and
    /// counted in [`LossyChannel::mac_dropped`].
    pub fn send(&mut self, payload: &[u8]) -> Result<(), SecCommError> {
        let msg = self.tx.push(payload)?;
        self.sent += 1;
        let t = self.wire.transmit(msg, |m| match m.first_mut() {
            Some(b) => *b ^= 0x80,
            None => m.push(0x80),
        });
        for arrival in t.arrivals {
            self.receive(arrival)?;
        }
        Ok(())
    }

    /// Delivers a frame the wire is still holding for reordering, if any.
    ///
    /// # Errors
    ///
    /// Propagates decode chain faults, as in [`LossyChannel::send`].
    pub fn settle(&mut self) -> Result<(), SecCommError> {
        for arrival in self.wire.flush() {
            self.receive(arrival)?;
        }
        Ok(())
    }

    fn receive(&mut self, arrival: Arrival<Vec<u8>>) -> Result<(), SecCommError> {
        match self.rx.pop(&arrival.item) {
            Ok(plain) => {
                self.delivered.push(plain);
                Ok(())
            }
            Err(SecCommError::IntegrityFailure) => {
                self.mac_dropped += 1;
                Ok(())
            }
            Err(e) => Err(e),
        }
    }

    /// Advances both endpoints' virtual clocks (fires any attached epoch
    /// hooks, e.g. an adaptation engine's).
    pub fn tick(&mut self, delta_ns: u64) {
        self.tx.tick(delta_ns);
        self.rx.tick(delta_ns);
    }

    /// Plaintexts recovered by the receiver, in arrival order.
    pub fn delivered(&self) -> &[Vec<u8>] {
        &self.delivered
    }

    /// Messages pushed into the channel.
    pub fn sent(&self) -> u64 {
        self.sent
    }

    /// Arrivals dropped by KeyedMD5 verification.
    pub fn mac_dropped(&self) -> u64 {
        self.mac_dropped
    }

    /// Fault counters of the underlying wire.
    pub fn wire_stats(&self) -> WireStats {
        self.wire.stats()
    }

    /// The sending endpoint (chain installation, adaptation hooks).
    pub fn tx_mut(&mut self) -> &mut Endpoint {
        &mut self.tx
    }

    /// The receiving endpoint (chain installation, adaptation hooks).
    pub fn rx_mut(&mut self) -> &mut Endpoint {
        &mut self.rx
    }

    /// Read-only access to the sending endpoint.
    pub fn tx(&self) -> &Endpoint {
        &self.tx
    }

    /// Read-only access to the receiving endpoint.
    pub fn rx(&self) -> &Endpoint {
        &self.rx
    }

    /// Replaces both endpoints, returning the old pair. The channel itself
    /// (the faulty wire, its fault schedule, and the delivery log) persists:
    /// it is the network, which survives an endpoint crash. Used by
    /// crash-restart tests that kill an endpoint pair and swap in rebuilt
    /// ones restored from a snapshot.
    pub fn swap_endpoints(&mut self, tx: Endpoint, rx: Endpoint) -> (Endpoint, Endpoint) {
        (
            std::mem::replace(&mut self.tx, tx),
            std::mem::replace(&mut self.rx, rx),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdo_events::TraceConfig;

    fn endpoints(config: &[&str]) -> (Endpoint, Endpoint) {
        let proto = seccomm_protocol();
        let program = proto.instantiate(config).unwrap();
        let keys = Keys::default();
        (
            Endpoint::new(&program, &keys).unwrap(),
            Endpoint::new(&program, &keys).unwrap(),
        )
    }

    #[test]
    fn paper_config_roundtrip() {
        let (mut tx, mut rx) = endpoints(CONFIG_PAPER);
        for len in [0usize, 1, 64, 128, 1024] {
            let msg: Vec<u8> = (0..len).map(|i| i as u8).collect();
            let wire = tx.push(&msg).unwrap();
            assert_ne!(wire, msg, "wire must be encrypted (len {len})");
            assert_eq!(rx.pop(&wire).unwrap(), msg, "len {len}");
        }
    }

    #[test]
    fn full_config_roundtrip_and_tamper_detection() {
        let (mut tx, mut rx) = endpoints(CONFIG_FULL);
        let wire = tx.push(b"payload").unwrap();
        assert_eq!(rx.pop(&wire).unwrap(), b"payload");

        let mut tampered = tx.push(b"payload").unwrap();
        let last = tampered.len() - 1;
        tampered[last] ^= 0xFF;
        assert!(rx.pop(&tampered).is_err(), "tampering must be detected");
    }

    #[test]
    fn tampered_packets_are_dropped_and_counted() {
        let (mut tx, mut rx) = endpoints(CONFIG_FULL);
        let good = tx.push(b"survivor").unwrap();

        // Flipped first byte: the ciphers would see garbage, but the guard
        // skips them, so no handler faults — the packet is just dropped.
        let mut flipped = tx.push(b"flip me").unwrap();
        flipped[0] ^= 0x80;
        assert!(matches!(
            rx.pop(&flipped),
            Err(SecCommError::IntegrityFailure)
        ));
        assert_eq!(rx.mac_failures(), 1);

        // Shorter than a MAC: same drop-and-count path, no fault.
        let mut runt = tx.push(b"too short").unwrap();
        runt.truncate(4);
        assert!(matches!(rx.pop(&runt), Err(SecCommError::IntegrityFailure)));
        assert_eq!(rx.mac_failures(), 2);

        // The endpoint keeps working: the untouched packet still decodes.
        assert_eq!(rx.pop(&good).unwrap(), b"survivor");
        assert_eq!(rx.mac_failures(), 2);
    }

    #[test]
    fn des_only_config() {
        let (mut tx, mut rx) = endpoints(&["Coordinator", "DESPrivacy"]);
        let wire = tx.push(b"just des").unwrap();
        assert_eq!(rx.pop(&wire).unwrap(), b"just des");
    }

    #[test]
    fn xor_only_config() {
        let (mut tx, mut rx) = endpoints(&["Coordinator", "XorPrivacy"]);
        let wire = tx.push(b"just xor").unwrap();
        assert_eq!(wire, xor_cipher(&Keys::default().xor, b"just xor"));
        assert_eq!(rx.pop(&wire).unwrap(), b"just xor");
    }

    #[test]
    fn coordinator_only_is_plaintext_passthrough() {
        let (mut tx, mut rx) = endpoints(&["Coordinator"]);
        let wire = tx.push(b"clear").unwrap();
        assert_eq!(wire, b"clear");
        assert_eq!(rx.pop(&wire).unwrap(), b"clear");
    }

    #[test]
    fn wrong_keys_fail_roundtrip() {
        let proto = seccomm_protocol();
        let program = proto.instantiate(CONFIG_PAPER).unwrap();
        let mut tx = Endpoint::new(&program, &Keys::default()).unwrap();
        let other = Keys {
            des: *b"otherkey",
            ..Keys::default()
        };
        let mut rx = Endpoint::new(&program, &other).unwrap();
        let wire = tx.push(b"secret").unwrap();
        if let Ok(plain) = rx.pop(&wire) {
            assert_ne!(plain, b"secret".to_vec())
        }
    }

    #[test]
    fn push_pop_chains_visible_in_trace() {
        let (mut tx, _) = endpoints(CONFIG_PAPER);
        tx.runtime_mut().set_trace_config(TraceConfig::full());
        let _ = tx.push(b"msg").unwrap();
        let trace = tx.runtime_mut().take_trace();
        let seq: Vec<EventId> = trace.event_sequence().iter().map(|&(e, _)| e).collect();
        // msgFromUser, EncodeMsg, msgToNet.
        assert_eq!(seq.len(), 3);
    }

    #[test]
    fn many_messages_fifo() {
        let (mut tx, mut rx) = endpoints(CONFIG_PAPER);
        for i in 0..20 {
            let msg = vec![i as u8; 32];
            let wire = tx.push(&msg).unwrap();
            assert_eq!(rx.pop(&wire).unwrap(), msg);
        }
    }

    fn channel(faults: WireFaults) -> LossyChannel {
        let (tx, rx) = endpoints(CONFIG_FULL);
        LossyChannel::new(tx, rx, faults)
    }

    #[test]
    fn lossy_channel_perfect_wire_is_lossless_and_ordered() {
        let mut ch = channel(WireFaults::default());
        let msgs: Vec<Vec<u8>> = (0..20u8).map(|i| vec![i; 24]).collect();
        for m in &msgs {
            ch.send(m).unwrap();
        }
        ch.settle().unwrap();
        assert_eq!(ch.delivered(), &msgs[..]);
        assert_eq!(ch.mac_dropped(), 0);
        assert_eq!(ch.wire_stats(), WireStats::default());
    }

    #[test]
    fn lossy_channel_corruption_lands_as_mac_drops() {
        let mut ch = channel(WireFaults {
            corrupt_per_mille: 1000,
            seed: 9,
            ..WireFaults::default()
        });
        for i in 0..10u8 {
            ch.send(&[i; 16]).unwrap();
        }
        ch.settle().unwrap();
        // Every arrival was corrupted: no deliveries, no handler faults,
        // every drop visible both at the channel and in the receiver's
        // own MAC-failure counter.
        assert!(ch.delivered().is_empty());
        assert_eq!(ch.mac_dropped(), 10);
        assert_eq!(ch.wire_stats().corrupted, 10);
        assert_eq!(ch.rx_mut().mac_failures(), 10);
    }

    #[test]
    fn lossy_channel_drops_and_duplicates_have_udp_semantics() {
        let mut ch = channel(WireFaults {
            drop_per_mille: 1000,
            seed: 3,
            ..WireFaults::default()
        });
        for i in 0..5u8 {
            ch.send(&[i; 8]).unwrap();
        }
        assert!(ch.delivered().is_empty());
        assert_eq!(ch.wire_stats().dropped, 5);

        // SecComm carries no sequence numbers: a duplicated wire message
        // decodes and delivers twice.
        let mut ch = channel(WireFaults {
            dup_per_mille: 1000,
            seed: 3,
            ..WireFaults::default()
        });
        ch.send(b"twice").unwrap();
        ch.settle().unwrap();
        assert_eq!(ch.delivered(), &[b"twice".to_vec(), b"twice".to_vec()]);
    }

    #[test]
    fn kill_restore_mid_session_continues_identically() {
        use pdo_ir::GlobalId;

        let proto = seccomm_protocol();
        let program = proto.instantiate(CONFIG_FULL).unwrap();
        let keys = Keys::default();
        let faults = WireFaults {
            drop_per_mille: 150,
            dup_per_mille: 150,
            reorder_per_mille: 250,
            corrupt_per_mille: 200,
            seed: 77,
        };
        let msgs: Vec<Vec<u8>> = (0..24u8).map(|i| vec![i ^ 0x5A; 20]).collect();

        // Reference: an uninterrupted run.
        let reference = {
            let mut ch = LossyChannel::new(
                Endpoint::new(&program, &keys).unwrap(),
                Endpoint::new(&program, &keys).unwrap(),
                faults,
            );
            for m in &msgs {
                ch.send(m).unwrap();
            }
            ch.settle().unwrap();
            (
                ch.delivered().to_vec(),
                ch.mac_dropped(),
                ch.wire_stats(),
                ch.tx().export_wire(),
                ch.rx().export_wire(),
            )
        };

        // Victim: both endpoints are killed and rebuilt from exported state
        // after every message. The channel (the network) persists.
        let mut ch = LossyChannel::new(
            Endpoint::new(&program, &keys).unwrap(),
            Endpoint::new(&program, &keys).unwrap(),
            faults,
        );
        for m in &msgs {
            ch.send(m).unwrap();

            let rebuild = |ep: &Endpoint| {
                let globals: Vec<Value> = (0..program.module.globals.len())
                    .map(|g| ep.runtime().global(GlobalId::from_index(g)).clone())
                    .collect();
                let sched = ep.runtime().export_sched();
                let clock = ep.runtime().clock_ns();
                let wire = ep.export_wire();
                let mut fresh = Endpoint::new(&program, &keys).unwrap();
                for (g, v) in globals.into_iter().enumerate() {
                    fresh.runtime_mut().set_global(GlobalId::from_index(g), v);
                }
                fresh.runtime_mut().restore_sched(sched);
                fresh.runtime_mut().advance_clock(clock);
                fresh.restore_wire(wire);
                fresh
            };
            let (tx, rx) = (rebuild(ch.tx()), rebuild(ch.rx()));
            drop(ch.swap_endpoints(tx, rx));
        }
        ch.settle().unwrap();

        assert_eq!(ch.delivered(), &reference.0[..]);
        assert_eq!(ch.mac_dropped(), reference.1);
        assert_eq!(ch.wire_stats(), reference.2);
        assert_eq!(ch.tx().export_wire(), reference.3);
        assert_eq!(ch.rx().export_wire(), reference.4);
    }

    #[test]
    fn export_restore_wire_round_trips() {
        let (mut tx, mut rx) = endpoints(CONFIG_FULL);
        let wire = tx.push(b"first").unwrap();
        rx.pop(&wire).unwrap();
        let mut bad = tx.push(b"second").unwrap();
        bad[0] ^= 0x80;
        assert!(rx.pop(&bad).is_err());

        let state = rx.export_wire();
        assert_eq!(state.mac_failures, 1);
        assert!(!state.decode_ok);

        let proto = seccomm_protocol();
        let program = proto.instantiate(CONFIG_FULL).unwrap();
        let mut fresh = Endpoint::new(&program, &Keys::default()).unwrap();
        fresh.restore_wire(state.clone());
        assert_eq!(fresh.export_wire(), state);

        // The restored endpoint keeps working and keeps counting from the
        // carried totals.
        let ok = tx.push(b"third").unwrap();
        assert_eq!(fresh.pop(&ok).unwrap(), b"third");
        let mut bad2 = tx.push(b"fourth").unwrap();
        bad2[0] ^= 0x80;
        assert!(fresh.pop(&bad2).is_err());
        assert_eq!(fresh.mac_failures(), 2);
    }

    #[test]
    fn lossy_channel_is_deterministic_per_seed() {
        let faults = WireFaults {
            drop_per_mille: 200,
            dup_per_mille: 200,
            reorder_per_mille: 300,
            corrupt_per_mille: 200,
            seed: 42,
        };
        let run = |faults: WireFaults| {
            let mut ch = channel(faults);
            for i in 0..40u8 {
                ch.send(&[i; 12]).unwrap();
            }
            ch.settle().unwrap();
            (ch.delivered().to_vec(), ch.mac_dropped(), ch.wire_stats())
        };
        assert_eq!(run(faults), run(faults));
    }
}
