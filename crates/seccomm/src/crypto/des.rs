//! DES (Data Encryption Standard), implemented from scratch.
//!
//! The paper's measured SecComm configuration uses DES as one of its two
//! privacy micro-protocols; most of SecComm's execution time is spent in
//! these routines (§4.2), so a faithful reproduction needs a real cipher,
//! not a stub. This is the textbook FIPS 46-3 construction: initial/final
//! permutations, 16 Feistel rounds, and the PC-1/PC-2 key schedule.
//! Messages are padded with PKCS#7 and processed in ECB mode (sufficient
//! for the single-block-chain measurements the paper makes; DES itself is
//! of course obsolete as a security primitive).

/// Initial permutation (IP).
const IP: [u8; 64] = [
    58, 50, 42, 34, 26, 18, 10, 2, 60, 52, 44, 36, 28, 20, 12, 4, 62, 54, 46, 38, 30, 22, 14, 6,
    64, 56, 48, 40, 32, 24, 16, 8, 57, 49, 41, 33, 25, 17, 9, 1, 59, 51, 43, 35, 27, 19, 11, 3, 61,
    53, 45, 37, 29, 21, 13, 5, 63, 55, 47, 39, 31, 23, 15, 7,
];

/// Final permutation (IP⁻¹).
const FP: [u8; 64] = [
    40, 8, 48, 16, 56, 24, 64, 32, 39, 7, 47, 15, 55, 23, 63, 31, 38, 6, 46, 14, 54, 22, 62, 30,
    37, 5, 45, 13, 53, 21, 61, 29, 36, 4, 44, 12, 52, 20, 60, 28, 35, 3, 43, 11, 51, 19, 59, 27,
    34, 2, 42, 10, 50, 18, 58, 26, 33, 1, 41, 9, 49, 17, 57, 25,
];

/// Expansion (E): 32 → 48 bits.
const E: [u8; 48] = [
    32, 1, 2, 3, 4, 5, 4, 5, 6, 7, 8, 9, 8, 9, 10, 11, 12, 13, 12, 13, 14, 15, 16, 17, 16, 17, 18,
    19, 20, 21, 20, 21, 22, 23, 24, 25, 24, 25, 26, 27, 28, 29, 28, 29, 30, 31, 32, 1,
];

/// Round permutation (P).
const P: [u8; 32] = [
    16, 7, 20, 21, 29, 12, 28, 17, 1, 15, 23, 26, 5, 18, 31, 10, 2, 8, 24, 14, 32, 27, 3, 9, 19,
    13, 30, 6, 22, 11, 4, 25,
];

/// Permuted choice 1 (PC-1): 64 → 56 bits.
const PC1: [u8; 56] = [
    57, 49, 41, 33, 25, 17, 9, 1, 58, 50, 42, 34, 26, 18, 10, 2, 59, 51, 43, 35, 27, 19, 11, 3, 60,
    52, 44, 36, 63, 55, 47, 39, 31, 23, 15, 7, 62, 54, 46, 38, 30, 22, 14, 6, 61, 53, 45, 37, 29,
    21, 13, 5, 28, 20, 12, 4,
];

/// Permuted choice 2 (PC-2): 56 → 48 bits.
const PC2: [u8; 48] = [
    14, 17, 11, 24, 1, 5, 3, 28, 15, 6, 21, 10, 23, 19, 12, 4, 26, 8, 16, 7, 27, 20, 13, 2, 41, 52,
    31, 37, 47, 55, 30, 40, 51, 45, 33, 48, 44, 49, 39, 56, 34, 53, 46, 42, 50, 36, 29, 32,
];

/// Left-rotation schedule per round.
const SHIFTS: [u8; 16] = [1, 1, 2, 2, 2, 2, 2, 2, 1, 2, 2, 2, 2, 2, 2, 1];

/// The eight S-boxes.
const SBOX: [[u8; 64]; 8] = [
    [
        14, 4, 13, 1, 2, 15, 11, 8, 3, 10, 6, 12, 5, 9, 0, 7, 0, 15, 7, 4, 14, 2, 13, 1, 10, 6, 12,
        11, 9, 5, 3, 8, 4, 1, 14, 8, 13, 6, 2, 11, 15, 12, 9, 7, 3, 10, 5, 0, 15, 12, 8, 2, 4, 9,
        1, 7, 5, 11, 3, 14, 10, 0, 6, 13,
    ],
    [
        15, 1, 8, 14, 6, 11, 3, 4, 9, 7, 2, 13, 12, 0, 5, 10, 3, 13, 4, 7, 15, 2, 8, 14, 12, 0, 1,
        10, 6, 9, 11, 5, 0, 14, 7, 11, 10, 4, 13, 1, 5, 8, 12, 6, 9, 3, 2, 15, 13, 8, 10, 1, 3, 15,
        4, 2, 11, 6, 7, 12, 0, 5, 14, 9,
    ],
    [
        10, 0, 9, 14, 6, 3, 15, 5, 1, 13, 12, 7, 11, 4, 2, 8, 13, 7, 0, 9, 3, 4, 6, 10, 2, 8, 5,
        14, 12, 11, 15, 1, 13, 6, 4, 9, 8, 15, 3, 0, 11, 1, 2, 12, 5, 10, 14, 7, 1, 10, 13, 0, 6,
        9, 8, 7, 4, 15, 14, 3, 11, 5, 2, 12,
    ],
    [
        7, 13, 14, 3, 0, 6, 9, 10, 1, 2, 8, 5, 11, 12, 4, 15, 13, 8, 11, 5, 6, 15, 0, 3, 4, 7, 2,
        12, 1, 10, 14, 9, 10, 6, 9, 0, 12, 11, 7, 13, 15, 1, 3, 14, 5, 2, 8, 4, 3, 15, 0, 6, 10, 1,
        13, 8, 9, 4, 5, 11, 12, 7, 2, 14,
    ],
    [
        2, 12, 4, 1, 7, 10, 11, 6, 8, 5, 3, 15, 13, 0, 14, 9, 14, 11, 2, 12, 4, 7, 13, 1, 5, 0, 15,
        10, 3, 9, 8, 6, 4, 2, 1, 11, 10, 13, 7, 8, 15, 9, 12, 5, 6, 3, 0, 14, 11, 8, 12, 7, 1, 14,
        2, 13, 6, 15, 0, 9, 10, 4, 5, 3,
    ],
    [
        12, 1, 10, 15, 9, 2, 6, 8, 0, 13, 3, 4, 14, 7, 5, 11, 10, 15, 4, 2, 7, 12, 9, 5, 6, 1, 13,
        14, 0, 11, 3, 8, 9, 14, 15, 5, 2, 8, 12, 3, 7, 0, 4, 10, 1, 13, 11, 6, 4, 3, 2, 12, 9, 5,
        15, 10, 11, 14, 1, 7, 6, 0, 8, 13,
    ],
    [
        4, 11, 2, 14, 15, 0, 8, 13, 3, 12, 9, 7, 5, 10, 6, 1, 13, 0, 11, 7, 4, 9, 1, 10, 14, 3, 5,
        12, 2, 15, 8, 6, 1, 4, 11, 13, 12, 3, 7, 14, 10, 15, 6, 8, 0, 5, 9, 2, 6, 11, 13, 8, 1, 4,
        10, 7, 9, 5, 0, 15, 14, 2, 3, 12,
    ],
    [
        13, 2, 8, 4, 6, 15, 11, 1, 10, 9, 3, 14, 5, 0, 12, 7, 1, 15, 13, 8, 10, 3, 7, 4, 12, 5, 6,
        11, 0, 14, 9, 2, 7, 11, 4, 1, 9, 12, 14, 2, 0, 6, 10, 13, 15, 3, 5, 8, 2, 1, 14, 7, 4, 10,
        8, 13, 15, 12, 9, 0, 3, 5, 6, 11,
    ],
];

/// Applies a 1-based bit-selection table to the top `from_bits` bits of `v`.
fn permute(v: u64, from_bits: u32, table: &[u8]) -> u64 {
    let mut out = 0u64;
    for &t in table {
        out <<= 1;
        out |= (v >> (from_bits - u32::from(t))) & 1;
    }
    out
}

/// A DES key schedule (16 round subkeys), precomputed from an 8-byte key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DesKey {
    subkeys: [u64; 16],
}

impl DesKey {
    /// Derives the key schedule from an 8-byte key (parity bits ignored,
    /// as in the standard).
    pub fn new(key: &[u8; 8]) -> Self {
        let k = u64::from_be_bytes(*key);
        let pc1 = permute(k, 64, &PC1);
        let mut c = (pc1 >> 28) & 0x0FFF_FFFF;
        let mut d = pc1 & 0x0FFF_FFFF;
        let mut subkeys = [0u64; 16];
        for (i, &s) in SHIFTS.iter().enumerate() {
            let s = u32::from(s);
            c = ((c << s) | (c >> (28 - s))) & 0x0FFF_FFFF;
            d = ((d << s) | (d >> (28 - s))) & 0x0FFF_FFFF;
            subkeys[i] = permute((c << 28) | d, 56, &PC2);
        }
        DesKey { subkeys }
    }

    /// Encrypts one 64-bit block.
    pub fn encrypt_block(&self, block: u64) -> u64 {
        self.crypt_block(block, false)
    }

    /// Decrypts one 64-bit block.
    pub fn decrypt_block(&self, block: u64) -> u64 {
        self.crypt_block(block, true)
    }

    fn crypt_block(&self, block: u64, decrypt: bool) -> u64 {
        let ip = permute(block, 64, &IP);
        let mut l = (ip >> 32) as u32;
        let mut r = (ip & 0xFFFF_FFFF) as u32;
        for round in 0..16 {
            let k = if decrypt {
                self.subkeys[15 - round]
            } else {
                self.subkeys[round]
            };
            let f = feistel(r, k);
            let new_r = l ^ f;
            l = r;
            r = new_r;
        }
        // Final swap: R16 || L16.
        let pre = (u64::from(r) << 32) | u64::from(l);
        permute(pre, 64, &FP)
    }
}

fn feistel(r: u32, subkey: u64) -> u32 {
    let expanded = permute(u64::from(r) << 32, 64, &E);
    let x = expanded ^ subkey;
    let mut out = 0u32;
    for (box_idx, sbox) in SBOX.iter().enumerate() {
        let chunk = ((x >> (42 - 6 * box_idx)) & 0x3F) as usize;
        let row = ((chunk & 0x20) >> 4) | (chunk & 1);
        let col = (chunk >> 1) & 0xF;
        out = (out << 4) | u32::from(sbox[row * 16 + col]);
    }
    // P's 1-based indices address a 32-bit word; placing it in the high
    // half of a u64 lines the indices up with `permute`'s convention.
    permute(u64::from(out) << 32, 64, &P) as u32
}

/// Encrypts `data` under `key`, PKCS#7-padded, ECB mode.
pub fn encrypt(key: &DesKey, data: &[u8]) -> Vec<u8> {
    let pad = 8 - data.len() % 8;
    let mut buf = Vec::with_capacity(data.len() + pad);
    buf.extend_from_slice(data);
    buf.extend(std::iter::repeat_n(pad as u8, pad));
    for chunk in buf.chunks_mut(8) {
        let block = u64::from_be_bytes(chunk.try_into().expect("8-byte chunk"));
        chunk.copy_from_slice(&key.encrypt_block(block).to_be_bytes());
    }
    buf
}

/// Decrypts `data` (as produced by [`encrypt`]) and strips the padding.
///
/// # Errors
///
/// Returns a description when the input length or padding is invalid —
/// i.e. the ciphertext was not produced by [`encrypt`] under this key.
pub fn decrypt(key: &DesKey, data: &[u8]) -> Result<Vec<u8>, String> {
    if data.is_empty() || !data.len().is_multiple_of(8) {
        return Err(format!(
            "ciphertext length {} not a positive multiple of 8",
            data.len()
        ));
    }
    let mut buf = data.to_vec();
    for chunk in buf.chunks_mut(8) {
        let block = u64::from_be_bytes(chunk.try_into().expect("8-byte chunk"));
        chunk.copy_from_slice(&key.decrypt_block(block).to_be_bytes());
    }
    let pad = *buf.last().expect("nonempty") as usize;
    if pad == 0 || pad > 8 || pad > buf.len() {
        return Err("invalid padding".to_string());
    }
    if buf[buf.len() - pad..].iter().any(|&b| b as usize != pad) {
        return Err("invalid padding".to_string());
    }
    buf.truncate(buf.len() - pad);
    Ok(buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The classic worked example (used in countless DES tutorials).
    #[test]
    fn fips_test_vector() {
        let key = DesKey::new(&0x133457799BBCDFF1u64.to_be_bytes());
        let ct = key.encrypt_block(0x0123456789ABCDEF);
        assert_eq!(ct, 0x85E813540F0AB405);
        assert_eq!(key.decrypt_block(ct), 0x0123456789ABCDEF);
    }

    /// A second published vector: key == plaintext == 0x8000000000000000.
    #[test]
    fn weak_input_vector() {
        let key = DesKey::new(&0x0101010101010101u64.to_be_bytes());
        let ct = key.encrypt_block(0x8000000000000000);
        assert_eq!(ct, 0x95F8A5E5DD31D900);
    }

    #[test]
    fn roundtrip_various_lengths() {
        let key = DesKey::new(b"8bytekey");
        for len in [0usize, 1, 7, 8, 9, 63, 64, 65, 1000] {
            let msg: Vec<u8> = (0..len).map(|i| (i * 7 + 3) as u8).collect();
            let ct = encrypt(&key, &msg);
            assert_eq!(ct.len() % 8, 0);
            assert!(ct.len() > msg.len(), "padding always added");
            assert_eq!(decrypt(&key, &ct).unwrap(), msg, "len {len}");
        }
    }

    #[test]
    fn ciphertext_differs_from_plaintext() {
        let key = DesKey::new(b"8bytekey");
        let msg = vec![0u8; 64];
        let ct = encrypt(&key, &msg);
        assert_ne!(&ct[..64], &msg[..]);
    }

    #[test]
    fn wrong_key_fails_roundtrip() {
        let k1 = DesKey::new(b"8bytekey");
        let k2 = DesKey::new(b"otherkey");
        let ct = encrypt(&k1, b"attack at dawn");
        if let Ok(pt) = decrypt(&k2, &ct) {
            // Padding usually fails outright; if it happens to parse, the
            // plaintext must still be wrong.
            assert_ne!(pt, b"attack at dawn".to_vec());
        }
    }

    #[test]
    fn malformed_ciphertext_rejected() {
        let key = DesKey::new(b"8bytekey");
        assert!(decrypt(&key, &[]).is_err());
        assert!(decrypt(&key, &[1, 2, 3]).is_err());
    }
}
