//! Cryptographic payload work for SecComm, implemented from scratch:
//! [`des`] (FIPS 46-3), [`md5`] (RFC 1321), and the trivial [`xorcipher`].

pub mod des;
pub mod md5;
pub mod xorcipher;

pub use des::{decrypt as des_decrypt, encrypt as des_encrypt, DesKey};
pub use md5::{digest_hex, keyed_md5, md5};
pub use xorcipher::xor_cipher;
