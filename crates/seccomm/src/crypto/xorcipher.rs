//! The "trivial XOR with a key" cipher of the paper's measured SecComm
//! configuration (§4.2). Zero security, non-zero cost — exactly its role in
//! the evaluation.

/// XORs `data` with `key` repeated cyclically. Self-inverse.
pub fn xor_cipher(key: &[u8], data: &[u8]) -> Vec<u8> {
    if key.is_empty() {
        return data.to_vec();
    }
    data.iter()
        .zip(key.iter().cycle())
        .map(|(d, k)| d ^ k)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn self_inverse() {
        let key = b"sekrit";
        let msg: Vec<u8> = (0..100).collect();
        let ct = xor_cipher(key, &msg);
        assert_ne!(ct, msg);
        assert_eq!(xor_cipher(key, &ct), msg);
    }

    #[test]
    fn empty_key_is_identity() {
        assert_eq!(xor_cipher(&[], &[1, 2, 3]), vec![1, 2, 3]);
    }

    #[test]
    fn empty_data() {
        assert!(xor_cipher(b"k", &[]).is_empty());
    }

    #[test]
    fn key_cycles() {
        let ct = xor_cipher(&[0xFF, 0x00], &[0xAA, 0xAA, 0xAA]);
        assert_eq!(ct, vec![0x55, 0xAA, 0x55]);
    }
}
