//! Directed end-to-end cases for the pass pipeline: the merged-handler
//! shapes the optimizer produces, written out by hand, with exact expected
//! simplifications.

use pdo_ir::interp::{call, BasicEnv};
use pdo_ir::parse::parse_module;
use pdo_ir::{FuncId, GlobalId, Instr, Value};
use pdo_passes::{optimize_single_function, PassManager};

/// The canonical post-merge shape: two handlers' bodies back to back, each
/// with its own lock/load/store block on the same global. The pipeline
/// should coalesce the interior unlock/lock pair, forward the reload, and
/// drop the now-redundant store.
#[test]
fn merged_handler_shape_fully_cleans_up() {
    let text = "global acc = int 0\n\
         func @super(1) {\n\
         b0:\n\
           lock $acc\n\
           r1 = load $acc\n\
           r2 = const int 1\n\
           r3 = add r1, r2\n\
           store $acc, r3\n\
           unlock $acc\n\
           lock $acc\n\
           r4 = load $acc\n\
           r5 = const int 10\n\
           r6 = add r4, r5\n\
           store $acc, r6\n\
           unlock $acc\n\
           ret\n\
         }\n";
    let mut m = parse_module(text).unwrap();
    let before_locks = count_locks(&m);
    assert_eq!(before_locks, 4);
    PassManager::standard().run(&mut m);

    // Behaviour unchanged...
    let mut env = BasicEnv::new(&m);
    call(&m, &mut env, FuncId(0), &[Value::Unit]).unwrap();
    assert_eq!(env.global(GlobalId(0)), &Value::Int(11));
    // ...with a single critical section and a single load of the global.
    assert_eq!(count_locks(&m), 2, "{}", m.functions[0]);
    let loads = m.functions[0]
        .blocks
        .iter()
        .flat_map(|b| &b.instrs)
        .filter(|i| matches!(i, Instr::LoadGlobal { .. }))
        .count();
    assert_eq!(loads, 1, "{}", m.functions[0]);
}

fn count_locks(m: &pdo_ir::Module) -> usize {
    m.functions[0]
        .blocks
        .iter()
        .flat_map(|b| &b.instrs)
        .filter(|i| matches!(i, Instr::Lock { .. } | Instr::Unlock { .. }))
        .count()
}

/// Inlining a helper exposes constants that fold through a branch,
/// collapsing the CFG to a straight line.
#[test]
fn inline_then_fold_collapses_branches() {
    let text = "func @main(0) {\n\
         b0:\n\
           r0 = const int 3\n\
           r1 = call @classify(r0)\n\
           ret r1\n\
         }\n\
         func @classify(1) {\n\
         b0:\n\
           r1 = const int 5\n\
           r2 = lt r0, r1\n\
           br r2, b1, b2\n\
         b1:\n\
           r3 = const int 100\n\
           ret r3\n\
         b2:\n\
           r4 = const int 200\n\
           ret r4\n\
         }\n";
    let mut m = parse_module(text).unwrap();
    PassManager::standard().run(&mut m);
    let main = &m.functions[0];
    assert_eq!(main.blocks.len(), 1, "{main}");
    assert!(main.instr_count() <= 2, "{main}");
    let mut env = BasicEnv::new(&m);
    assert_eq!(call(&m, &mut env, FuncId(0), &[]).unwrap(), Value::Int(100));
}

/// The scoped pipeline must not touch other functions.
#[test]
fn optimize_single_function_is_scoped() {
    let text = "func @a(0) {\n\
         b0:\n\
           r0 = const int 2\n\
           r1 = const int 3\n\
           r2 = mul r0, r1\n\
           ret r2\n\
         }\n\
         func @b(0) {\n\
           b0:\n\
           r0 = const int 2\n\
           r1 = const int 3\n\
           r2 = mul r0, r1\n\
           ret r2\n\
         }\n";
    let mut m = parse_module(text).unwrap();
    let b_before = m.functions[1].clone();
    assert!(optimize_single_function(&mut m, FuncId(0), None));
    assert!(m.functions[0].instr_count() < b_before.instr_count());
    assert_eq!(m.functions[1], b_before, "function b untouched");
}

/// Redundant work across merged handlers: once handler bodies share one
/// block, the duplicated `blen` + comparison become common subexpressions.
#[test]
fn repeated_checks_across_merged_handlers_are_deduplicated() {
    let text = "global count = int 0\n\
         func @super(1) {\n\
         b0:\n\
           r1 = blen r0\n\
           r2 = const int 0\n\
           r3 = gt r1, r2\n\
           r4 = load $count\n\
           r5 = const int 1\n\
           r6 = add r4, r5\n\
           store $count, r6\n\
           r7 = blen r0\n\
           r8 = const int 0\n\
           r9 = gt r7, r8\n\
           r10 = eq r3, r9\n\
           ret r10\n\
         }\n";
    let mut m = parse_module(text).unwrap();
    PassManager::standard().run(&mut m);
    let blens = m.functions[0]
        .blocks
        .iter()
        .flat_map(|b| &b.instrs)
        .filter(|i| matches!(i, Instr::BytesLen { .. }))
        .count();
    assert_eq!(
        blens, 1,
        "duplicate length check removed: {}",
        m.functions[0]
    );
    let gts = m.functions[0]
        .blocks
        .iter()
        .flat_map(|b| &b.instrs)
        .filter(|i| {
            matches!(
                i,
                Instr::Bin {
                    op: pdo_ir::BinOp::Gt,
                    ..
                }
            )
        })
        .count();
    assert_eq!(gts, 1, "duplicate comparison removed: {}", m.functions[0]);

    let mut env = BasicEnv::new(&m);
    let r = call(&m, &mut env, FuncId(0), &[Value::bytes(vec![1, 2])]).unwrap();
    assert_eq!(r, Value::Bool(true));
    assert_eq!(env.global(GlobalId(0)), &Value::Int(1));
}
