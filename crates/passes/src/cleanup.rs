//! CFG simplification: unreachable-block removal, jump threading,
//! same-target branch folding, and straight-line block merging.

use crate::analysis::reachable_blocks;
use crate::Pass;
use pdo_ir::{BlockId, Function, Module, Terminator};

/// The CFG cleanup pass.
#[derive(Debug, Clone, Copy, Default)]
pub struct Cleanup;

impl Pass for Cleanup {
    fn name(&self) -> &'static str {
        "cleanup"
    }

    fn run(&self, module: &mut Module) -> bool {
        let mut changed = false;
        for f in &mut module.functions {
            changed |= cleanup_function(f);
        }
        changed
    }
}

pub(crate) fn cleanup_function(f: &mut Function) -> bool {
    let mut changed = false;
    // Iterate locally: each sub-step can expose more work for the others.
    loop {
        let mut step_changed = false;
        step_changed |= thread_trivial_jumps(f);
        step_changed |= merge_single_pred_chains(f);
        step_changed |= drop_unreachable(f);
        if !step_changed {
            break;
        }
        changed = true;
    }
    changed
}

// Note: `br c, bX, bX` is deliberately *not* folded to `jump bX` — `br`
// faults on a non-bool condition while `jump` cannot, so the fold would
// erase a fault. Branch-to-same-target is rare enough not to matter.

/// Rewrites edges that target a block containing only `jump bN` to point at
/// `bN` directly.
fn thread_trivial_jumps(f: &mut Function) -> bool {
    // trivial[b] = Some(target) if block b is empty and ends in jump.
    let trivial: Vec<Option<BlockId>> = f
        .blocks
        .iter()
        .map(|b| match (&b.instrs.is_empty(), &b.term) {
            (true, Terminator::Jump(t)) => Some(*t),
            _ => None,
        })
        .collect();

    let resolve = |mut b: BlockId| -> BlockId {
        // Bound chain chasing to the block count to tolerate jump cycles.
        for _ in 0..trivial.len() {
            match trivial[b.index()] {
                Some(next) if next != b => b = next,
                _ => break,
            }
        }
        b
    };

    let mut changed = false;
    for block in &mut f.blocks {
        let before = block.term.clone();
        block.term.map_successors(resolve);
        if block.term != before {
            changed = true;
        }
    }
    changed
}

/// Merges `a -> jump b` into a single block when `b` has exactly one
/// predecessor and is not the entry block.
fn merge_single_pred_chains(f: &mut Function) -> bool {
    let preds = f.predecessors();
    let mut changed = false;
    for a in 0..f.blocks.len() {
        let target = match f.blocks[a].term {
            Terminator::Jump(t) if t.index() != 0 && t.index() != a => t,
            _ => continue,
        };
        if preds[target.index()].len() != 1 {
            continue;
        }
        // Splice target's body into a. Leave target in place (it becomes
        // unreachable and is collected by drop_unreachable) so ids of other
        // blocks stay stable within this step.
        let spliced = std::mem::replace(
            &mut f.blocks[target.index()],
            pdo_ir::Block::new(Terminator::Ret(None)),
        );
        let a_block = &mut f.blocks[a];
        a_block.instrs.extend(spliced.instrs);
        a_block.term = spliced.term;
        changed = true;
        // Recompute preds only on the next outer iteration: merging may
        // cascade, but a stale preds table could merge a block twice.
        break;
    }
    changed
}

/// Removes unreachable blocks, compacting ids.
fn drop_unreachable(f: &mut Function) -> bool {
    let reach = reachable_blocks(f);
    if reach.iter().all(|&r| r) {
        return false;
    }
    // Build the id remapping.
    let mut remap = vec![BlockId(0); f.blocks.len()];
    let mut next = 0u32;
    for (i, &r) in reach.iter().enumerate() {
        if r {
            remap[i] = BlockId(next);
            next += 1;
        }
    }
    let mut idx = 0;
    f.blocks.retain(|_| {
        let keep = reach[idx];
        idx += 1;
        keep
    });
    for block in &mut f.blocks {
        block.term.map_successors(|t| remap[t.index()]);
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdo_ir::interp::{call, BasicEnv};
    use pdo_ir::parse::parse_module;
    use pdo_ir::{FuncId, Value};

    fn clean(text: &str) -> Module {
        let mut m = parse_module(text).unwrap();
        Cleanup.run(&mut m);
        pdo_ir::verify_module(&m).unwrap();
        m
    }

    #[test]
    fn removes_unreachable_blocks() {
        let m = clean(
            "func @f(0) {\n\
             b0:\n\
               jump b2\n\
             b1:\n\
               ret\n\
             b2:\n\
               ret\n\
             }\n",
        );
        // b1 removed; b0's jump retargeted... and then merged.
        assert!(m.functions[0].blocks.len() <= 2);
    }

    #[test]
    fn threads_empty_jump_blocks() {
        let m = clean(
            "func @f(1) {\n\
             b0:\n\
               br r0, b1, b2\n\
             b1:\n\
               jump b3\n\
             b2:\n\
               jump b3\n\
             b3:\n\
               ret r0\n\
             }\n",
        );
        match &m.functions[0].blocks[0].term {
            Terminator::Branch {
                then_blk, else_blk, ..
            } => assert_eq!(then_blk, else_blk),
            other => panic!("expected branch, got {other:?}"),
        }
    }

    #[test]
    fn merges_straight_line_chain() {
        let m = clean(
            "func @f(0) {\n\
             b0:\n\
               r0 = const int 1\n\
               jump b1\n\
             b1:\n\
               r1 = const int 2\n\
               jump b2\n\
             b2:\n\
               r2 = add r0, r1\n\
               ret r2\n\
             }\n",
        );
        assert_eq!(m.functions[0].blocks.len(), 1);
        assert_eq!(m.functions[0].blocks[0].instrs.len(), 3);
        let mut env = BasicEnv::new(&m);
        assert_eq!(call(&m, &mut env, FuncId(0), &[]).unwrap(), Value::Int(3));
    }

    #[test]
    fn preserves_loops() {
        let text = "func @sum(1) {\n\
             b0:\n\
               r1 = const int 0\n\
               r2 = const int 0\n\
               jump b1\n\
             b1:\n\
               r3 = lt r2, r0\n\
               br r3, b2, b3\n\
             b2:\n\
               r4 = add r1, r2\n\
               r1 = mov r4\n\
               r5 = const int 1\n\
               r6 = add r2, r5\n\
               r2 = mov r6\n\
               jump b1\n\
             b3:\n\
               ret r1\n\
             }\n";
        let m = clean(text);
        let mut env = BasicEnv::new(&m);
        assert_eq!(
            call(&m, &mut env, FuncId(0), &[Value::Int(6)]).unwrap(),
            Value::Int(15)
        );
    }

    #[test]
    fn entry_block_never_merged_away() {
        let m = clean(
            "func @f(0) {\n\
             b0:\n\
               jump b1\n\
             b1:\n\
               ret\n\
             }\n",
        );
        assert!(!m.functions[0].blocks.is_empty());
        let mut env = BasicEnv::new(&m);
        assert_eq!(call(&m, &mut env, FuncId(0), &[]).unwrap(), Value::Unit);
    }

    #[test]
    fn self_loop_not_merged() {
        // An empty self-looping block must not make threading spin forever.
        let m = clean(
            "func @f(1) {\n\
             b0:\n\
               br r0, b1, b2\n\
             b1:\n\
               jump b1\n\
             b2:\n\
               ret\n\
             }\n",
        );
        assert!(m.functions[0].blocks.len() >= 2);
    }
}
