//! Constant propagation and folding.
//!
//! Uses the interprocedurally-local (per-function, whole-CFG) constant
//! analysis from [`crate::analysis`]. Foldable pure instructions are
//! replaced with `const`; algebraic identities with one constant operand
//! are simplified; branches on constant conditions become jumps (enabling
//! [`crate::Cleanup`] to drop the dead arm).

use crate::analysis::{
    const_states, const_transfer, type_states, type_step, ConstState, Tag, TyState,
};
use crate::Pass;
use pdo_ir::{BinOp, Function, Instr, Module, Terminator, Value};

/// The constant-folding pass.
#[derive(Debug, Clone, Copy, Default)]
pub struct ConstFold;

impl Pass for ConstFold {
    fn name(&self) -> &'static str {
        "constfold"
    }

    fn run(&self, module: &mut Module) -> bool {
        let mut changed = false;
        for f in &mut module.functions {
            changed |= fold_function(f);
        }
        changed
    }
}

pub(crate) fn fold_function(f: &mut Function) -> bool {
    let in_states = const_states(f);
    let ty_in = type_states(f);
    let mut changed = false;
    for (b, block) in f.blocks.iter_mut().enumerate() {
        let mut state: ConstState = in_states[b].clone();
        let mut tys: TyState = ty_in[b].clone();
        for instr in &mut block.instrs {
            if let Some(replacement) = simplify(instr, &state, &tys) {
                *instr = replacement;
                changed = true;
            }
            const_transfer(&mut state, instr);
            type_step(&mut tys, instr);
        }
        if let Terminator::Branch {
            cond,
            then_blk,
            else_blk,
        } = block.term
        {
            if let Some(Value::Bool(c)) = state[cond.index()].as_const() {
                block.term = Terminator::Jump(if *c { then_blk } else { else_blk });
                changed = true;
            }
        }
    }
    changed
}

/// Computes a simpler replacement for `instr` given the abstract constant
/// `state` and type state `tys`, or `None` if it cannot be improved.
fn simplify(instr: &Instr, state: &ConstState, tys: &TyState) -> Option<Instr> {
    let konst = |r: pdo_ir::Reg| state[r.index()].as_const();
    let tag = |r: pdo_ir::Reg| tys[r.index()].tag();
    match instr {
        Instr::Bin { op, dst, lhs, rhs } => {
            // Full fold when both operands are known.
            if let (Some(a), Some(b)) = (konst(*lhs), konst(*rhs)) {
                if let Ok(v) = op.eval(a, b) {
                    return Some(Instr::Const {
                        dst: *dst,
                        value: v,
                    });
                }
                return None; // would fault; leave it to fault at runtime
            }
            // Identity simplification with one known operand. The variable
            // operand's *type* must be proven, otherwise the rewrite would
            // erase the type-mismatch fault the original raises (e.g.
            // `or bool_const, int_reg`).
            let (var, konst_val, konst_on_right) = match (konst(*lhs), konst(*rhs)) {
                (Some(k), None) => (*rhs, k, false),
                (None, Some(k)) => (*lhs, k, true),
                _ => return None,
            };
            let needed = match op {
                BinOp::And | BinOp::Or => Tag::Bool,
                _ => Tag::Int,
            };
            if tag(var) != Some(needed) {
                return None;
            }
            let mov = Some(Instr::Mov {
                dst: *dst,
                src: var,
            });
            match (op, konst_val) {
                (BinOp::Add, Value::Int(0)) => mov,
                (BinOp::Sub, Value::Int(0)) if konst_on_right => mov,
                (BinOp::Mul, Value::Int(1)) => mov,
                (BinOp::Div, Value::Int(1)) if konst_on_right => mov,
                (BinOp::Xor, Value::Int(0)) => mov,
                (BinOp::BitOr, Value::Int(0)) => mov,
                (BinOp::Shl | BinOp::Shr, Value::Int(0)) if konst_on_right => mov,
                (BinOp::And, Value::Bool(true)) => mov,
                (BinOp::Or, Value::Bool(false)) => mov,
                // Annihilators: these do NOT need the variable operand at
                // all, but the variable might be non-int/bool (a type error
                // at runtime), so only safe when we can't fault: And/Or
                // require bool operands, Mul requires ints — a type fault
                // would be erased. Stay conservative: skip annihilators.
                _ => None,
            }
        }
        Instr::Un { op, dst, src } => {
            let v = konst(*src)?;
            match op.eval(v) {
                Ok(folded) => Some(Instr::Const {
                    dst: *dst,
                    value: folded,
                }),
                Err(_) => None,
            }
        }
        Instr::Mov { dst, src } => {
            let v = konst(*src)?;
            Some(Instr::Const {
                dst: *dst,
                value: v.clone(),
            })
        }
        Instr::BytesLen { dst, bytes } => {
            let v = konst(*bytes)?;
            let b = v.as_bytes()?;
            Some(Instr::Const {
                dst: *dst,
                value: Value::Int(b.len() as i64),
            })
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdo_ir::interp::{call, BasicEnv};
    use pdo_ir::parse::parse_module;
    use pdo_ir::FuncId;

    fn fold(text: &str) -> Module {
        let mut m = parse_module(text).unwrap();
        ConstFold.run(&mut m);
        pdo_ir::verify_module(&m).unwrap();
        m
    }

    #[test]
    fn folds_constant_expression() {
        let m = fold(
            "func @f(0) {\n\
             b0:\n\
               r0 = const int 6\n\
               r1 = const int 7\n\
               r2 = mul r0, r1\n\
               ret r2\n\
             }\n",
        );
        assert_eq!(
            m.functions[0].blocks[0].instrs[2],
            Instr::Const {
                dst: pdo_ir::Reg(2),
                value: Value::Int(42)
            }
        );
    }

    #[test]
    fn folds_across_blocks() {
        let m = fold(
            "func @f(0) {\n\
             b0:\n\
               r0 = const int 10\n\
               jump b1\n\
             b1:\n\
               r1 = const int 1\n\
               r2 = add r0, r1\n\
               ret r2\n\
             }\n",
        );
        assert!(matches!(
            m.functions[0].blocks[1].instrs[1],
            Instr::Const {
                value: Value::Int(11),
                ..
            }
        ));
    }

    #[test]
    fn identity_add_zero_becomes_mov_when_type_proven() {
        // r3 = r0 + 5 is proven Int... no: r0 is an untyped parameter, so
        // prove the variable operand's type through a constant seed.
        let m = fold(
            "func @f(0) {\n\
             b0:\n\
               r0 = const int 7\n\
               r1 = const int 0\n\
               r2 = add r0, r1\n\
               ret r2\n\
             }\n",
        );
        // Both operands constant: full fold wins over the identity.
        assert!(matches!(
            m.functions[0].blocks[0].instrs[2],
            Instr::Const {
                value: Value::Int(7),
                ..
            }
        ));
    }

    #[test]
    fn identity_applies_to_proven_int_variable() {
        // r1 = r0 * 1 where r0's Int-ness is proven by an earlier add of
        // two constants routed through a call-free data flow.
        let m = fold(
            "global g = int 3\n\
             func @f(1) {\n\
             b0:\n\
               r1 = const int 2\n\
               r2 = mul r0, r0\n\
               r3 = const int 0\n\
               r4 = add r2, r3\n\
               ret r4\n\
             }\n",
        );
        // r2 = mul r0, r0 yields Int whenever it does not fault, so the
        // dataflow proves r2: Int and `add r2, 0` becomes a mov.
        assert!(matches!(
            m.functions[0].blocks[0].instrs[3],
            Instr::Mov {
                src: pdo_ir::Reg(2),
                ..
            }
        ));
    }

    #[test]
    fn identity_refused_on_untyped_parameter() {
        // add r0, 0 on a parameter must stay: if r0 were a bool, the
        // original faults and `mov` would not.
        let m = fold(
            "func @f(1) {\n\
             b0:\n\
               r1 = const int 0\n\
               r2 = add r0, r1\n\
               ret r2\n\
             }\n",
        );
        assert!(matches!(
            m.functions[0].blocks[0].instrs[1],
            Instr::Bin { op: BinOp::Add, .. }
        ));
    }

    #[test]
    fn sub_zero_only_on_right() {
        // 0 - x must NOT become mov x.
        let m = fold(
            "func @f(1) {\n\
             b0:\n\
               r1 = const int 0\n\
               r2 = sub r1, r0\n\
               ret r2\n\
             }\n",
        );
        assert!(matches!(
            m.functions[0].blocks[0].instrs[1],
            Instr::Bin { op: BinOp::Sub, .. }
        ));
    }

    #[test]
    fn branch_on_constant_becomes_jump() {
        let m = fold(
            "func @f(0) {\n\
             b0:\n\
               r0 = const bool true\n\
               br r0, b1, b2\n\
             b1:\n\
               ret\n\
             b2:\n\
               ret\n\
             }\n",
        );
        assert_eq!(
            m.functions[0].blocks[0].term,
            Terminator::Jump(pdo_ir::BlockId(1))
        );
    }

    #[test]
    fn division_by_constant_zero_left_in_place() {
        let m = fold(
            "func @f(0) {\n\
             b0:\n\
               r0 = const int 1\n\
               r1 = const int 0\n\
               r2 = div r0, r1\n\
               ret r2\n\
             }\n",
        );
        // Must still fault at runtime.
        assert!(matches!(
            m.functions[0].blocks[0].instrs[2],
            Instr::Bin { op: BinOp::Div, .. }
        ));
        let mut env = BasicEnv::new(&m);
        assert!(call(&m, &mut env, FuncId(0), &[]).is_err());
    }

    #[test]
    fn preserves_semantics_on_loop() {
        let text = "func @sum(1) {\n\
             b0:\n\
               r1 = const int 0\n\
               r2 = const int 0\n\
               jump b1\n\
             b1:\n\
               r3 = lt r2, r0\n\
               br r3, b2, b3\n\
             b2:\n\
               r4 = add r1, r2\n\
               r1 = mov r4\n\
               r5 = const int 1\n\
               r6 = add r2, r5\n\
               r2 = mov r6\n\
               jump b1\n\
             b3:\n\
               ret r1\n\
             }\n";
        let m0 = parse_module(text).unwrap();
        let m1 = fold(text);
        for n in [0i64, 1, 5, 10] {
            let mut e0 = BasicEnv::new(&m0);
            let mut e1 = BasicEnv::new(&m1);
            assert_eq!(
                call(&m0, &mut e0, FuncId(0), &[Value::Int(n)]).unwrap(),
                call(&m1, &mut e1, FuncId(0), &[Value::Int(n)]).unwrap()
            );
        }
    }

    #[test]
    fn folds_bytes_len_of_constant() {
        let m = fold(
            "func @f(0) {\n\
             b0:\n\
               r0 = const bytes aabbcc\n\
               r1 = blen r0\n\
               ret r1\n\
             }\n",
        );
        assert!(matches!(
            m.functions[0].blocks[0].instrs[1],
            Instr::Const {
                value: Value::Int(3),
                ..
            }
        ));
    }

    #[test]
    fn uninitialized_reg_folds_as_unit() {
        // r1 is never written before use; it holds Unit, so `eq r1, unit`
        // folds to true.
        let m = fold(
            "func @f(0) {\n\
             b0:\n\
               r0 = const unit\n\
               r2 = eq r0, r1\n\
               ret r2\n\
             }\n",
        );
        assert!(matches!(
            m.functions[0].blocks[0].instrs[1],
            Instr::Const {
                value: Value::Bool(true),
                ..
            }
        ));
    }
}
