//! Liveness-based dead-code elimination.
//!
//! An instruction is removed when its destination is dead at that point and
//! the instruction has no side effect (stores, locks, calls, raises, buffer
//! mutation, and *potentially faulting* operations all count as effects, so
//! optimized code faults exactly when the original would).

use crate::analysis::{cannot_fault, liveness, type_states, type_step};
use crate::Pass;
use pdo_ir::{Function, Module, Terminator};

/// The dead-code elimination pass.
#[derive(Debug, Clone, Copy, Default)]
pub struct Dce;

impl Pass for Dce {
    fn name(&self) -> &'static str {
        "dce"
    }

    fn run(&self, module: &mut Module) -> bool {
        let mut changed = false;
        for f in &mut module.functions {
            changed |= dce_function(f);
        }
        changed
    }
}

pub(crate) fn dce_function(f: &mut Function) -> bool {
    let lv = liveness(f);
    let ty_in = type_states(f);
    let mut changed = false;
    for (b, block) in f.blocks.iter_mut().enumerate() {
        // Forward pass: the type state *before* each instruction, used to
        // prove an instruction cannot fault.
        let mut ty = ty_in[b].clone();
        let pre_types: Vec<_> = block
            .instrs
            .iter()
            .map(|instr| {
                let snapshot = ty.clone();
                type_step(&mut ty, instr);
                snapshot
            })
            .collect();

        let mut live = lv.live_out[b].clone();
        match &block.term {
            Terminator::Branch { cond, .. } => {
                live.insert(*cond);
            }
            Terminator::Ret(Some(r)) => {
                live.insert(*r);
            }
            _ => {}
        }
        // Walk backwards, retaining live, effectful, or possibly-faulting
        // instructions.
        let mut keep = vec![true; block.instrs.len()];
        for (i, instr) in block.instrs.iter().enumerate().rev() {
            let dead = match instr.def() {
                Some(d) => !live.contains(d),
                None => false,
            };
            if dead && !instr.has_side_effect() && cannot_fault(instr, &pre_types[i]) {
                keep[i] = false;
                changed = true;
                continue;
            }
            if let Some(d) = instr.def() {
                live.remove(d);
            }
            instr.for_each_use(|r| {
                live.insert(r);
            });
        }
        if keep.iter().any(|k| !k) {
            let mut it = keep.iter();
            block.instrs.retain(|_| *it.next().expect("keep mask"));
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdo_ir::interp::{call, BasicEnv};
    use pdo_ir::parse::parse_module;
    use pdo_ir::{FuncId, Value};

    fn run_dce(text: &str) -> Module {
        let mut m = parse_module(text).unwrap();
        Dce.run(&mut m);
        pdo_ir::verify_module(&m).unwrap();
        m
    }

    #[test]
    fn removes_unused_pure_instruction() {
        let m = run_dce(
            "func @f(1) {\n\
             b0:\n\
               r1 = const int 1\n\
               r2 = add r0, r0\n\
               ret r0\n\
             }\n",
        );
        // The const is dead and cannot fault: removed. The add reads the
        // untyped parameter r0 and could fault, so it must stay even
        // though its result is dead.
        assert_eq!(m.functions[0].blocks[0].instrs.len(), 1);
        assert!(matches!(
            m.functions[0].blocks[0].instrs[0],
            Instr::Bin { .. }
        ));
    }

    use pdo_ir::Instr;

    #[test]
    fn removes_dead_arithmetic_with_proven_int_types() {
        let m = run_dce(
            "func @f(0) {\n\
             b0:\n\
               r0 = const int 2\n\
               r1 = add r0, r0\n\
               ret\n\
             }\n",
        );
        assert!(m.functions[0].blocks[0].instrs.is_empty());
    }

    #[test]
    fn keeps_dead_bool_op_on_untyped_operands() {
        let m = run_dce(
            "func @f(1) {\n\
             b0:\n\
               r1 = and r0, r0\n\
               ret\n\
             }\n",
        );
        assert_eq!(m.functions[0].blocks[0].instrs.len(), 1);
    }

    #[test]
    fn eq_never_faults_and_is_removable() {
        let m = run_dce(
            "func @f(2) {\n\
             b0:\n\
               r2 = eq r0, r1\n\
               ret\n\
             }\n",
        );
        assert!(m.functions[0].blocks[0].instrs.is_empty());
    }

    #[test]
    fn transitively_dead_chain_removed_in_one_pass() {
        let m = run_dce(
            "func @f(1) {\n\
             b0:\n\
               r1 = const int 1\n\
               r2 = add r1, r1\n\
               r3 = add r2, r2\n\
               ret r0\n\
             }\n",
        );
        assert!(m.functions[0].blocks[0].instrs.is_empty());
    }

    #[test]
    fn keeps_effectful_instructions() {
        let m = run_dce(
            "event E\n\
             global g = int 0\n\
             native work\n\
             func @f(1) {\n\
             b0:\n\
               r1 = const int 1\n\
               store $g, r1\n\
               r2 = native !work(r1)\n\
               raise sync %E(r1)\n\
               ret r0\n\
             }\n",
        );
        // const feeds the store; store, native, and raise all stay.
        assert_eq!(m.functions[0].blocks[0].instrs.len(), 4);
    }

    #[test]
    fn keeps_potentially_faulting_division() {
        let text = "func @f(2) {\n\
             b0:\n\
               r2 = div r0, r1\n\
               ret r0\n\
             }\n";
        let m = run_dce(text);
        assert_eq!(m.functions[0].blocks[0].instrs.len(), 1);
        let mut env = BasicEnv::new(&m);
        assert!(call(&m, &mut env, FuncId(0), &[Value::Int(1), Value::Int(0)]).is_err());
    }

    #[test]
    fn loop_carried_values_kept() {
        let text = "func @sum(1) {\n\
             b0:\n\
               r1 = const int 0\n\
               r2 = const int 0\n\
               jump b1\n\
             b1:\n\
               r3 = lt r2, r0\n\
               br r3, b2, b3\n\
             b2:\n\
               r4 = add r1, r2\n\
               r1 = mov r4\n\
               r5 = const int 1\n\
               r6 = add r2, r5\n\
               r2 = mov r6\n\
               jump b1\n\
             b3:\n\
               ret r1\n\
             }\n";
        let m = run_dce(text);
        let mut env = BasicEnv::new(&m);
        assert_eq!(
            call(&m, &mut env, FuncId(0), &[Value::Int(5)]).unwrap(),
            Value::Int(10)
        );
    }

    #[test]
    fn dead_code_after_branch_arm_removed() {
        let m = run_dce(
            "func @f(1) {\n\
             b0:\n\
               r1 = const bool true\n\
               r2 = add r0, r0\n\
               br r1, b1, b2\n\
             b1:\n\
               ret r2\n\
             b2:\n\
               ret r0\n\
             }\n",
        );
        // r2 is live in b1, so the add stays; r1 feeds the branch.
        assert_eq!(m.functions[0].blocks[0].instrs.len(), 2);
    }
}
