//! # pdo-passes — compiler optimizations over the handler IR
//!
//! The PLDI 2002 paper applies "standard compiler optimizations, such as
//! common subexpression elimination and dead-code elimination" to the
//! super-handlers produced by its graph optimizations (§3.2.2). This crate
//! provides those passes over the `pdo-ir` representation:
//!
//! * [`ConstFold`] — constant propagation/folding plus algebraic identity
//!   simplification and branch folding,
//! * [`CopyProp`] — copy propagation,
//! * [`Cse`] — local common-subexpression elimination,
//! * [`Dce`] — liveness-based dead-code elimination,
//! * [`Cleanup`] — CFG simplification (unreachable blocks, jump threading,
//!   block merging),
//! * [`Inline`] — function inlining (used to inline direct handler calls
//!   into super-handlers),
//! * [`LockCoalesce`] — elimination of redundant unlock/lock pairs across
//!   merged handler boundaries (the paper's "state maintenance" savings),
//! * [`RedundantLoadElim`] — global load/store forwarding within blocks
//!   (the paper's "redundant initializations and code fragments").
//!
//! Passes implement [`Pass`] and run under a [`PassManager`], which iterates
//! the pipeline to a fixed point and verifies the module after every
//! mutation in debug builds.
//!
//! ```
//! use pdo_ir::{parse::parse_module, interp::{BasicEnv, call}, Value, FuncId};
//! use pdo_passes::PassManager;
//!
//! let mut m = parse_module(
//!     "func @f(1) {\n\
//!      b0:\n\
//!        r1 = const int 2\n\
//!        r2 = const int 3\n\
//!        r3 = mul r1, r2\n\
//!        r4 = add r0, r3\n\
//!        ret r4\n\
//!      }\n",
//! )?;
//! let before = m.instr_count();
//! PassManager::standard().run(&mut m);
//! assert!(m.instr_count() < before);
//! let mut env = BasicEnv::new(&m);
//! assert_eq!(call(&m, &mut env, FuncId(0), &[Value::Int(1)])?, Value::Int(7));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod analysis;
pub mod cleanup;
pub mod constfold;
pub mod copyprop;
pub mod cse;
pub mod dce;
pub mod fuse;
pub mod inline;
pub mod locks;

pub use cleanup::Cleanup;
pub use constfold::ConstFold;
pub use copyprop::CopyProp;
pub use cse::Cse;
pub use dce::Dce;
pub use fuse::{fuse_function, fuse_module, Fuse, FusionRecord};
pub use inline::Inline;
pub use locks::{LockCoalesce, RedundantLoadElim};

use pdo_ir::Module;

/// A module-level transformation.
pub trait Pass {
    /// A short identifier used in pipeline reports.
    fn name(&self) -> &'static str;

    /// Applies the pass; returns `true` if the module changed.
    fn run(&self, module: &mut Module) -> bool;
}

/// Statistics from one [`PassManager::run`] invocation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PipelineReport {
    /// Instruction count before the pipeline ran.
    pub instrs_before: usize,
    /// Instruction count after the pipeline ran.
    pub instrs_after: usize,
    /// `(pass name, times it reported a change)` in pipeline order.
    pub pass_changes: Vec<(&'static str, usize)>,
    /// Fixed-point iterations executed.
    pub iterations: usize,
}

/// Runs a sequence of passes to a fixed point.
pub struct PassManager {
    passes: Vec<Box<dyn Pass>>,
    max_iterations: usize,
}

impl std::fmt::Debug for PassManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PassManager")
            .field(
                "passes",
                &self.passes.iter().map(|p| p.name()).collect::<Vec<_>>(),
            )
            .field("max_iterations", &self.max_iterations)
            .finish()
    }
}

impl PassManager {
    /// An empty manager; add passes with [`PassManager::add`].
    pub fn new() -> Self {
        PassManager {
            passes: Vec::new(),
            max_iterations: 8,
        }
    }

    /// The standard pipeline used by the optimizer after handler merging:
    /// inline, then scalar cleanups, then CFG and lock cleanups.
    pub fn standard() -> Self {
        let mut pm = PassManager::new();
        pm.add(Inline::default())
            .add(CopyProp)
            .add(ConstFold)
            .add(Cse)
            .add(RedundantLoadElim)
            .add(LockCoalesce)
            .add(Dce)
            .add(Cleanup);
        pm
    }

    /// A pipeline with every pass *except* inlining, for ablation studies.
    pub fn without_inline() -> Self {
        let mut pm = PassManager::new();
        pm.add(CopyProp)
            .add(ConstFold)
            .add(Cse)
            .add(RedundantLoadElim)
            .add(LockCoalesce)
            .add(Dce)
            .add(Cleanup);
        pm
    }

    /// Appends a pass.
    pub fn add(&mut self, pass: impl Pass + 'static) -> &mut Self {
        self.passes.push(Box::new(pass));
        self
    }

    /// Caps fixed-point iterations (default 8).
    pub fn max_iterations(&mut self, n: usize) -> &mut Self {
        self.max_iterations = n.max(1);
        self
    }

    /// Runs the pipeline to a fixed point (or the iteration cap).
    ///
    /// # Panics
    ///
    /// In debug builds, panics if a pass produces a module that fails
    /// [`pdo_ir::verify_module`].
    pub fn run(&self, module: &mut Module) -> PipelineReport {
        let mut report = PipelineReport {
            instrs_before: module.instr_count(),
            pass_changes: self.passes.iter().map(|p| (p.name(), 0)).collect(),
            ..Default::default()
        };
        for _ in 0..self.max_iterations {
            report.iterations += 1;
            let mut changed = false;
            for (i, pass) in self.passes.iter().enumerate() {
                if pass.run(module) {
                    changed = true;
                    report.pass_changes[i].1 += 1;
                    debug_assert!(
                        pdo_ir::verify_module(module).is_ok(),
                        "pass `{}` broke the module: {:?}",
                        pass.name(),
                        pdo_ir::verify_module(module)
                    );
                }
            }
            if !changed {
                break;
            }
        }
        report.instrs_after = module.instr_count();
        report
    }
}

/// Runs the scalar and CFG pipeline on **one** function, optionally
/// inlining call sites within it first (`inline_threshold`). All other
/// functions in the module are left untouched — this is how the optimizer
/// cleans up freshly built super-handlers without perturbing the original
/// handler bodies whose generic dispatch path must remain intact.
///
/// Returns `true` if the function changed.
pub fn optimize_single_function(
    module: &mut Module,
    func: pdo_ir::FuncId,
    inline_threshold: Option<usize>,
) -> bool {
    let mut any = false;
    for _ in 0..8 {
        let mut changed = false;
        if let Some(th) = inline_threshold {
            changed |= inline::inline_into(module, func.index(), th);
        }
        let f = &mut module.functions[func.index()];
        changed |= copyprop::propagate_function(f);
        changed |= constfold::fold_function(f);
        changed |= cse::cse_function(f);
        changed |= locks::forward_function(f);
        changed |= locks::coalesce_function(f);
        changed |= dce::dce_function(f);
        changed |= cleanup::cleanup_function(f);
        if !changed {
            break;
        }
        any = true;
        debug_assert!(
            pdo_ir::verify_module(module).is_ok(),
            "optimize_single_function broke the module: {:?}",
            pdo_ir::verify_module(module)
        );
    }
    any
}

impl Default for PassManager {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdo_ir::parse::parse_module;

    #[test]
    fn standard_pipeline_shrinks_constant_code() {
        let mut m = parse_module(
            "func @f(0) {\n\
             b0:\n\
               r0 = const int 6\n\
               r1 = const int 7\n\
               r2 = mul r0, r1\n\
               ret r2\n\
             }\n",
        )
        .unwrap();
        let report = PassManager::standard().run(&mut m);
        assert!(report.instrs_after < report.instrs_before);
        // Result should be a single const + ret.
        assert_eq!(m.functions[0].instr_count(), 2);
    }

    #[test]
    fn empty_manager_is_identity() {
        let mut m = parse_module("func @f(0) {\nb0:\n  ret\n}\n").unwrap();
        let before = m.clone();
        let report = PassManager::new().run(&mut m);
        assert_eq!(m, before);
        assert_eq!(report.iterations, 1);
    }

    #[test]
    fn report_tracks_pass_names() {
        let pm = PassManager::standard();
        let mut m = parse_module("func @f(0) {\nb0:\n  ret\n}\n").unwrap();
        let report = pm.run(&mut m);
        let names: Vec<&str> = report.pass_changes.iter().map(|(n, _)| *n).collect();
        assert!(names.contains(&"constfold"));
        assert!(names.contains(&"dce"));
    }
}
