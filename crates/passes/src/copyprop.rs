//! Local copy propagation.
//!
//! Within each block, after `dst = mov src`, uses of `dst` are rewritten to
//! `src` until either register is redefined (or `src`'s buffer is mutated in
//! place by `bset`). This mostly cleans up the argument-passing `mov`s that
//! inlining and handler merging introduce.

use crate::Pass;
use pdo_ir::{Function, Instr, Module, Reg, Terminator};

/// The copy-propagation pass.
#[derive(Debug, Clone, Copy, Default)]
pub struct CopyProp;

impl Pass for CopyProp {
    fn name(&self) -> &'static str {
        "copyprop"
    }

    fn run(&self, module: &mut Module) -> bool {
        let mut changed = false;
        for f in &mut module.functions {
            changed |= propagate_function(f);
        }
        changed
    }
}

pub(crate) fn propagate_function(f: &mut Function) -> bool {
    let mut changed = false;
    for block in &mut f.blocks {
        // copy_of[d] = Some(s) means registers d and s currently hold the
        // same value and s is the preferred (older) name.
        let mut copy_of: Vec<Option<Reg>> = vec![None; usize::from(f.reg_count)];

        let resolve = |copy_of: &[Option<Reg>], mut r: Reg| -> Reg {
            // Chase chains (a=mov b; c=mov a) with a small bound to stay
            // robust against accidental cycles.
            for _ in 0..copy_of.len() {
                match copy_of[r.index()] {
                    Some(next) => r = next,
                    None => break,
                }
            }
            r
        };

        // Invalidate any copy relation involving `r` (as source or dest).
        let kill = |copy_of: &mut Vec<Option<Reg>>, r: Reg| {
            copy_of[r.index()] = None;
            for slot in copy_of.iter_mut() {
                if *slot == Some(r) {
                    *slot = None;
                }
            }
        };

        for instr in &mut block.instrs {
            // Rewrite uses first. `bset` is special: its *bytes* operand is
            // mutated in place, so renaming it to the copy source would
            // redirect the mutation to a different register — only its
            // index/value operands may be rewritten.
            let before = instr.clone();
            if let Instr::BytesSet { index, value, .. } = instr {
                *index = resolve(&copy_of, *index);
                *value = resolve(&copy_of, *value);
            } else {
                instr.map_uses(|r| resolve(&copy_of, r));
            }
            if *instr != before {
                changed = true;
            }

            // `bset` mutates the buffer named by its bytes register in
            // place; any alias relation involving it is stale.
            if let Instr::BytesSet { bytes, .. } = instr {
                let b = *bytes;
                kill(&mut copy_of, b);
            }

            match instr {
                Instr::Mov { dst, src } if dst != src => {
                    let (d, s) = (*dst, *src);
                    kill(&mut copy_of, d);
                    copy_of[d.index()] = Some(s);
                }
                other => {
                    if let Some(d) = other.def() {
                        kill(&mut copy_of, d);
                    }
                }
            }
        }

        let before = block.term.clone();
        match &mut block.term {
            Terminator::Branch { cond, .. } => *cond = resolve(&copy_of, *cond),
            Terminator::Ret(Some(r)) => *r = resolve(&copy_of, *r),
            _ => {}
        }
        if block.term != before {
            changed = true;
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdo_ir::interp::{call, BasicEnv};
    use pdo_ir::parse::parse_module;
    use pdo_ir::{FuncId, Value};

    fn prop(text: &str) -> Module {
        let mut m = parse_module(text).unwrap();
        CopyProp.run(&mut m);
        pdo_ir::verify_module(&m).unwrap();
        m
    }

    #[test]
    fn forwards_simple_copy() {
        let m = prop(
            "func @f(1) {\n\
             b0:\n\
               r1 = mov r0\n\
               r2 = const int 1\n\
               r3 = add r1, r2\n\
               ret r3\n\
             }\n",
        );
        assert!(matches!(
            m.functions[0].blocks[0].instrs[2],
            Instr::Bin { lhs: Reg(0), .. }
        ));
    }

    #[test]
    fn chases_copy_chains() {
        let m = prop(
            "func @f(1) {\n\
             b0:\n\
               r1 = mov r0\n\
               r2 = mov r1\n\
               ret r2\n\
             }\n",
        );
        assert_eq!(m.functions[0].blocks[0].term, Terminator::Ret(Some(Reg(0))));
    }

    #[test]
    fn redefinition_of_source_kills_copy() {
        let text = "func @f(1) {\n\
             b0:\n\
               r1 = mov r0\n\
               r2 = const int 99\n\
               r0 = mov r2\n\
               ret r1\n\
             }\n";
        let m = prop(text);
        // r1 must not be replaced by the redefined r0.
        assert_eq!(m.functions[0].blocks[0].term, Terminator::Ret(Some(Reg(1))));
        let m0 = parse_module(text).unwrap();
        let mut e0 = BasicEnv::new(&m0);
        let mut e1 = BasicEnv::new(&m);
        assert_eq!(
            call(&m0, &mut e0, FuncId(0), &[Value::Int(5)]).unwrap(),
            call(&m, &mut e1, FuncId(0), &[Value::Int(5)]).unwrap()
        );
    }

    #[test]
    fn bset_kills_alias() {
        // r1 = mov r0 (bytes); bset r0 mutates; returning r1's replacement
        // r0 would observe the mutation — forbidden.
        let text = "func @f(0) {\n\
             b0:\n\
               r0 = const bytes 00\n\
               r1 = mov r0\n\
               r2 = const int 0\n\
               r3 = const int 9\n\
               bset r0, r2, r3\n\
               ret r1\n\
             }\n";
        let m = prop(text);
        assert_eq!(m.functions[0].blocks[0].term, Terminator::Ret(Some(Reg(1))));
        let mut env = BasicEnv::new(&m);
        let out = call(&m, &mut env, FuncId(0), &[]).unwrap();
        assert_eq!(out, Value::bytes(vec![0]));
    }

    #[test]
    fn self_move_not_registered() {
        let m = prop(
            "func @f(1) {\n\
             b0:\n\
               r0 = mov r0\n\
               ret r0\n\
             }\n",
        );
        assert_eq!(m.functions[0].blocks[0].term, Terminator::Ret(Some(Reg(0))));
    }
}
