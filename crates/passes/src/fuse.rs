//! Profile-directed superinstruction fusion.
//!
//! The paper's loop — measure, then specialize what the measurement says is
//! hot — applied to the execution engine itself: the interpreter records
//! per-opcode and adjacent-pair frequencies ([`OpcodeProfile`]), and this
//! pass rewrites the hottest straight-line sequences into the fused
//! [`Instr`] superinstruction forms the interpreter dispatches in one
//! `match` arm:
//!
//! * `Const`+`Bin`                                  → [`Instr::BinImm`]
//! * `LoadGlobal`+`Bin`+`StoreGlobal`               → [`Instr::GlobalFold`]
//! * `LoadGlobal`+`Const`+`Bin`+`StoreGlobal`       → [`Instr::GlobalFoldImm`]
//! * `Lock`+`StoreGlobal`+`Unlock`                  → [`Instr::LockedStore`]
//! * `Lock`+…locked read-modify-write…+`Unlock`     → [`Instr::LockedFoldImm`]
//!
//! Fusion is observationally invisible: the interpreter charges a fused
//! instruction exactly its constituents' costs at the points they would have
//! executed, and the pass only rewrites a sequence when every register the
//! sequence defines is dead afterwards (checked against block liveness), so
//! register state after the fused form matches the unfused run wherever it
//! can still be observed.

use crate::analysis::{liveness, RegSet};
use crate::Pass;
use pdo_ir::cost::OpcodeProfile;
use pdo_ir::{BinOp, Block, FuncId, Function, Instr, Module, Reg, Terminator};

/// Evidence for one fusion decision, aggregated per function and pattern:
/// the flight record exported through `pdo-obs` when fusion runs online.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FusionRecord {
    /// Function that was rewritten.
    pub func: FuncId,
    /// The fused mnemonic (e.g. `"lfold.i"`).
    pub pattern: &'static str,
    /// Number of sites rewritten to this pattern in this function.
    pub sites: u64,
    /// The strongest frequency evidence among those sites: the minimum
    /// adjacent-pair count along the fused sequence, maximized over sites.
    /// Zero when fusion ran unconditionally (no profile).
    pub evidence: u64,
}

/// The fusion pass. Construct with [`Fuse::with_profile`] to gate rewrites
/// on measured pair frequencies, or [`Fuse::unconditional`] to fuse every
/// matching sequence (tests, offline experiments).
///
/// Not part of [`crate::PassManager::standard`]: fusion is applied by the
/// adaptive engine's reprofile path, after the standard pipeline, to
/// super-handlers it is about to install.
#[derive(Debug, Clone, Default)]
pub struct Fuse {
    profile: Option<OpcodeProfile>,
    min_pair: u64,
}

impl Fuse {
    /// Fuses every matching sequence regardless of frequency.
    pub fn unconditional() -> Self {
        Fuse {
            profile: None,
            min_pair: 0,
        }
    }

    /// Fuses only sequences whose every adjacent opcode pair was observed at
    /// least `min_pair` times in `profile`.
    pub fn with_profile(profile: OpcodeProfile, min_pair: u64) -> Self {
        Fuse {
            profile: Some(profile),
            min_pair,
        }
    }
}

impl Pass for Fuse {
    fn name(&self) -> &'static str {
        "fuse"
    }

    fn run(&self, module: &mut Module) -> bool {
        !fuse_module(module, self.profile.as_ref(), self.min_pair).is_empty()
    }
}

/// Fuses every function in `module`; returns the per-function flight
/// records (empty when nothing matched or the profile gated everything out).
pub fn fuse_module(
    module: &mut Module,
    profile: Option<&OpcodeProfile>,
    min_pair: u64,
) -> Vec<FusionRecord> {
    let mut records = Vec::new();
    for idx in 0..module.functions.len() {
        fuse_function(
            &mut module.functions[idx],
            FuncId::from_index(idx),
            profile,
            min_pair,
            &mut records,
        );
    }
    records
}

/// Fuses one function, appending aggregated records to `out`. Returns
/// `true` if the function changed.
pub fn fuse_function(
    f: &mut Function,
    func: FuncId,
    profile: Option<&OpcodeProfile>,
    min_pair: u64,
    out: &mut Vec<FusionRecord>,
) -> bool {
    // `live_out` is stable across intra-block rewrites (it derives from
    // successor blocks' uses), so one liveness solve serves the whole scan.
    let live = liveness(f);
    let mut changed = false;
    for (b_idx, block) in f.blocks.iter_mut().enumerate() {
        let live_out = &live.live_out[b_idx];
        let mut i = 0;
        while i < block.instrs.len() {
            // Longest pattern first, so a locked read-modify-write becomes
            // one instruction rather than a partial inner fusion.
            let fused = try_locked_fold_imm(block, i, live_out)
                .or_else(|| try_global_fold_imm(block, i, live_out))
                .or_else(|| try_global_fold(block, i, live_out))
                .or_else(|| try_locked_store(block, i))
                .or_else(|| try_bin_imm(block, i, live_out));
            if let Some((instr, width, pattern)) = fused {
                let evidence = match profile {
                    Some(p) => match sequence_evidence(p, &block.instrs[i..i + width]) {
                        Some(e) if e >= min_pair => e,
                        _ => {
                            i += 1;
                            continue;
                        }
                    },
                    None => 0,
                };
                block.instrs.splice(i..i + width, [instr]);
                note(out, func, pattern, evidence);
                changed = true;
            }
            i += 1;
        }
    }
    if changed {
        shrink_reg_count(f);
    }
    changed
}

/// Recompute `reg_count` from the registers the fused body still touches.
///
/// Fusion folds register traffic into immediate operands, so a rewritten
/// body often needs far fewer (sometimes zero) register slots. The
/// interpreter sizes its per-call frame from `reg_count`, making this
/// shrink part of the optimization itself: smaller frames mean less
/// allocation and drop work on every call of a fused handler.
fn shrink_reg_count(f: &mut Function) {
    let mut high = usize::from(f.params);
    let mut touch = |r: Reg| high = high.max(r.index() + 1);
    for block in &f.blocks {
        for instr in &block.instrs {
            if let Some(d) = instr.def() {
                touch(d);
            }
            instr.for_each_use(&mut touch);
        }
        match block.term {
            Terminator::Branch { cond, .. } => touch(cond),
            Terminator::Ret(Some(r)) => touch(r),
            Terminator::Ret(None) | Terminator::Jump(_) => {}
        }
    }
    f.reg_count = u16::try_from(high).expect("register index fits u16");
}

/// Minimum adjacent-pair frequency along the (unfused) sequence.
fn sequence_evidence(profile: &OpcodeProfile, seq: &[Instr]) -> Option<u64> {
    seq.windows(2)
        .map(|w| profile.pair_count(w[0].opcode(), w[1].opcode()))
        .min()
}

fn note(out: &mut Vec<FusionRecord>, func: FuncId, pattern: &'static str, evidence: u64) {
    if let Some(r) = out
        .iter_mut()
        .find(|r| r.func == func && r.pattern == pattern)
    {
        r.sites += 1;
        r.evidence = r.evidence.max(evidence);
    } else {
        out.push(FusionRecord {
            func,
            pattern,
            sites: 1,
            evidence,
        });
    }
}

/// True when `r` cannot be observed after instruction `end` of `block`: no
/// later instruction or the terminator reads it before a redefinition, and
/// it is not live out of the block.
fn dead_after(block: &Block, live_out: &RegSet, end: usize, r: Reg) -> bool {
    for instr in &block.instrs[end + 1..] {
        let mut used = false;
        instr.for_each_use(|u| used |= u == r);
        if used {
            return false;
        }
        if instr.def() == Some(r) {
            return true;
        }
    }
    match &block.term {
        Terminator::Ret(Some(x)) if *x == r => return false,
        Terminator::Branch { cond, .. } if *cond == r => return false,
        _ => {}
    }
    !live_out.contains(r)
}

/// Matches `dst = lhs <op> rhs` against a constant in `c`: returns the
/// non-constant operand with the constant in `rhs` position (swapping
/// commutative operators when the constant sits on the left).
fn bin_with_const(op: BinOp, lhs: Reg, rhs: Reg, c: Reg) -> Option<Reg> {
    if rhs == c && lhs != c {
        Some(lhs)
    } else if lhs == c && rhs != c && op.is_commutative() {
        Some(rhs)
    } else {
        None
    }
}

type Match = (Instr, usize, &'static str);

fn try_locked_fold_imm(block: &Block, i: usize, live_out: &RegSet) -> Option<Match> {
    let [Instr::Lock { global: g0 }, Instr::LoadGlobal { dst: v, global: g1 }, Instr::Const { dst: c, value }, Instr::Bin {
        op,
        dst: d,
        lhs,
        rhs,
    }, Instr::StoreGlobal { global: g2, src }, Instr::Unlock { global: g3 }] =
        block.instrs.get(i..i + 6)?
    else {
        return None;
    };
    if g0 != g1 || g0 != g2 || g0 != g3 || src != d || v == c {
        return None;
    }
    bin_with_const(*op, *lhs, *rhs, *c).filter(|loaded| loaded == v)?;
    let end = i + 5;
    for r in [*v, *c, *d] {
        if !dead_after(block, live_out, end, r) {
            return None;
        }
    }
    Some((
        Instr::LockedFoldImm {
            op: *op,
            global: *g0,
            imm: value.clone(),
        },
        6,
        "lfold.i",
    ))
}

fn try_global_fold_imm(block: &Block, i: usize, live_out: &RegSet) -> Option<Match> {
    let [Instr::LoadGlobal { dst: v, global: g1 }, Instr::Const { dst: c, value }, Instr::Bin {
        op,
        dst: d,
        lhs,
        rhs,
    }, Instr::StoreGlobal { global: g2, src }] = block.instrs.get(i..i + 4)?
    else {
        return None;
    };
    if g1 != g2 || src != d || v == c {
        return None;
    }
    bin_with_const(*op, *lhs, *rhs, *c).filter(|loaded| loaded == v)?;
    let end = i + 3;
    for r in [*v, *c, *d] {
        if !dead_after(block, live_out, end, r) {
            return None;
        }
    }
    Some((
        Instr::GlobalFoldImm {
            op: *op,
            global: *g1,
            imm: value.clone(),
        },
        4,
        "gfold.i",
    ))
}

fn try_global_fold(block: &Block, i: usize, live_out: &RegSet) -> Option<Match> {
    let [Instr::LoadGlobal { dst: v, global: g1 }, Instr::Bin {
        op,
        dst: d,
        lhs,
        rhs,
    }, Instr::StoreGlobal { global: g2, src }] = block.instrs.get(i..i + 3)?
    else {
        return None;
    };
    if g1 != g2 || src != d {
        return None;
    }
    // The loaded value must be exactly one operand; the other (the fused
    // register operand) must be a different register, since after fusion it
    // is read from the register file while the load never lands in `v`.
    let s = bin_with_const(*op, *lhs, *rhs, *v)?;
    let end = i + 2;
    for r in [*v, *d] {
        if !dead_after(block, live_out, end, r) {
            return None;
        }
    }
    Some((
        Instr::GlobalFold {
            op: *op,
            global: *g1,
            src: s,
        },
        3,
        "gfold",
    ))
}

fn try_locked_store(block: &Block, i: usize) -> Option<Match> {
    let [Instr::Lock { global: g0 }, Instr::StoreGlobal { global: g1, src }, Instr::Unlock { global: g2 }] =
        block.instrs.get(i..i + 3)?
    else {
        return None;
    };
    if g0 != g1 || g0 != g2 {
        return None;
    }
    Some((
        Instr::LockedStore {
            global: *g0,
            src: *src,
        },
        3,
        "lstore",
    ))
}

fn try_bin_imm(block: &Block, i: usize, live_out: &RegSet) -> Option<Match> {
    let [Instr::Const { dst: c, value }, Instr::Bin {
        op,
        dst: d,
        lhs,
        rhs,
    }] = block.instrs.get(i..i + 2)?
    else {
        return None;
    };
    let other = bin_with_const(*op, *lhs, *rhs, *c)?;
    // When the Bin overwrites the constant's register the unfused sequence
    // leaves the same result there; otherwise the constant must be dead.
    if d != c && !dead_after(block, live_out, i + 1, *c) {
        return None;
    }
    Some((
        Instr::BinImm {
            op: *op,
            dst: *d,
            lhs: other,
            imm: value.clone(),
        },
        2,
        "bin.i",
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdo_ir::interp::{call, BasicEnv};
    use pdo_ir::parse::parse_module;
    use pdo_ir::{verify_module, GlobalId, Value};

    fn exec(m: &Module, name: &str, args: &[Value]) -> (Value, Vec<Value>, pdo_ir::CostCounter) {
        let id = m.function_by_name(name).unwrap();
        let mut env = BasicEnv::new(m);
        let r = call(m, &mut env, id, args).unwrap();
        let globals = (0..m.globals.len())
            .map(|g| env.global(GlobalId::from_index(g)).clone())
            .collect();
        (r, globals, env.cost)
    }

    const BUMP: &str = "global acc = int 0\n\
         func @bump(0) {\n\
         b0:\n\
           lock $acc\n\
           r0 = load $acc\n\
           r1 = const int 3\n\
           r2 = add r0, r1\n\
           store $acc, r2\n\
           unlock $acc\n\
           ret\n\
         }\n";

    #[test]
    fn fuses_locked_bump_to_single_instruction() {
        let mut m = parse_module(BUMP).unwrap();
        let before = exec(&m, "bump", &[]);
        let records = fuse_module(&mut m, None, 0);
        verify_module(&m).unwrap();
        assert_eq!(
            m.functions[0].blocks[0].instrs,
            vec![Instr::LockedFoldImm {
                op: BinOp::Add,
                global: GlobalId(0),
                imm: Value::Int(3),
            }]
        );
        let after = exec(&m, "bump", &[]);
        // Same observable state AND same abstract cost.
        assert_eq!(before.1, after.1);
        assert_eq!(before.2, after.2);
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].pattern, "lfold.i");
        assert_eq!(records[0].sites, 1);
    }

    #[test]
    fn profile_gates_fusion() {
        // A cold profile (no observed pairs) blocks fusion at min_pair=1;
        // a hot one admits it, and the record carries the evidence.
        let mut m = parse_module(BUMP).unwrap();
        let cold = OpcodeProfile::new();
        assert!(fuse_module(&mut m, Some(&cold), 1).is_empty());

        // Collect a real profile by running the unfused handler.
        let f = m.function_by_name("bump").unwrap();
        let mut env = BasicEnv::new(&m);
        env.enable_profiling();
        for _ in 0..10 {
            call(&m, &mut env, f, &[]).unwrap();
        }
        let hot = *env.profile.take().unwrap();
        let records = fuse_module(&mut m, Some(&hot), 10);
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].evidence, 10);
        assert!(matches!(
            m.functions[0].blocks[0].instrs[0],
            Instr::LockedFoldImm { .. }
        ));
    }

    #[test]
    fn live_result_blocks_fusion() {
        // r2 escapes through `ret`, so the store sequence must stay unfused.
        let text = "global acc = int 0\n\
             func @f(0) {\n\
             b0:\n\
               r0 = load $acc\n\
               r1 = const int 3\n\
               r2 = add r0, r1\n\
               store $acc, r2\n\
               ret r2\n\
             }\n";
        let mut m = parse_module(text).unwrap();
        let records = fuse_module(&mut m, None, 0);
        // The Const+Bin prefix may still fuse to bin.i (r1 is dead), but the
        // 4-wide gfold.i must not fire.
        assert!(
            records.iter().all(|r| r.pattern != "gfold.i"),
            "{records:?}"
        );
        assert!(m.functions[0].blocks[0]
            .instrs
            .iter()
            .any(|i| matches!(i, Instr::StoreGlobal { .. })));
        verify_module(&m).unwrap();
        assert_eq!(exec(&m, "f", &[]).0, Value::Int(3));
    }

    #[test]
    fn live_out_blocks_fusion_across_blocks() {
        // r0 (the loaded value) is consumed in b1, so it is live out of b0.
        let text = "global acc = int 1\n\
             func @f(0) {\n\
             b0:\n\
               r0 = load $acc\n\
               r1 = const int 3\n\
               r2 = add r0, r1\n\
               store $acc, r2\n\
               jump b1\n\
             b1:\n\
               ret r0\n\
             }\n";
        let mut m = parse_module(text).unwrap();
        let records = fuse_module(&mut m, None, 0);
        assert!(
            records.iter().all(|r| r.pattern != "gfold.i"),
            "{records:?}"
        );
        verify_module(&m).unwrap();
        assert_eq!(exec(&m, "f", &[]).0, Value::Int(1));
    }

    #[test]
    fn commutative_swap_fuses_const_on_left() {
        let text = "func @f(1) {\n\
             b0:\n\
               r1 = const int 5\n\
               r2 = mul r1, r0\n\
               ret r2\n\
             }\n";
        let mut m = parse_module(text).unwrap();
        fuse_module(&mut m, None, 0);
        assert_eq!(
            m.functions[0].blocks[0].instrs,
            vec![Instr::BinImm {
                op: BinOp::Mul,
                dst: Reg(2),
                lhs: Reg(0),
                imm: Value::Int(5),
            }]
        );
        assert_eq!(exec(&m, "f", &[Value::Int(4)]).0, Value::Int(20));
    }

    #[test]
    fn non_commutative_const_on_left_not_fused() {
        // `sub` with the constant as lhs cannot move to the imm slot.
        let text = "func @f(1) {\n\
             b0:\n\
               r1 = const int 5\n\
               r2 = sub r1, r0\n\
               ret r2\n\
             }\n";
        let mut m = parse_module(text).unwrap();
        assert!(fuse_module(&mut m, None, 0).is_empty());
        assert_eq!(exec(&m, "f", &[Value::Int(1)]).0, Value::Int(4));
    }

    #[test]
    fn locked_store_fuses() {
        let text = "global g = int 0\n\
             func @f(1) {\n\
             b0:\n\
               lock $g\n\
               store $g, r0\n\
               unlock $g\n\
               ret\n\
             }\n";
        let mut m = parse_module(text).unwrap();
        let before = exec(&m, "f", &[Value::Int(9)]);
        let records = fuse_module(&mut m, None, 0);
        assert_eq!(records[0].pattern, "lstore");
        assert_eq!(
            m.functions[0].blocks[0].instrs,
            vec![Instr::LockedStore {
                global: GlobalId(0),
                src: Reg(0),
            }]
        );
        let after = exec(&m, "f", &[Value::Int(9)]);
        assert_eq!(before, after);
    }

    #[test]
    fn global_fold_register_operand_fuses() {
        let text = "global g = int 10\n\
             func @f(1) {\n\
             b0:\n\
               r1 = load $g\n\
               r2 = add r1, r0\n\
               store $g, r2\n\
               ret\n\
             }\n";
        let mut m = parse_module(text).unwrap();
        let before = exec(&m, "f", &[Value::Int(7)]);
        fuse_module(&mut m, None, 0);
        assert_eq!(
            m.functions[0].blocks[0].instrs,
            vec![Instr::GlobalFold {
                op: BinOp::Add,
                global: GlobalId(0),
                src: Reg(0),
            }]
        );
        let after = exec(&m, "f", &[Value::Int(7)]);
        assert_eq!(before, after);
        assert_eq!(after.1[0], Value::Int(17));
    }

    #[test]
    fn self_operand_load_not_fused() {
        // `add r1, r1` uses the loaded value twice; GlobalFold carries only
        // one register operand, so this must stay unfused.
        let text = "global g = int 3\n\
             func @f(0) {\n\
             b0:\n\
               r1 = load $g\n\
               r2 = add r1, r1\n\
               store $g, r2\n\
               ret\n\
             }\n";
        let mut m = parse_module(text).unwrap();
        assert!(fuse_module(&mut m, None, 0).is_empty());
        assert_eq!(exec(&m, "f", &[]).1[0], Value::Int(6));
    }

    #[test]
    fn fused_module_survives_print_parse_roundtrip() {
        let mut m = parse_module(BUMP).unwrap();
        fuse_module(&mut m, None, 0);
        let printed = pdo_ir::display::print_module(&m);
        let reparsed = parse_module(&printed).unwrap();
        // Exact round-trip: fusion shrinks reg_count to what the body still
        // uses, which is also what the parser infers from the printed form.
        assert_eq!(m, reparsed, "printed form was:\n{printed}");
    }

    #[test]
    fn fusion_shrinks_register_frame() {
        let mut m = parse_module(BUMP).unwrap();
        assert_eq!(m.functions[0].reg_count, 3);
        fuse_module(&mut m, None, 0);
        // The fused body (`lfold.i`) touches no registers at all, so the
        // interpreter's per-call frame shrinks to nothing.
        assert_eq!(m.functions[0].reg_count, 0);
        assert_eq!(pdo_ir::verify_module(&m), Ok(()));
    }

    #[test]
    fn records_aggregate_sites_per_pattern() {
        let text = "global g = int 0\n\
             func @f(1) {\n\
             b0:\n\
               lock $g\n\
               store $g, r0\n\
               unlock $g\n\
               lock $g\n\
               store $g, r0\n\
               unlock $g\n\
               ret\n\
             }\n";
        let mut m = parse_module(text).unwrap();
        let records = fuse_module(&mut m, None, 0);
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].sites, 2);
    }
}
