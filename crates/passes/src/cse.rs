//! Local common-subexpression elimination.
//!
//! Within one block, a pure expression computed twice with the same operand
//! registers (and no intervening redefinition of those operands, nor
//! in-place buffer mutation) is replaced by a `mov` from the first result.
//! Re-executing an identical faulting expression is also redundant — if the
//! first occurrence faulted, execution never reaches the second — so `div`,
//! `bget`, and `bslice` participate.
//!
//! Handler merging makes this profitable: the paper notes that independent
//! handlers bound to the same event often repeat initialization and checks;
//! once merged into a super-handler those repetitions become block-local
//! common subexpressions.

use crate::Pass;
use pdo_ir::{BinOp, Function, Instr, Module, Reg, UnOp, Value};
use std::collections::HashMap;

/// The local CSE pass.
#[derive(Debug, Clone, Copy, Default)]
pub struct Cse;

impl Pass for Cse {
    fn name(&self) -> &'static str {
        "cse"
    }

    fn run(&self, module: &mut Module) -> bool {
        let mut changed = false;
        for f in &mut module.functions {
            changed |= cse_function(f);
        }
        changed
    }
}

/// A canonical key for a pure expression over registers.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum ExprKey {
    /// A constant materialization — deduplicating these lets copy
    /// propagation unify downstream expressions that differ only in which
    /// register holds an identical literal.
    Const(Value),
    Bin(BinOp, Reg, Reg),
    Un(UnOp, Reg),
    BytesLen(Reg),
    BytesGet(Reg, Reg),
    BytesConcat(Reg, Reg),
    BytesSlice(Reg, Reg, Reg),
}

impl ExprKey {
    fn of(instr: &Instr) -> Option<ExprKey> {
        match instr {
            Instr::Const { value, .. } => Some(ExprKey::Const(value.clone())),
            Instr::Bin { op, lhs, rhs, .. } => {
                let (a, b) = if op.is_commutative() && rhs < lhs {
                    (*rhs, *lhs)
                } else {
                    (*lhs, *rhs)
                };
                Some(ExprKey::Bin(*op, a, b))
            }
            Instr::Un { op, src, .. } => Some(ExprKey::Un(*op, *src)),
            Instr::BytesLen { bytes, .. } => Some(ExprKey::BytesLen(*bytes)),
            Instr::BytesGet { bytes, index, .. } => Some(ExprKey::BytesGet(*bytes, *index)),
            Instr::BytesConcat { lhs, rhs, .. } => Some(ExprKey::BytesConcat(*lhs, *rhs)),
            Instr::BytesSlice {
                bytes, start, end, ..
            } => Some(ExprKey::BytesSlice(*bytes, *start, *end)),
            _ => None,
        }
    }

    fn mentions(&self, r: Reg) -> bool {
        match self {
            ExprKey::Const(_) => false,
            ExprKey::Bin(_, a, b) | ExprKey::BytesGet(a, b) | ExprKey::BytesConcat(a, b) => {
                *a == r || *b == r
            }
            ExprKey::Un(_, a) | ExprKey::BytesLen(a) => *a == r,
            ExprKey::BytesSlice(a, b, c) => *a == r || *b == r || *c == r,
        }
    }
}

pub(crate) fn cse_function(f: &mut Function) -> bool {
    let mut changed = false;
    for block in &mut f.blocks {
        // Available expressions: key -> register holding its value.
        let mut avail: HashMap<ExprKey, Reg> = HashMap::new();

        for instr in &mut block.instrs {
            // Invalidate expressions whose inputs a `bset` mutates in place.
            if let Instr::BytesSet { bytes, .. } = instr {
                let b = *bytes;
                avail.retain(|k, held| !k.mentions(b) && *held != b);
            }

            let key = ExprKey::of(instr);
            if let (Some(key), Some(dst)) = (key.clone(), instr.def()) {
                if let Some(&held) = avail.get(&key) {
                    if held != dst {
                        *instr = Instr::Mov { dst, src: held };
                        changed = true;
                    }
                }
            }

            // Redefinition of a register invalidates expressions that read
            // it and expressions whose value it held.
            if let Some(d) = instr.def() {
                avail.retain(|k, held| !k.mentions(d) && *held != d);
            }

            // Record the expression as available (after invalidation so a
            // self-referential def like `r0 = add r0, r1` is not recorded).
            if let (Some(key), Some(dst)) = (ExprKey::of(instr), instr.def()) {
                if !key.mentions(dst) {
                    avail.insert(key, dst);
                }
            }
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdo_ir::interp::{call, BasicEnv};
    use pdo_ir::parse::parse_module;
    use pdo_ir::{FuncId, Value};

    fn run_cse(text: &str) -> Module {
        let mut m = parse_module(text).unwrap();
        Cse.run(&mut m);
        pdo_ir::verify_module(&m).unwrap();
        m
    }

    #[test]
    fn duplicate_expression_becomes_mov() {
        let m = run_cse(
            "func @f(2) {\n\
             b0:\n\
               r2 = add r0, r1\n\
               r3 = add r0, r1\n\
               r4 = add r2, r3\n\
               ret r4\n\
             }\n",
        );
        assert_eq!(
            m.functions[0].blocks[0].instrs[1],
            Instr::Mov {
                dst: Reg(3),
                src: Reg(2)
            }
        );
    }

    #[test]
    fn commutative_operands_canonicalized() {
        let m = run_cse(
            "func @f(2) {\n\
             b0:\n\
               r2 = add r0, r1\n\
               r3 = add r1, r0\n\
               ret r3\n\
             }\n",
        );
        assert!(matches!(
            m.functions[0].blocks[0].instrs[1],
            Instr::Mov { .. }
        ));
    }

    #[test]
    fn non_commutative_not_canonicalized() {
        let m = run_cse(
            "func @f(2) {\n\
             b0:\n\
               r2 = sub r0, r1\n\
               r3 = sub r1, r0\n\
               ret r3\n\
             }\n",
        );
        assert!(matches!(
            m.functions[0].blocks[0].instrs[1],
            Instr::Bin { .. }
        ));
    }

    #[test]
    fn redefinition_invalidates() {
        let text = "func @f(2) {\n\
             b0:\n\
               r2 = add r0, r1\n\
               r3 = const int 5\n\
               r0 = mov r3\n\
               r4 = add r0, r1\n\
               ret r4\n\
             }\n";
        let m = run_cse(text);
        assert!(matches!(
            m.functions[0].blocks[0].instrs[3],
            Instr::Bin { .. }
        ));
        let m0 = parse_module(text).unwrap();
        let mut e0 = BasicEnv::new(&m0);
        let mut e1 = BasicEnv::new(&m);
        assert_eq!(
            call(&m0, &mut e0, FuncId(0), &[Value::Int(1), Value::Int(2)]).unwrap(),
            call(&m, &mut e1, FuncId(0), &[Value::Int(1), Value::Int(2)]).unwrap(),
        );
    }

    #[test]
    fn bset_invalidates_bytes_expressions() {
        let text = "func @f(0) {\n\
             b0:\n\
               r0 = const bytes 0a\n\
               r1 = const int 0\n\
               r2 = bget r0, r1\n\
               r3 = const int 99\n\
               bset r0, r1, r3\n\
               r4 = bget r0, r1\n\
               r5 = add r2, r4\n\
               ret r5\n\
             }\n";
        let m = run_cse(text);
        // The second bget must not be CSE'd with the first.
        assert!(matches!(
            m.functions[0].blocks[0].instrs[5],
            Instr::BytesGet { .. }
        ));
        let mut env = BasicEnv::new(&m);
        assert_eq!(
            call(&m, &mut env, FuncId(0), &[]).unwrap(),
            Value::Int(0x0a + 99)
        );
    }

    #[test]
    fn calls_are_barriers_for_nothing_but_not_expressions() {
        // Pure register expressions stay available across a raise; the raise
        // cannot change register contents.
        let m = run_cse(
            "event E\n\
             func @f(2) {\n\
             b0:\n\
               r2 = mul r0, r1\n\
               raise sync %E(r2)\n\
               r3 = mul r0, r1\n\
               ret r3\n\
             }\n",
        );
        assert!(matches!(
            m.functions[0].blocks[0].instrs[2],
            Instr::Mov { .. }
        ));
    }

    #[test]
    fn self_referential_def_not_recorded() {
        let m = run_cse(
            "func @f(1) {\n\
             b0:\n\
               r0 = add r0, r0\n\
               r1 = add r0, r0\n\
               ret r1\n\
             }\n",
        );
        // r1 = add r0, r0 is a *different* value than the first add because
        // r0 changed; it must not be replaced.
        assert!(matches!(
            m.functions[0].blocks[0].instrs[1],
            Instr::Bin { .. }
        ));
    }
}
