//! State-maintenance optimizations: lock coalescing and redundant global
//! load/store elimination.
//!
//! The paper lists "state maintenance (synchronization and locking) costs
//! for global variables" and "redundant initializations and code fragments
//! for events with multiple handlers" among the overheads its optimizations
//! remove (§3.2). After handler merging, adjacent handlers' critical
//! sections on the same state become `unlock g; lock g` pairs and repeated
//! `load g` instructions; these two passes remove them.

use crate::Pass;
use pdo_ir::{Function, GlobalId, Instr, Module, Reg};
use std::collections::HashMap;

/// Deletes `unlock g; …; lock g` pairs when nothing between them can
/// observe the lock (no calls, raises, or other lock operations). Deleting
/// the pair *extends* the critical section, which is always safe under the
/// runtime's handler-atomicity guarantee (§2.3: "handler execution is
/// atomic with respect to concurrency").
#[derive(Debug, Clone, Copy, Default)]
pub struct LockCoalesce;

impl Pass for LockCoalesce {
    fn name(&self) -> &'static str {
        "lockcoalesce"
    }

    fn run(&self, module: &mut Module) -> bool {
        let mut changed = false;
        for f in &mut module.functions {
            changed |= coalesce_function(f);
        }
        changed
    }
}

pub(crate) fn coalesce_function(f: &mut Function) -> bool {
    let mut changed = false;
    for block in &mut f.blocks {
        while let Some((i, j)) = find_pair(&block.instrs) {
            // Remove j first so i's index stays valid.
            block.instrs.remove(j);
            block.instrs.remove(i);
            changed = true;
        }
    }
    changed
}

/// Finds `(unlock_index, lock_index)` of the first removable pair.
fn find_pair(instrs: &[Instr]) -> Option<(usize, usize)> {
    for (i, instr) in instrs.iter().enumerate() {
        let Instr::Unlock { global } = instr else {
            continue;
        };
        for (j, candidate) in instrs.iter().enumerate().skip(i + 1) {
            match candidate {
                Instr::Lock { global: g2 } if g2 == global => return Some((i, j)),
                // Anything that could observe or contend the lock ends the
                // window. Fused locked forms contain a lock/unlock pair.
                Instr::Lock { .. }
                | Instr::Unlock { .. }
                | Instr::LockedStore { .. }
                | Instr::LockedFoldImm { .. }
                | Instr::Call { .. }
                | Instr::CallNative { .. }
                | Instr::Raise { .. } => break,
                _ => continue,
            }
        }
    }
    None
}

/// Forwards globals held in registers: a `load g` whose value is already in
/// a register (from an earlier `load g` or `store g`) becomes a `mov`; a
/// `store g, r` that would write back the value `g` already holds is
/// deleted.
#[derive(Debug, Clone, Copy, Default)]
pub struct RedundantLoadElim;

impl Pass for RedundantLoadElim {
    fn name(&self) -> &'static str {
        "redundantload"
    }

    fn run(&self, module: &mut Module) -> bool {
        let mut changed = false;
        for f in &mut module.functions {
            changed |= forward_function(f);
        }
        changed
    }
}

pub(crate) fn forward_function(f: &mut Function) -> bool {
    let mut changed = false;
    for block in &mut f.blocks {
        // For each global: the register currently known to hold its value.
        let mut held: HashMap<GlobalId, Reg> = HashMap::new();
        let mut remove = vec![false; block.instrs.len()];

        for (idx, instr) in block.instrs.iter_mut().enumerate() {
            match instr {
                Instr::LoadGlobal { dst, global } => {
                    if let Some(&r) = held.get(global) {
                        if r != *dst {
                            let (d, g) = (*dst, *global);
                            *instr = Instr::Mov { dst: d, src: r };
                            changed = true;
                            invalidate_def(&mut held, d);
                            held.insert(g, d);
                            continue;
                        }
                    }
                    let (d, g) = (*dst, *global);
                    invalidate_def(&mut held, d);
                    held.insert(g, d);
                }
                Instr::StoreGlobal { global, src } => {
                    if held.get(global) == Some(src) {
                        // The global already holds this exact value.
                        remove[idx] = true;
                        changed = true;
                    } else {
                        held.insert(*global, *src);
                    }
                }
                // Calls and raises may read or write any global.
                Instr::Call { .. } | Instr::CallNative { .. } | Instr::Raise { .. } => {
                    held.clear();
                    if let Some(d) = instr.def() {
                        invalidate_def(&mut held, d);
                    }
                }
                // Lock operations are barriers out of caution: in the
                // unlocked window another activation could mutate state.
                // Fused locked forms embed a lock/unlock pair, so they
                // barrier too (and write their global besides).
                Instr::Lock { .. }
                | Instr::Unlock { .. }
                | Instr::LockedStore { .. }
                | Instr::LockedFoldImm { .. } => {
                    held.clear();
                }
                // Fused folds write their global with a value held in no
                // register: forget any register mapping for it.
                Instr::GlobalFold { global, .. } | Instr::GlobalFoldImm { global, .. } => {
                    held.remove(global);
                }
                // In-place buffer mutation diverges the register from the
                // global's snapshot.
                Instr::BytesSet { bytes, .. } => {
                    let b = *bytes;
                    held.retain(|_, r| *r != b);
                }
                other => {
                    if let Some(d) = other.def() {
                        invalidate_def(&mut held, d);
                    }
                }
            }
        }

        if remove.iter().any(|&r| r) {
            let mut it = remove.iter();
            block.instrs.retain(|_| !*it.next().expect("mask"));
        }
    }
    changed
}

fn invalidate_def(held: &mut HashMap<GlobalId, Reg>, def: Reg) {
    held.retain(|_, r| *r != def);
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdo_ir::interp::{call, BasicEnv};
    use pdo_ir::parse::parse_module;
    use pdo_ir::Value;

    fn exec(m: &Module, name: &str, args: &[Value]) -> (Value, Vec<Value>, u64) {
        let id = m.function_by_name(name).unwrap();
        let mut env = BasicEnv::new(m);
        let r = call(m, &mut env, id, args).unwrap();
        let globals = (0..m.globals.len())
            .map(|g| env.global(GlobalId::from_index(g)).clone())
            .collect();
        (r, globals, env.cost.lock_ops)
    }

    #[test]
    fn coalesces_adjacent_unlock_lock() {
        let text = "global g = int 0\n\
             func @f(1) {\n\
             b0:\n\
               lock $g\n\
               store $g, r0\n\
               unlock $g\n\
               lock $g\n\
               r1 = load $g\n\
               unlock $g\n\
               ret r1\n\
             }\n";
        let mut m = parse_module(text).unwrap();
        let before = exec(&m, "f", &[Value::Int(5)]);
        assert!(LockCoalesce.run(&mut m));
        pdo_ir::verify_module(&m).unwrap();
        let after = exec(&m, "f", &[Value::Int(5)]);
        assert_eq!(before.0, after.0);
        assert_eq!(before.1, after.1);
        assert_eq!(before.2, 4);
        assert_eq!(after.2, 2);
    }

    #[test]
    fn call_between_blocks_coalescing() {
        let text = "global g = int 0\n\
             native w\n\
             func @f(1) {\n\
             b0:\n\
               unlock $g\n\
               r1 = native !w(r0)\n\
               lock $g\n\
               ret r1\n\
             }\n";
        let mut m = parse_module(text).unwrap();
        assert!(!LockCoalesce.run(&mut m));
    }

    #[test]
    fn different_globals_not_paired() {
        let text = "global a = int 0\n\
             global b = int 0\n\
             func @f(0) {\n\
             b0:\n\
               unlock $a\n\
               lock $b\n\
               ret\n\
             }\n";
        let mut m = parse_module(text).unwrap();
        assert!(!LockCoalesce.run(&mut m));
    }

    #[test]
    fn forwards_repeated_loads() {
        let text = "global g = int 7\n\
             func @f(0) {\n\
             b0:\n\
               r0 = load $g\n\
               r1 = load $g\n\
               r2 = add r0, r1\n\
               ret r2\n\
             }\n";
        let mut m = parse_module(text).unwrap();
        assert!(RedundantLoadElim.run(&mut m));
        assert!(matches!(
            m.functions[0].blocks[0].instrs[1],
            Instr::Mov { src: Reg(0), .. }
        ));
        assert_eq!(exec(&m, "f", &[]).0, Value::Int(14));
    }

    #[test]
    fn store_then_load_forwarded() {
        let text = "global g = int 0\n\
             func @f(1) {\n\
             b0:\n\
               store $g, r0\n\
               r1 = load $g\n\
               ret r1\n\
             }\n";
        let mut m = parse_module(text).unwrap();
        assert!(RedundantLoadElim.run(&mut m));
        assert!(matches!(
            m.functions[0].blocks[0].instrs[1],
            Instr::Mov { src: Reg(0), .. }
        ));
        let (r, globals, _) = exec(&m, "f", &[Value::Int(9)]);
        assert_eq!(r, Value::Int(9));
        assert_eq!(globals[0], Value::Int(9));
    }

    #[test]
    fn redundant_store_removed() {
        let text = "global g = int 0\n\
             func @f(1) {\n\
             b0:\n\
               store $g, r0\n\
               store $g, r0\n\
               ret\n\
             }\n";
        let mut m = parse_module(text).unwrap();
        assert!(RedundantLoadElim.run(&mut m));
        assert_eq!(
            m.functions[0].blocks[0]
                .instrs
                .iter()
                .filter(|i| matches!(i, Instr::StoreGlobal { .. }))
                .count(),
            1
        );
        assert_eq!(exec(&m, "f", &[Value::Int(3)]).1[0], Value::Int(3));
    }

    #[test]
    fn raise_is_a_barrier() {
        let text = "event E\n\
             global g = int 7\n\
             func @f(0) {\n\
             b0:\n\
               r0 = load $g\n\
               raise sync %E()\n\
               r1 = load $g\n\
               r2 = add r0, r1\n\
               ret r2\n\
             }\n";
        let mut m = parse_module(text).unwrap();
        assert!(!RedundantLoadElim.run(&mut m));
    }

    #[test]
    fn register_redefinition_invalidates_forwarding() {
        let text = "global g = int 7\n\
             func @f(0) {\n\
             b0:\n\
               r0 = load $g\n\
               r1 = const int 0\n\
               r0 = mov r1\n\
               r2 = load $g\n\
               ret r2\n\
             }\n";
        let mut m = parse_module(text).unwrap();
        RedundantLoadElim.run(&mut m);
        // The second load must NOT become `mov r0` (r0 was clobbered).
        assert!(matches!(
            m.functions[0].blocks[0].instrs[3],
            Instr::LoadGlobal { .. }
        ));
        assert_eq!(exec(&m, "f", &[]).0, Value::Int(7));
    }

    #[test]
    fn bset_on_held_register_invalidates() {
        let text = "global g = bytes 00\n\
             func @f(0) {\n\
             b0:\n\
               r0 = load $g\n\
               r1 = const int 0\n\
               r2 = const int 9\n\
               bset r0, r1, r2\n\
               r3 = load $g\n\
               ret r3\n\
             }\n";
        let mut m = parse_module(text).unwrap();
        RedundantLoadElim.run(&mut m);
        assert!(matches!(
            m.functions[0].blocks[0].instrs[4],
            Instr::LoadGlobal { .. }
        ));
        // Global is unchanged by the register-local mutation.
        assert_eq!(exec(&m, "f", &[]).0, Value::bytes(vec![0]));
    }
}
