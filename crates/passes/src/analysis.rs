//! Dataflow analyses shared by the passes: liveness, reachability, and the
//! constant lattice.

use pdo_ir::{Function, Instr, Reg, Terminator, Value};
use std::collections::VecDeque;

/// A bit set over registers of one function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegSet {
    bits: Vec<u64>,
}

impl RegSet {
    /// An empty set sized for `reg_count` registers.
    pub fn new(reg_count: u16) -> Self {
        RegSet {
            bits: vec![0; usize::from(reg_count).div_ceil(64)],
        }
    }

    /// Inserts `r`; returns `true` if it was newly inserted.
    pub fn insert(&mut self, r: Reg) -> bool {
        let (w, b) = (r.index() / 64, r.index() % 64);
        let had = self.bits[w] & (1 << b) != 0;
        self.bits[w] |= 1 << b;
        !had
    }

    /// Removes `r`.
    pub fn remove(&mut self, r: Reg) {
        let (w, b) = (r.index() / 64, r.index() % 64);
        self.bits[w] &= !(1 << b);
    }

    /// Membership test.
    pub fn contains(&self, r: Reg) -> bool {
        let (w, b) = (r.index() / 64, r.index() % 64);
        self.bits.get(w).is_some_and(|word| word & (1 << b) != 0)
    }

    /// Unions `other` into `self`; returns `true` if `self` grew.
    pub fn union_with(&mut self, other: &RegSet) -> bool {
        let mut grew = false;
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            let before = *a;
            *a |= b;
            grew |= *a != before;
        }
        grew
    }
}

/// Per-block liveness sets.
#[derive(Debug, Clone)]
pub struct Liveness {
    /// Registers live on entry to each block.
    pub live_in: Vec<RegSet>,
    /// Registers live on exit from each block.
    pub live_out: Vec<RegSet>,
}

/// Registers used by a terminator.
fn term_uses(t: &Terminator, mut f: impl FnMut(Reg)) {
    match t {
        Terminator::Branch { cond, .. } => f(*cond),
        Terminator::Ret(Some(r)) => f(*r),
        _ => {}
    }
}

/// Computes backward liveness for `f` with a standard worklist algorithm.
pub fn liveness(f: &Function) -> Liveness {
    let n = f.blocks.len();
    let mut live_in = vec![RegSet::new(f.reg_count); n];
    let mut live_out = vec![RegSet::new(f.reg_count); n];
    let preds = f.predecessors();

    let mut work: VecDeque<usize> = (0..n).collect();
    while let Some(b) = work.pop_front() {
        // live_out[b] = union of live_in of successors.
        let mut out = RegSet::new(f.reg_count);
        f.blocks[b].term.for_each_successor(|s| {
            out.union_with(&live_in[s.index()]);
        });
        live_out[b] = out;

        // Transfer backwards through the block.
        let mut live = live_out[b].clone();
        term_uses(&f.blocks[b].term, |r| {
            live.insert(r);
        });
        for instr in f.blocks[b].instrs.iter().rev() {
            if let Some(d) = instr.def() {
                live.remove(d);
            }
            instr.for_each_use(|r| {
                live.insert(r);
            });
        }
        if live != live_in[b] {
            live_in[b] = live;
            for &p in &preds[b] {
                if !work.contains(&p.index()) {
                    work.push_back(p.index());
                }
            }
        }
    }
    Liveness { live_in, live_out }
}

/// Returns which blocks are reachable from the entry.
pub fn reachable_blocks(f: &Function) -> Vec<bool> {
    let mut seen = vec![false; f.blocks.len()];
    let mut stack = vec![0usize];
    while let Some(b) = stack.pop() {
        if seen[b] {
            continue;
        }
        seen[b] = true;
        f.blocks[b].term.for_each_successor(|s| {
            if s.index() < f.blocks.len() && !seen[s.index()] {
                stack.push(s.index());
            }
        });
    }
    seen
}

/// The constant-propagation lattice for one register.
#[derive(Debug, Clone, PartialEq)]
pub enum Lattice {
    /// Not yet observed (top).
    Top,
    /// Known constant.
    Const(Value),
    /// Varies (bottom).
    Bottom,
}

impl Lattice {
    /// Lattice meet.
    pub fn meet(&self, other: &Lattice) -> Lattice {
        match (self, other) {
            (Lattice::Top, x) | (x, Lattice::Top) => x.clone(),
            (Lattice::Const(a), Lattice::Const(b)) if a == b => Lattice::Const(a.clone()),
            _ => Lattice::Bottom,
        }
    }

    /// The constant, if known.
    pub fn as_const(&self) -> Option<&Value> {
        match self {
            Lattice::Const(v) => Some(v),
            _ => None,
        }
    }
}

/// Abstract state: one lattice element per register.
pub type ConstState = Vec<Lattice>;

/// Meets `other` into `state`; returns `true` if `state` changed.
pub fn meet_states(state: &mut ConstState, other: &ConstState) -> bool {
    let mut changed = false;
    for (a, b) in state.iter_mut().zip(other) {
        let m = a.meet(b);
        if m != *a {
            *a = m;
            changed = true;
        }
    }
    changed
}

/// Applies one instruction's effect to the abstract constant state.
pub fn const_transfer(state: &mut ConstState, instr: &Instr) {
    match instr {
        Instr::Const { dst, value } => state[dst.index()] = Lattice::Const(value.clone()),
        Instr::Mov { dst, src } => state[dst.index()] = state[src.index()].clone(),
        Instr::Bin { op, dst, lhs, rhs } => {
            state[dst.index()] =
                match (state[lhs.index()].as_const(), state[rhs.index()].as_const()) {
                    (Some(a), Some(b)) => match op.eval(a, b) {
                        Ok(v) => Lattice::Const(v),
                        Err(_) => Lattice::Bottom,
                    },
                    _ => Lattice::Bottom,
                };
        }
        Instr::Un { op, dst, src } => {
            state[dst.index()] = match state[src.index()].as_const() {
                Some(v) => match op.eval(v) {
                    Ok(r) => Lattice::Const(r),
                    Err(_) => Lattice::Bottom,
                },
                None => Lattice::Bottom,
            };
        }
        // BytesSet mutates the buffer held in its `bytes` register without
        // redefining it; a previously-known constant no longer describes it.
        Instr::BytesSet { bytes, .. } => state[bytes.index()] = Lattice::Bottom,
        other => {
            if let Some(d) = other.def() {
                state[d.index()] = Lattice::Bottom;
            }
        }
    }
}

/// Computes block-entry constant states for `f` (worklist to fixpoint).
///
/// Registers hold [`Value::Unit`] before their first write, so at the entry
/// block every non-parameter register starts as `Const(Unit)` while
/// parameters start as `Bottom`.
pub fn const_states(f: &Function) -> Vec<ConstState> {
    let n = f.blocks.len();
    let top: ConstState = vec![Lattice::Top; usize::from(f.reg_count)];
    let mut in_states = vec![top; n];

    for (r, slot) in in_states[0].iter_mut().enumerate() {
        *slot = if r < usize::from(f.params) {
            Lattice::Bottom
        } else {
            Lattice::Const(Value::Unit)
        };
    }

    let mut work: VecDeque<usize> = VecDeque::from([0]);
    while let Some(b) = work.pop_front() {
        let mut state = in_states[b].clone();
        for instr in &f.blocks[b].instrs {
            const_transfer(&mut state, instr);
        }
        f.blocks[b].term.for_each_successor(|s| {
            if meet_states(&mut in_states[s.index()], &state) && !work.contains(&s.index()) {
                work.push_back(s.index());
            }
        });
    }
    in_states
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdo_ir::parse::parse_module;

    #[test]
    fn regset_basics() {
        let mut s = RegSet::new(100);
        assert!(s.insert(Reg(70)));
        assert!(!s.insert(Reg(70)));
        assert!(s.contains(Reg(70)));
        s.remove(Reg(70));
        assert!(!s.contains(Reg(70)));
    }

    #[test]
    fn liveness_straight_line() {
        let m = parse_module(
            "func @f(1) {\n\
             b0:\n\
               r1 = const int 1\n\
               r2 = add r0, r1\n\
               ret r2\n\
             }\n",
        )
        .unwrap();
        let lv = liveness(&m.functions[0]);
        // Nothing is live out of the only block.
        assert!(!lv.live_out[0].contains(Reg(2)));
        // The parameter is live in.
        assert!(lv.live_in[0].contains(Reg(0)));
        assert!(!lv.live_in[0].contains(Reg(1)));
    }

    #[test]
    fn liveness_across_branch() {
        let m = parse_module(
            "func @f(2) {\n\
             b0:\n\
               r2 = const bool true\n\
               br r2, b1, b2\n\
             b1:\n\
               ret r0\n\
             b2:\n\
               ret r1\n\
             }\n",
        )
        .unwrap();
        let lv = liveness(&m.functions[0]);
        assert!(lv.live_out[0].contains(Reg(0)));
        assert!(lv.live_out[0].contains(Reg(1)));
        assert!(lv.live_in[1].contains(Reg(0)));
        assert!(!lv.live_in[1].contains(Reg(1)));
    }

    #[test]
    fn liveness_loop_carried() {
        let m = parse_module(
            "func @f(1) {\n\
             b0:\n\
               r1 = const int 0\n\
               jump b1\n\
             b1:\n\
               r2 = lt r1, r0\n\
               br r2, b2, b3\n\
             b2:\n\
               r3 = const int 1\n\
               r4 = add r1, r3\n\
               r1 = mov r4\n\
               jump b1\n\
             b3:\n\
               ret r1\n\
             }\n",
        )
        .unwrap();
        let lv = liveness(&m.functions[0]);
        // r1 is live around the loop.
        assert!(lv.live_in[1].contains(Reg(1)));
        assert!(lv.live_out[2].contains(Reg(1)));
        // r0 (the bound) is live into the loop header.
        assert!(lv.live_in[1].contains(Reg(0)));
    }

    #[test]
    fn reachability() {
        let m = parse_module(
            "func @f(0) {\n\
             b0:\n\
               jump b2\n\
             b1:\n\
               ret\n\
             b2:\n\
               ret\n\
             }\n",
        )
        .unwrap();
        let r = reachable_blocks(&m.functions[0]);
        assert_eq!(r, vec![true, false, true]);
    }

    #[test]
    fn lattice_meet() {
        let c1 = Lattice::Const(Value::Int(1));
        let c2 = Lattice::Const(Value::Int(2));
        assert_eq!(Lattice::Top.meet(&c1), c1);
        assert_eq!(c1.meet(&c1), c1);
        assert_eq!(c1.meet(&c2), Lattice::Bottom);
        assert_eq!(Lattice::Bottom.meet(&c1), Lattice::Bottom);
    }

    #[test]
    fn const_states_entry_initialization() {
        let m = parse_module(
            "func @f(1) {\n\
             b0:\n\
               r1 = const int 5\n\
               ret r1\n\
             }\n",
        )
        .unwrap();
        let states = const_states(&m.functions[0]);
        assert_eq!(states[0][0], Lattice::Bottom); // param
        assert_eq!(states[0][1], Lattice::Const(Value::Unit)); // uninit reg
    }

    #[test]
    fn const_states_merge_conflicting() {
        let m = parse_module(
            "func @f(1) {\n\
             b0:\n\
               r1 = const bool true\n\
               br r1, b1, b2\n\
             b1:\n\
               r2 = const int 1\n\
               jump b3\n\
             b2:\n\
               r2 = const int 2\n\
               jump b3\n\
             b3:\n\
               ret r2\n\
             }\n",
        )
        .unwrap();
        let states = const_states(&m.functions[0]);
        assert_eq!(states[3][2], Lattice::Bottom);
    }

    #[test]
    fn const_states_merge_agreeing() {
        let m = parse_module(
            "func @f(1) {\n\
             b0:\n\
               r1 = const bool true\n\
               br r1, b1, b2\n\
             b1:\n\
               r2 = const int 7\n\
               jump b3\n\
             b2:\n\
               r2 = const int 7\n\
               jump b3\n\
             b3:\n\
               ret r2\n\
             }\n",
        )
        .unwrap();
        let states = const_states(&m.functions[0]);
        assert_eq!(states[3][2], Lattice::Const(Value::Int(7)));
    }

    #[test]
    fn bytes_set_invalidates_constant() {
        let m = parse_module(
            "func @f(0) {\n\
             b0:\n\
               r0 = const bytes 0000\n\
               r1 = const int 0\n\
               r2 = const int 9\n\
               bset r0, r1, r2\n\
               ret r0\n\
             }\n",
        )
        .unwrap();
        let f = &m.functions[0];
        let mut state = const_states(f)[0].clone();
        for i in &f.blocks[0].instrs {
            const_transfer(&mut state, i);
        }
        assert_eq!(state[0], Lattice::Bottom);
    }
}

/// A runtime type tag for the type lattice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tag {
    /// The unit value.
    Unit,
    /// 64-bit integer.
    Int,
    /// Boolean.
    Bool,
    /// Byte buffer.
    Bytes,
    /// String.
    Str,
}

impl Tag {
    /// The tag of a concrete value.
    pub fn of(v: &Value) -> Tag {
        match v {
            Value::Unit => Tag::Unit,
            Value::Int(_) => Tag::Int,
            Value::Bool(_) => Tag::Bool,
            Value::Bytes(_) => Tag::Bytes,
            Value::Str(_) => Tag::Str,
        }
    }
}

/// The type lattice for one register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TyLattice {
    /// Not yet observed.
    Top,
    /// Known type.
    Ty(Tag),
    /// Varies / unknown.
    Bottom,
}

impl TyLattice {
    /// Lattice meet.
    pub fn meet(self, other: TyLattice) -> TyLattice {
        match (self, other) {
            (TyLattice::Top, x) | (x, TyLattice::Top) => x,
            (TyLattice::Ty(a), TyLattice::Ty(b)) if a == b => TyLattice::Ty(a),
            _ => TyLattice::Bottom,
        }
    }

    /// The known tag, if any.
    pub fn tag(self) -> Option<Tag> {
        match self {
            TyLattice::Ty(t) => Some(t),
            _ => None,
        }
    }
}

/// Per-register type state.
pub type TyState = Vec<TyLattice>;

fn ty_transfer(state: &mut TyState, instr: &Instr) {
    use pdo_ir::BinOp as B;
    use pdo_ir::UnOp as U;
    let get = |state: &TyState, r: Reg| state[r.index()];
    let result = match instr {
        Instr::Const { value, .. } => Some(TyLattice::Ty(Tag::of(value))),
        Instr::Mov { src, .. } => Some(get(state, *src)),
        // The state describes values on the non-faulting continuation: if a
        // `mul` completes at all, its result is an Int, so the result type
        // is determined by the operator alone.
        Instr::Bin { op, .. } => {
            let out = match op {
                B::Eq | B::Ne | B::And | B::Or | B::Lt | B::Le | B::Gt | B::Ge => Tag::Bool,
                _ => Tag::Int,
            };
            Some(TyLattice::Ty(out))
        }
        Instr::Un { op, .. } => {
            let out = match op {
                U::Neg | U::BNot => Tag::Int,
                U::Not => Tag::Bool,
            };
            Some(TyLattice::Ty(out))
        }
        Instr::BytesNew { .. } | Instr::BytesConcat { .. } | Instr::BytesSlice { .. } => {
            Some(TyLattice::Ty(Tag::Bytes))
        }
        Instr::BytesLen { .. } | Instr::BytesGet { .. } => Some(TyLattice::Ty(Tag::Int)),
        _ => Some(TyLattice::Bottom), // loads, calls, natives: unknown
    };
    if let (Some(d), Some(r)) = (instr.def(), result) {
        state[d.index()] = r;
    }
}

/// Computes block-entry type states (worklist to fixpoint). Registers hold
/// `Unit` before their first write, so non-parameter registers start as
/// `Ty(Unit)` at the entry; parameters are `Bottom`.
pub fn type_states(f: &Function) -> Vec<TyState> {
    let n = f.blocks.len();
    let top: TyState = vec![TyLattice::Top; usize::from(f.reg_count)];
    let mut in_states = vec![top; n];
    for (r, slot) in in_states[0].iter_mut().enumerate() {
        *slot = if r < usize::from(f.params) {
            TyLattice::Bottom
        } else {
            TyLattice::Ty(Tag::Unit)
        };
    }
    let mut work: VecDeque<usize> = VecDeque::from([0]);
    while let Some(b) = work.pop_front() {
        let mut state = in_states[b].clone();
        for instr in &f.blocks[b].instrs {
            ty_transfer(&mut state, instr);
        }
        f.blocks[b].term.for_each_successor(|s| {
            let mut changed = false;
            for (cur, new) in in_states[s.index()].iter_mut().zip(&state) {
                let m = cur.meet(*new);
                if m != *cur {
                    *cur = m;
                    changed = true;
                }
            }
            if changed && !work.contains(&s.index()) {
                work.push_back(s.index());
            }
        });
    }
    in_states
}

/// True when executing `instr` can never fault given the type state before
/// it. Instructions that *can* fault must be preserved by dead-code
/// elimination even when their result is unused, so optimized code faults
/// exactly when the original would.
pub fn cannot_fault(instr: &Instr, state: &TyState) -> bool {
    use pdo_ir::BinOp as B;
    use pdo_ir::UnOp as U;
    let tag = |r: Reg| state[r.index()].tag();
    match instr {
        Instr::Const { .. } | Instr::Mov { .. } => true,
        Instr::Bin { op, lhs, rhs, .. } => match op {
            B::Eq | B::Ne => true,
            B::Div | B::Rem => false, // divide by zero
            B::And | B::Or => tag(*lhs) == Some(Tag::Bool) && tag(*rhs) == Some(Tag::Bool),
            _ => tag(*lhs) == Some(Tag::Int) && tag(*rhs) == Some(Tag::Int),
        },
        Instr::Un { op, src, .. } => match op {
            U::Neg | U::BNot => tag(*src) == Some(Tag::Int),
            U::Not => tag(*src) == Some(Tag::Bool),
        },
        Instr::BytesLen { bytes, .. } => tag(*bytes) == Some(Tag::Bytes),
        // Everything else either has side effects or can fault (indexing,
        // allocation with a negative size, calls, raises, globals range).
        _ => false,
    }
}

/// Applies `ty_transfer` for external callers stepping through a block.
pub fn type_step(state: &mut TyState, instr: &Instr) {
    ty_transfer(state, instr);
}
