//! Function inlining.
//!
//! The optimizer replaces generic `raise` dispatch with direct calls to
//! super-handlers; inlining then splices those handlers into the call site
//! ("this in turn opens up the possibility of inlining the function call
//! into the call site", §3.2.1). The pass is also useful on ordinary helper
//! calls inside handler bodies.

use crate::Pass;
use pdo_ir::{Block, BlockId, Function, Instr, Module, Reg, Terminator, Value};

/// The inlining pass.
///
/// Callees are inlined when their instruction count does not exceed
/// [`Inline::threshold`] and the call is not (directly) recursive.
#[derive(Debug, Clone, Copy)]
pub struct Inline {
    /// Maximum callee size (instructions incl. terminators) to inline.
    pub threshold: usize,
}

impl Default for Inline {
    fn default() -> Self {
        Inline { threshold: 48 }
    }
}

impl Inline {
    /// An aggressive configuration used on super-handlers, where the paper
    /// inlines the complete merged chain.
    pub fn aggressive() -> Self {
        Inline { threshold: 4096 }
    }
}

impl Pass for Inline {
    fn name(&self) -> &'static str {
        "inline"
    }

    fn run(&self, module: &mut Module) -> bool {
        let mut changed = false;
        for caller_idx in 0..module.functions.len() {
            changed |= inline_into(module, caller_idx, self.threshold);
        }
        changed
    }
}

/// Inlines every eligible call site inside `module.functions[caller_idx]`,
/// leaving all other functions untouched. Returns `true` on change.
///
/// This is the scoped entry point the optimizer uses on freshly built
/// super-handlers.
pub fn inline_into(module: &mut Module, caller_idx: usize, threshold: usize) -> bool {
    let mut changed = false;
    // One site at a time: the callee is cloned out first, keeping the
    // borrow structure simple; iteration reaches a fixed point because
    // recursion is refused.
    loop {
        let site = find_site(module, caller_idx, threshold);
        let Some((block, pos, callee_id)) = site else {
            break;
        };
        let callee = module.functions[callee_id].clone();
        inline_site(&mut module.functions[caller_idx], block, pos, &callee);
        changed = true;
    }
    changed
}

/// Finds the first inlinable call site in `caller`: returns
/// `(block index, instruction index, callee function index)`.
fn find_site(
    module: &Module,
    caller_idx: usize,
    threshold: usize,
) -> Option<(usize, usize, usize)> {
    let caller = &module.functions[caller_idx];
    for (b, block) in caller.blocks.iter().enumerate() {
        for (i, instr) in block.instrs.iter().enumerate() {
            let Instr::Call { func, .. } = instr else {
                continue;
            };
            let callee_idx = func.index();
            if callee_idx == caller_idx || callee_idx >= module.functions.len() {
                continue;
            }
            let callee = &module.functions[callee_idx];
            if callee.instr_count() > threshold {
                continue;
            }
            // Refuse callees that call themselves (direct recursion).
            if calls_function(callee, callee_idx) {
                continue;
            }
            // Refuse callees that call back into the caller (mutual
            // recursion would otherwise ping-pong between iterations).
            if calls_function(callee, caller_idx) {
                continue;
            }
            // Register-file ceiling: splicing adds callee.reg_count regs.
            if usize::from(caller.reg_count) + usize::from(callee.reg_count) > usize::from(u16::MAX)
            {
                continue;
            }
            return Some((b, i, callee_idx));
        }
    }
    None
}

fn calls_function(f: &Function, target: usize) -> bool {
    f.blocks.iter().any(|b| {
        b.instrs
            .iter()
            .any(|i| matches!(i, Instr::Call { func, .. } if func.index() == target))
    })
}

/// Splices `callee` into `caller` at `caller.blocks[block].instrs[pos]`,
/// which must be a `Call` instruction.
fn inline_site(caller: &mut Function, block: usize, pos: usize, callee: &Function) {
    let call_instr = caller.blocks[block].instrs[pos].clone();
    let Instr::Call { dst, args, .. } = call_instr else {
        panic!("inline_site called on a non-call instruction");
    };

    let reg_offset = caller.reg_count;
    let block_offset = caller.blocks.len() as u32 + 1; // +1 for continuation
    caller.reg_count += callee.reg_count;

    // Split the caller block: tail moves to a continuation block.
    let tail: Vec<Instr> = caller.blocks[block].instrs.split_off(pos + 1);
    caller.blocks[block].instrs.pop(); // remove the call itself
    let cont_term = std::mem::replace(
        &mut caller.blocks[block].term,
        Terminator::Jump(BlockId(block_offset)),
    );
    let cont_id = BlockId(caller.blocks.len() as u32);
    caller.blocks.push(Block {
        instrs: tail,
        term: cont_term,
    });
    debug_assert_eq!(cont_id.0 + 1, block_offset); // continuation precedes splice

    // Argument copies feed the callee's parameter registers.
    for (i, arg) in args.iter().enumerate() {
        caller.blocks[block].instrs.push(Instr::Mov {
            dst: Reg(reg_offset + i as u16),
            src: *arg,
        });
    }

    // Splice callee blocks, rewriting registers and block ids.
    for cb in &callee.blocks {
        let mut instrs = Vec::with_capacity(cb.instrs.len());
        for instr in &cb.instrs {
            let mut ni = instr.clone();
            ni.map_uses(|r| Reg(r.0 + reg_offset));
            ni.map_def(|r| Reg(r.0 + reg_offset));
            instrs.push(ni);
        }
        let term = match &cb.term {
            Terminator::Jump(t) => Terminator::Jump(BlockId(t.0 + block_offset)),
            Terminator::Branch {
                cond,
                then_blk,
                else_blk,
            } => Terminator::Branch {
                cond: Reg(cond.0 + reg_offset),
                then_blk: BlockId(then_blk.0 + block_offset),
                else_blk: BlockId(else_blk.0 + block_offset),
            },
            Terminator::Ret(v) => {
                // Return becomes: dst = value; jump continuation.
                match v {
                    Some(r) => instrs.push(Instr::Mov {
                        dst,
                        src: Reg(r.0 + reg_offset),
                    }),
                    None => instrs.push(Instr::Const {
                        dst,
                        value: Value::Unit,
                    }),
                }
                Terminator::Jump(cont_id)
            }
        };
        caller.blocks.push(Block { instrs, term });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PassManager;
    use pdo_ir::interp::{call, BasicEnv};
    use pdo_ir::parse::parse_module;

    fn behaviour(m: &Module, f: &str, args: &[Value]) -> Result<(Value, Vec<Value>), String> {
        let id = m.function_by_name(f).unwrap();
        let mut env = BasicEnv::new(m);
        let r = call(m, &mut env, id, args).map_err(|e| e.to_string())?;
        let globals = (0..m.globals.len())
            .map(|g| env.global(pdo_ir::GlobalId::from_index(g)).clone())
            .collect();
        Ok((r, globals))
    }

    #[test]
    fn inlines_simple_callee() {
        let text = "func @main(1) {\n\
             b0:\n\
               r1 = call @inc(r0)\n\
               r2 = call @inc(r1)\n\
               ret r2\n\
             }\n\
             func @inc(1) {\n\
             b0:\n\
               r1 = const int 1\n\
               r2 = add r0, r1\n\
               ret r2\n\
             }\n";
        let mut m = parse_module(text).unwrap();
        let orig = behaviour(&m, "main", &[Value::Int(5)]).unwrap();
        assert!(Inline::default().run(&mut m));
        pdo_ir::verify_module(&m).unwrap();
        // No calls remain in main.
        let main = &m.functions[0];
        assert!(!main
            .blocks
            .iter()
            .any(|b| b.instrs.iter().any(|i| matches!(i, Instr::Call { .. }))));
        assert_eq!(behaviour(&m, "main", &[Value::Int(5)]).unwrap(), orig);
        assert_eq!(orig.0, Value::Int(7));
    }

    #[test]
    fn inlines_multi_block_callee() {
        let text = "func @main(1) {\n\
             b0:\n\
               r1 = call @abs(r0)\n\
               ret r1\n\
             }\n\
             func @abs(1) {\n\
             b0:\n\
               r1 = const int 0\n\
               r2 = lt r0, r1\n\
               br r2, b1, b2\n\
             b1:\n\
               r3 = neg r0\n\
               ret r3\n\
             b2:\n\
               ret r0\n\
             }\n";
        let mut m = parse_module(text).unwrap();
        assert!(Inline::default().run(&mut m));
        pdo_ir::verify_module(&m).unwrap();
        assert_eq!(
            behaviour(&m, "main", &[Value::Int(-9)]).unwrap().0,
            Value::Int(9)
        );
        assert_eq!(
            behaviour(&m, "main", &[Value::Int(4)]).unwrap().0,
            Value::Int(4)
        );
    }

    #[test]
    fn void_return_produces_unit() {
        let text = "global g = int 0\n\
             func @main(0) {\n\
             b0:\n\
               r0 = call @store5()\n\
               ret r0\n\
             }\n\
             func @store5(0) {\n\
             b0:\n\
               r0 = const int 5\n\
               store $g, r0\n\
               ret\n\
             }\n";
        let mut m = parse_module(text).unwrap();
        assert!(Inline::default().run(&mut m));
        pdo_ir::verify_module(&m).unwrap();
        let (r, globals) = behaviour(&m, "main", &[]).unwrap();
        assert_eq!(r, Value::Unit);
        assert_eq!(globals[0], Value::Int(5));
    }

    #[test]
    fn recursive_callee_not_inlined() {
        let text = "func @main(1) {\n\
             b0:\n\
               r1 = call @rec(r0)\n\
               ret r1\n\
             }\n\
             func @rec(1) {\n\
             b0:\n\
               r1 = call @rec(r0)\n\
               ret r1\n\
             }\n";
        let mut m = parse_module(text).unwrap();
        assert!(!Inline::default().run(&mut m));
    }

    #[test]
    fn oversized_callee_skipped() {
        let mut big = String::from(
            "func @main(1) {\nb0:\n  r1 = call @big(r0)\n  ret r1\n}\nfunc @big(1) {\nb0:\n",
        );
        for i in 1..=60 {
            big.push_str(&format!("  r{i} = const int {i}\n"));
        }
        big.push_str("  ret r0\n}\n");
        let mut m = parse_module(&big).unwrap();
        assert!(!Inline { threshold: 48 }.run(&mut m));
        assert!(Inline::aggressive().run(&mut m));
    }

    #[test]
    fn mutual_recursion_stabilizes() {
        let text = "func @a(1) {\n\
             b0:\n\
               r1 = call @b(r0)\n\
               ret r1\n\
             }\n\
             func @b(1) {\n\
             b0:\n\
               r1 = call @a(r0)\n\
               ret r1\n\
             }\n";
        let mut m = parse_module(text).unwrap();
        // Neither is inlined: each callee calls back into the caller.
        assert!(!Inline::default().run(&mut m));
    }

    #[test]
    fn full_pipeline_after_inline_folds_constants() {
        let text = "func @main(0) {\n\
             b0:\n\
               r0 = const int 20\n\
               r1 = call @inc(r0)\n\
               ret r1\n\
             }\n\
             func @inc(1) {\n\
             b0:\n\
               r1 = const int 1\n\
               r2 = add r0, r1\n\
               ret r2\n\
             }\n";
        let mut m = parse_module(text).unwrap();
        PassManager::standard().run(&mut m);
        // main should collapse to `const 21; ret`.
        let main = &m.functions[0];
        assert_eq!(main.blocks.len(), 1, "main: {}", main);
        assert!(main.instr_count() <= 2, "main: {}", main);
        assert_eq!(behaviour(&m, "main", &[]).unwrap().0, Value::Int(21));
    }

    #[test]
    fn raises_inside_callee_survive_inline() {
        let text = "event E\n\
             func @main(1) {\n\
             b0:\n\
               r1 = call @notify(r0)\n\
               ret r1\n\
             }\n\
             func @notify(1) {\n\
             b0:\n\
               raise sync %E(r0)\n\
               ret r0\n\
             }\n";
        let mut m = parse_module(text).unwrap();
        assert!(Inline::default().run(&mut m));
        let id = m.function_by_name("main").unwrap();
        let mut env = BasicEnv::new(&m);
        call(&m, &mut env, id, &[Value::Int(3)]).unwrap();
        assert_eq!(env.raised.len(), 1);
        assert_eq!(env.raised[0].2, vec![Value::Int(3)]);
    }
}
