//! The CTP composite protocol definition (events + handler IR).

use pdo_cactus::{CompositeBuilder, CompositeProtocol, EventProgram};
use pdo_ir::{BinOp, RaiseMode, Value};

/// Builds the CTP composite protocol with every micro-protocol.
///
/// Micro-protocols: `Driver` (user API + fragmentation), `Fec` (forward
/// error correction), `Sequencing`, `Transmission` (TDriver + TD),
/// `PositiveAck` (PAU + acking + retransmission), `WindowFlowControl`,
/// `Adaptation` (controller chain + adapters), `Session` (open/setup).
#[allow(clippy::too_many_lines)]
pub fn ctp_protocol() -> CompositeProtocol {
    let mut b = CompositeBuilder::new("CTP");

    // Events — the Fig 5 vocabulary.
    let open = b.event("Open");
    let add_sys_input = b.event("AddSysInput");
    let send_msg = b.event("SendMsg");
    let msg_l = b.event("MsgFrmUserL");
    let msg_h = b.event("MsgFrmUserH");
    let seg_from_user = b.event("SegFromUser");
    let seg2net = b.event("Seg2Net");
    let segment_sent = b.event("SegmentSent");
    let segment_acked = b.event("SegmentAcked");
    let segment_timeout = b.event("SegmentTimeout");
    let resize_fragment = b.event("ResizeFragment");
    let adapt = b.event("Adapt");
    let controller = b.event("Controller");
    let controller_firing = b.event("ControllerFiring");
    let controller_fired = b.event("ControllerFired");
    let clk_l = b.event("ControllerClkL");
    let clk_h = b.event("ControllerClkH");
    let sample = b.event("Sample");

    // Shared protocol state (Cactus passes data between handlers through
    // shared data structures; every access pays lock + load/store).
    let g_seq = b.global("seq", Value::Int(0));
    let g_cur_seq = b.global("cur_seq", Value::Int(0));
    let g_frag_size = b.global("frag_size", Value::Int(512));
    let g_window = b.global("window", Value::Int(32));
    let g_in_flight = b.global("in_flight", Value::Int(0));
    let g_wfc_over = b.global("wfc_overruns", Value::Int(0));
    let g_sent = b.global("sent_count", Value::Int(0));
    let g_acked = b.global("acked_count", Value::Int(0));
    let g_retrans = b.global("retrans_count", Value::Int(0));
    let g_retrans_seen = b.global("retrans_seen", Value::Int(0));
    let g_fec_last = b.global("fec_last", Value::Int(0));
    let g_fec_accum = b.global("fec_accum", Value::Int(0));
    let g_wire_buf = b.global("wire_buf", Value::bytes(Vec::new()));
    let g_quality = b.global("quality", Value::Int(100));
    let g_last_sample = b.global("last_sample", Value::Int(0));
    let g_sample_sum = b.global("sample_sum", Value::Int(0));
    let g_resizes = b.global("resize_count", Value::Int(0));
    let g_ack_delay = b.global("ack_delay_ns", Value::Int(30_000_000));
    let g_timeout = b.global("timeout_ns", Value::Int(100_000_000));
    let g_clk_period = b.global("clk_period_ns", Value::Int(200_000_000));

    // Natives (payload work implemented in Rust by the endpoint).
    let n_net_send = b.native("net_send");
    let n_pau_register = b.native("pau_register");
    let n_pau_ack = b.native("pau_ack");
    let n_pau_unacked = b.native("pau_is_unacked");
    let n_retransmit = b.native("retransmit");
    let n_retry_backoff = b.native("retry_backoff");
    let n_fec_parity = b.native("fec_parity");
    let n_ack_drop = b.native("ack_drop");
    let n_sample = b.native("controller_sample");

    // ---- Driver: the user API layers and fragmentation. ----
    b.micro_protocol("Driver", |mp| {
        mp.handler(send_msg, 0, "user_send", 1, |f| {
            f.raise(msg_l, RaiseMode::Sync, &[f.param(0)]);
            f.ret(None);
        });
        mp.handler(msg_l, 0, "msg_low", 1, |f| {
            f.raise(msg_h, RaiseMode::Sync, &[f.param(0)]);
            f.ret(None);
        });
        // Fragmentation: slice the message into frag_size segments, raising
        // SegFromUser for each.
        mp.handler(msg_h, 0, "fragment", 1, |f| {
            let head = f.new_block();
            let body = f.new_block();
            let clip = f.new_block();
            let emit = f.new_block();
            let exit = f.new_block();

            f.lock(g_frag_size);
            let fs = f.load_global(g_frag_size);
            f.unlock(g_frag_size);
            let len = f.bytes_len(f.param(0));
            let off = f.const_int(0);
            f.jump(head);

            f.switch_to(head);
            let done = f.bin(BinOp::Ge, off, len);
            f.branch(done, exit, body);

            f.switch_to(body);
            let end = f.bin(BinOp::Add, off, fs);
            let over = f.bin(BinOp::Gt, end, len);
            f.branch(over, clip, emit);

            f.switch_to(clip);
            f.push(pdo_ir::Instr::Mov { dst: end, src: len });
            f.jump(emit);

            f.switch_to(emit);
            let seg = f.bytes_slice(f.param(0), off, end);
            f.raise(seg_from_user, RaiseMode::Sync, &[seg]);
            f.push(pdo_ir::Instr::Mov { dst: off, src: end });
            f.jump(head);

            f.switch_to(exit);
            f.ret(None);
        });
    });

    // ---- FEC: parity bookkeeping on SegFromUser, wire parity on Seg2Net.
    b.micro_protocol("Fec", |mp| {
        mp.handler(seg_from_user, 0, "fec_sfu1", 1, |f| {
            let parity = f.call_native(n_fec_parity, &[f.param(0)]);
            f.lock(g_fec_last);
            f.store_global(g_fec_last, parity);
            f.unlock(g_fec_last);
            f.ret(None);
        });
        mp.handler(seg_from_user, 3, "fec_sfu2", 1, |f| {
            f.lock(g_fec_last);
            let last = f.load_global(g_fec_last);
            f.unlock(g_fec_last);
            f.lock(g_fec_accum);
            let acc = f.load_global(g_fec_accum);
            let sum = f.bin(BinOp::Add, acc, last);
            f.store_global(g_fec_accum, sum);
            f.unlock(g_fec_accum);
            f.ret(None);
        });
        // Seg2Net: append the parity byte to the outgoing segment.
        mp.handler(seg2net, 2, "fec_s2n", 1, |f| {
            let parity = f.call_native(n_fec_parity, &[f.param(0)]);
            let one = f.const_int(1);
            let pbuf = f.bytes_new(one);
            let zero = f.const_int(0);
            f.bytes_set(pbuf, zero, parity);
            let wire = f.bytes_concat(f.param(0), pbuf);
            f.lock(g_wire_buf);
            f.store_global(g_wire_buf, wire);
            f.unlock(g_wire_buf);
            f.ret(None);
        });
    });

    // ---- Sequencing: assign a sequence number per segment. ----
    b.micro_protocol("Sequencing", |mp| {
        mp.handler(seg_from_user, 1, "seqseg_sfu", 1, |f| {
            f.lock(g_seq);
            let s = f.load_global(g_seq);
            let one = f.const_int(1);
            let next = f.bin(BinOp::Add, s, one);
            f.store_global(g_seq, next);
            f.store_global(g_cur_seq, next);
            f.unlock(g_seq);
            f.ret(None);
        });
    });

    // ---- Transmission: TDriver raises Seg2Net; TD sends on the wire. ----
    b.micro_protocol("Transmission", |mp| {
        mp.handler(seg_from_user, 2, "tdriver_sfu", 1, |f| {
            f.raise(seg2net, RaiseMode::Sync, &[f.param(0)]);
            f.ret(None);
        });
        mp.handler(seg2net, 3, "td_s2n", 1, |f| {
            let skip = f.new_block();
            let ack = f.new_block();

            f.lock(g_wire_buf);
            let wire = f.load_global(g_wire_buf);
            f.unlock(g_wire_buf);
            f.lock(g_cur_seq);
            let sq = f.load_global(g_cur_seq);
            f.unlock(g_cur_seq);
            let _ = f.call_native(n_net_send, &[sq, wire]);
            f.lock(g_sent);
            let sent = f.load_global(g_sent);
            let one = f.const_int(1);
            let sent2 = f.bin(BinOp::Add, sent, one);
            f.store_global(g_sent, sent2);
            f.unlock(g_sent);
            f.raise(segment_sent, RaiseMode::Async, &[sq]);
            // Simulated network: the ack arrives after ack_delay unless the
            // deterministic loss model drops it.
            let dropped = f.call_native(n_ack_drop, &[sq]);
            f.branch(dropped, skip, ack);

            f.switch_to(ack);
            let delay = f.load_global(g_ack_delay);
            f.raise(segment_acked, RaiseMode::Timed, &[delay, sq]);
            f.ret(None);

            f.switch_to(skip);
            f.ret(None);
        });
    });

    // ---- Positive acknowledgements + retransmission. ----
    b.micro_protocol("PositiveAck", |mp| {
        mp.handler(seg2net, 0, "pau_s2n", 1, |f| {
            f.lock(g_cur_seq);
            let sq = f.load_global(g_cur_seq);
            f.unlock(g_cur_seq);
            let _ = f.call_native(n_pau_register, &[sq, f.param(0)]);
            let delay = f.load_global(g_timeout);
            f.raise(segment_timeout, RaiseMode::Timed, &[delay, sq]);
            f.ret(None);
        });
        mp.handler(segment_acked, 0, "pau_on_ack", 1, |f| {
            let _ = f.call_native(n_pau_ack, &[f.param(0)]);
            f.lock(g_in_flight);
            let v = f.load_global(g_in_flight);
            let one = f.const_int(1);
            let v2 = f.bin(BinOp::Sub, v, one);
            f.store_global(g_in_flight, v2);
            f.unlock(g_in_flight);
            f.lock(g_acked);
            let a = f.load_global(g_acked);
            let a2 = f.bin(BinOp::Add, a, one);
            f.store_global(g_acked, a2);
            f.unlock(g_acked);
            f.ret(None);
        });
        mp.handler(segment_timeout, 0, "pau_on_timeout", 1, |f| {
            let resend = f.new_block();
            let ack_arm = f.new_block();
            let rearm = f.new_block();
            let retry = f.new_block();
            let exit = f.new_block();
            let still = f.call_native(n_pau_unacked, &[f.param(0)]);
            f.branch(still, resend, exit);

            f.switch_to(resend);
            let delivered = f.call_native(n_retransmit, &[f.param(0)]);
            f.lock(g_retrans);
            let r = f.load_global(g_retrans);
            let one = f.const_int(1);
            let r2 = f.bin(BinOp::Add, r, one);
            f.store_global(g_retrans, r2);
            f.unlock(g_retrans);
            f.branch(delivered, ack_arm, rearm);

            // The copy reached the receiver: its ack is on the way.
            f.switch_to(ack_arm);
            let delay = f.load_global(g_ack_delay);
            f.raise(segment_acked, RaiseMode::Timed, &[delay, f.param(0)]);
            f.ret(None);

            // Lost again: back off exponentially; a non-positive delay
            // means the retry budget is exhausted (peer unreachable).
            f.switch_to(rearm);
            let next = f.call_native(n_retry_backoff, &[f.param(0)]);
            let zero = f.const_int(0);
            let alive = f.bin(BinOp::Gt, next, zero);
            f.branch(alive, retry, exit);

            f.switch_to(retry);
            f.raise(segment_timeout, RaiseMode::Timed, &[next, f.param(0)]);
            f.ret(None);

            f.switch_to(exit);
            f.ret(None);
        });
        // Stats-only observer for SegmentSent.
        mp.handler(segment_sent, 0, "sent_observer", 1, |f| {
            f.ret(None);
        });
    });

    // ---- Window flow control. ----
    b.micro_protocol("WindowFlowControl", |mp| {
        mp.handler(seg2net, 1, "wfc_s2n", 1, |f| {
            let over_blk = f.new_block();
            let exit = f.new_block();
            f.lock(g_in_flight);
            let v = f.load_global(g_in_flight);
            let one = f.const_int(1);
            let v2 = f.bin(BinOp::Add, v, one);
            f.store_global(g_in_flight, v2);
            f.unlock(g_in_flight);
            let w = f.load_global(g_window);
            let over = f.bin(BinOp::Gt, v2, w);
            f.branch(over, over_blk, exit);

            f.switch_to(over_blk);
            f.lock(g_wfc_over);
            let o = f.load_global(g_wfc_over);
            let o2 = f.bin(BinOp::Add, o, one);
            f.store_global(g_wfc_over, o2);
            f.unlock(g_wfc_over);
            f.ret(None);

            f.switch_to(exit);
            f.ret(None);
        });
    });

    // ---- Adaptation: the controller clock chain and the adapters. ----
    b.micro_protocol("Adaptation", |mp| {
        mp.handler(clk_l, 0, "clk_low", 0, |f| {
            f.raise(clk_h, RaiseMode::Sync, &[]);
            // Re-arm the clock.
            let period = f.load_global(g_clk_period);
            f.raise(clk_l, RaiseMode::Timed, &[period]);
            f.ret(None);
        });
        mp.handler(clk_h, 0, "clk_high", 0, |f| {
            f.raise(controller_firing, RaiseMode::Sync, &[]);
            f.ret(None);
        });
        mp.handler(controller_firing, 0, "firing", 0, |f| {
            f.raise(controller, RaiseMode::Sync, &[]);
            f.ret(None);
        });
        mp.handler(controller, 0, "controller_body", 0, |f| {
            let s = f.call_native(n_sample, &[]);
            f.lock(g_last_sample);
            f.store_global(g_last_sample, s);
            f.unlock(g_last_sample);
            f.raise(sample, RaiseMode::Async, &[s]);
            f.raise(controller_fired, RaiseMode::Sync, &[]);
            f.ret(None);
        });
        mp.handler(controller_fired, 0, "fired", 0, |f| {
            f.raise(adapt, RaiseMode::Sync, &[]);
            f.ret(None);
        });
        // Adapt handler 1: fragment-size (rate) adaptation.
        mp.handler(adapt, 0, "rate_adapt", 0, |f| {
            let shrink = f.new_block();
            let clamp_low = f.new_block();
            let shrink_done = f.new_block();
            let grow = f.new_block();
            let clamp_high = f.new_block();
            let grow_done = f.new_block();

            f.lock(g_retrans);
            let r = f.load_global(g_retrans);
            f.unlock(g_retrans);
            let prev = f.load_global(g_retrans_seen);
            let delta = f.bin(BinOp::Sub, r, prev);
            f.store_global(g_retrans_seen, r);
            let two = f.const_int(2);
            let high = f.bin(BinOp::Gt, delta, two);
            let fs = f.load_global(g_frag_size);
            f.branch(high, shrink, grow);

            f.switch_to(shrink);
            let half = f.bin(BinOp::Div, fs, two);
            let min = f.const_int(64);
            let too_small = f.bin(BinOp::Lt, half, min);
            f.branch(too_small, clamp_low, shrink_done);

            f.switch_to(clamp_low);
            f.push(pdo_ir::Instr::Mov {
                dst: half,
                src: min,
            });
            f.jump(shrink_done);

            f.switch_to(shrink_done);
            f.store_global(g_frag_size, half);
            f.raise(resize_fragment, RaiseMode::Sync, &[half]);
            f.ret(None);

            f.switch_to(grow);
            let sixteen = f.const_int(16);
            let bigger = f.bin(BinOp::Add, fs, sixteen);
            let max = f.const_int(1024);
            let too_big = f.bin(BinOp::Gt, bigger, max);
            f.branch(too_big, clamp_high, grow_done);

            f.switch_to(clamp_high);
            f.push(pdo_ir::Instr::Mov {
                dst: bigger,
                src: max,
            });
            f.jump(grow_done);

            f.switch_to(grow_done);
            f.store_global(g_frag_size, bigger);
            f.ret(None);
        });
        // Adapt handler 2: quality estimation.
        mp.handler(adapt, 1, "quality_adapt", 0, |f| {
            f.lock(g_in_flight);
            let inflight = f.load_global(g_in_flight);
            f.unlock(g_in_flight);
            let hundred = f.const_int(100);
            let q = f.bin(BinOp::Sub, hundred, inflight);
            f.lock(g_quality);
            f.store_global(g_quality, q);
            f.unlock(g_quality);
            f.ret(None);
        });
        mp.handler(resize_fragment, 0, "on_resize", 1, |f| {
            f.lock(g_resizes);
            let n = f.load_global(g_resizes);
            let one = f.const_int(1);
            let n2 = f.bin(BinOp::Add, n, one);
            f.store_global(g_resizes, n2);
            f.unlock(g_resizes);
            f.ret(None);
        });
        mp.handler(sample, 0, "on_sample", 1, |f| {
            f.lock(g_sample_sum);
            let s = f.load_global(g_sample_sum);
            let s2 = f.bin(BinOp::Add, s, f.param(0));
            f.store_global(g_sample_sum, s2);
            f.unlock(g_sample_sum);
            f.ret(None);
        });
    });

    // ---- Session: open + system input registration. ----
    b.micro_protocol("Session", |mp| {
        mp.handler(open, 0, "on_open", 0, |f| {
            f.raise(add_sys_input, RaiseMode::Sync, &[]);
            let period = f.load_global(g_clk_period);
            f.raise(clk_l, RaiseMode::Timed, &[period]);
            f.ret(None);
        });
        mp.handler(add_sys_input, 0, "on_add_sys_input", 0, |f| {
            let hundred = f.const_int(100);
            f.store_global(g_quality, hundred);
            f.ret(None);
        });
    });

    b.finish()
}

/// The standard, fully-configured CTP program.
pub fn ctp_program() -> EventProgram {
    ctp_protocol().instantiate_all()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdo_ir::verify_module;

    #[test]
    fn protocol_module_verifies() {
        let proto = ctp_protocol();
        verify_module(&proto.module).unwrap();
        assert_eq!(proto.module.events.len(), 18);
        assert!(proto.micro_protocol_names().contains(&"Adaptation"));
    }

    #[test]
    fn all_fig5_events_present() {
        let m = ctp_protocol().module;
        for name in [
            "Open",
            "AddSysInput",
            "SendMsg",
            "MsgFrmUserL",
            "MsgFrmUserH",
            "SegFromUser",
            "Seg2Net",
            "SegmentSent",
            "SegmentAcked",
            "SegmentTimeout",
            "ResizeFragment",
            "Adapt",
            "Controller",
            "ControllerFiring",
            "ControllerFired",
            "ControllerClkL",
            "ControllerClkH",
            "Sample",
        ] {
            assert!(m.event_by_name(name).is_some(), "missing event {name}");
        }
    }

    #[test]
    fn fig8_handler_structure() {
        let proto = ctp_protocol();
        let m = &proto.module;
        // SegFromUser handlers: fec_sfu1, seqseg_sfu, tdriver_sfu, fec_sfu2.
        for h in ["fec_sfu1", "seqseg_sfu", "tdriver_sfu", "fec_sfu2"] {
            assert!(m.function_by_name(h).is_some(), "missing handler {h}");
        }
        // Seg2Net handlers: pau_s2n, wfc_s2n, fec_s2n, td_s2n.
        for h in ["pau_s2n", "wfc_s2n", "fec_s2n", "td_s2n"] {
            assert!(m.function_by_name(h).is_some(), "missing handler {h}");
        }
    }

    #[test]
    fn partial_configuration_without_adaptation() {
        let proto = ctp_protocol();
        let program = proto
            .instantiate(&[
                "Driver",
                "Fec",
                "Sequencing",
                "Transmission",
                "PositiveAck",
                "WindowFlowControl",
                "Session",
            ])
            .unwrap();
        // Adaptation handlers absent: Adapt has no bindings.
        let rt = program.runtime().unwrap();
        let adapt = program.module.event_by_name("Adapt").unwrap();
        assert!(rt.registry().bindings(adapt).is_empty());
    }
}
