//! The video-player workload (paper §4.2, Figs 5/10/11).
//!
//! Frames are generated at a fixed rate and pushed through a
//! [`CtpEndpoint`] over the virtual clock. Handler busy time is measured in
//! real (wall-clock) nanoseconds; total execution time comes from a
//! single-CPU model — a frame's processing starts when it arrives *and* the
//! CPU is free — which reproduces the paper's observation that idle time
//! absorbs event overhead at low frame rates (Fig 10).

use crate::endpoint::{CtpEndpoint, CtpError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Results of one playback session.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PlayStats {
    /// Frames played.
    pub frames: u32,
    /// Frame rate (frames per virtual second).
    pub frame_rate: u32,
    /// Real (wall-clock) nanoseconds spent executing handlers.
    pub busy_ns: u64,
    /// Modeled total execution time in nanoseconds: playback duration, or
    /// longer if the CPU could not keep up.
    pub total_ns: u64,
    /// Segments sent (after draining).
    pub segments_sent: i64,
    /// Retransmissions (after draining).
    pub retransmissions: i64,
    /// Measured per-frame busy time (real ns), for CPU-scale modeling.
    pub frame_busy_ns: Vec<u64>,
    /// Busy time of the final settle/drain phase (real ns).
    pub drain_busy_ns: u64,
}

impl PlayStats {
    /// Busy time as a fraction of total time.
    pub fn utilization(&self) -> f64 {
        if self.total_ns == 0 {
            0.0
        } else {
            self.busy_ns as f64 / self.total_ns as f64
        }
    }

    /// Total execution time under a CPU `scale` factor: each measured busy
    /// nanosecond counts as `scale` ns, modeling a slower (PDA-class)
    /// processor — the population the paper says benefits most. A frame's
    /// processing starts at `max(arrival, cpu_free)`; total execution time
    /// is when the CPU finally goes idle, never less than the playback
    /// duration.
    pub fn modeled_total_ns(&self, scale: u64) -> u64 {
        let period = 1_000_000_000u64 / u64::from(self.frame_rate.max(1));
        let mut cpu_free = 0u64;
        for (i, &busy) in self.frame_busy_ns.iter().enumerate() {
            let arrival = i as u64 * period;
            cpu_free = cpu_free.max(arrival) + busy * scale;
        }
        let playback_end = u64::from(self.frames) * period;
        cpu_free = cpu_free.max(playback_end) + self.drain_busy_ns * scale;
        cpu_free.max(playback_end)
    }

    /// Scaled handler (busy) time.
    pub fn modeled_busy_ns(&self, scale: u64) -> u64 {
        self.busy_ns * scale
    }
}

/// Drives frames through a CTP endpoint at a fixed frame rate.
#[derive(Debug)]
pub struct VideoPlayer {
    endpoint: CtpEndpoint,
    frame_rate: u32,
    rng: StdRng,
}

impl VideoPlayer {
    /// Creates a player over an **opened** (or about-to-be-opened)
    /// endpoint at `frame_rate` frames per virtual second.
    ///
    /// # Panics
    ///
    /// Panics if `frame_rate` is zero.
    pub fn new(endpoint: CtpEndpoint, frame_rate: u32) -> Self {
        assert!(frame_rate > 0, "frame rate must be positive");
        VideoPlayer {
            endpoint,
            frame_rate,
            rng: StdRng::seed_from_u64(0x5EED_CAFE),
        }
    }

    /// Deterministic frame payload for frame `i`: most frames fit one
    /// 512-byte fragment, roughly a fifth need two — giving the ~1.2
    /// segments-per-message ratio visible in Fig 5's edge weights.
    pub fn frame_payload(&mut self, i: u32) -> Vec<u8> {
        let size = if i.is_multiple_of(5) {
            700 + (self.rng.gen::<u32>() % 200) as usize
        } else {
            300 + (self.rng.gen::<u32>() % 180) as usize
        };
        let mut frame = vec![0u8; size];
        for (j, b) in frame.iter_mut().enumerate() {
            *b = (i as usize).wrapping_add(j) as u8;
        }
        frame
    }

    /// Plays `frames` frames; returns the session statistics.
    ///
    /// # Errors
    ///
    /// Propagates endpoint failures.
    pub fn play(&mut self, frames: u32) -> Result<PlayStats, CtpError> {
        let period_ns = 1_000_000_000u64 / u64::from(self.frame_rate);
        let mut busy_total = 0u64;
        let mut cpu_free_at = 0u64;
        let mut frame_busy_ns = Vec::with_capacity(frames as usize);

        for i in 0..frames {
            let arrival = u64::from(i) * period_ns;
            let payload = self.frame_payload(i);
            let t0 = Instant::now();
            // Fire timers due before this frame, then process the frame.
            self.endpoint.run_until(arrival)?;
            self.endpoint.send(&payload)?;
            let busy = t0.elapsed().as_nanos() as u64;
            busy_total += busy;
            frame_busy_ns.push(busy);
            cpu_free_at = cpu_free_at.max(arrival) + busy;
        }
        // Let in-flight acks/timeouts settle.
        let playback_end = u64::from(frames) * period_ns;
        let t0 = Instant::now();
        self.endpoint.run_until(playback_end)?;
        self.endpoint.drain(500_000_000)?;
        let drain_busy = t0.elapsed().as_nanos() as u64;
        busy_total += drain_busy;
        cpu_free_at = cpu_free_at.max(playback_end) + drain_busy;

        let stats = self.endpoint.stats();
        Ok(PlayStats {
            frames,
            frame_rate: self.frame_rate,
            busy_ns: busy_total,
            total_ns: cpu_free_at.max(playback_end),
            segments_sent: stats.segments_sent,
            retransmissions: stats.retransmissions,
            frame_busy_ns,
            drain_busy_ns: drain_busy,
        })
    }

    /// The endpoint, for tracing/cost inspection.
    pub fn endpoint_mut(&mut self) -> &mut CtpEndpoint {
        &mut self.endpoint
    }

    /// Consumes the player, returning the endpoint.
    pub fn into_endpoint(self) -> CtpEndpoint {
        self.endpoint
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::endpoint::CtpParams;
    use crate::protocol::ctp_program;

    fn player(rate: u32) -> VideoPlayer {
        let mut e = CtpEndpoint::new(&ctp_program(), CtpParams::default()).unwrap();
        e.open().unwrap();
        VideoPlayer::new(e, rate)
    }

    #[test]
    fn plays_all_frames() {
        let mut p = player(25);
        let stats = p.play(100).unwrap();
        assert_eq!(stats.frames, 100);
        assert!(stats.segments_sent >= 100, "{stats:?}");
        assert!(stats.segments_sent <= 250);
        assert!(stats.busy_ns > 0);
        assert!(stats.total_ns >= 4_000_000_000 - 40_000_000);
    }

    #[test]
    fn total_time_at_least_playback_duration() {
        let mut p = player(10);
        let stats = p.play(20).unwrap();
        // 20 frames at 10fps = 2 virtual seconds.
        assert!(stats.total_ns >= 2_000_000_000);
        assert!(stats.utilization() < 1.0);
    }

    #[test]
    fn frame_payload_deterministic_sizes() {
        let mut p1 = player(25);
        let mut p2 = player(25);
        for i in 0..20 {
            assert_eq!(p1.frame_payload(i), p2.frame_payload(i));
        }
    }

    #[test]
    fn all_frame_data_reaches_the_wire() {
        let mut p = player(25);
        let mut expected = Vec::new();
        {
            // Regenerate payloads with an identical player to know the
            // expected bytes.
            let mut shadow = player(25);
            for i in 0..30 {
                expected.extend(shadow.frame_payload(i));
            }
        }
        p.play(30).unwrap();
        let wire = p.endpoint_mut().wire_payload();
        // Retransmissions may duplicate segments at the tail; the prefix
        // must match exactly.
        assert!(wire.len() >= expected.len());
        assert_eq!(&wire[..expected.len()], &expected[..]);
    }

    #[test]
    fn session_settles_after_play() {
        let mut p = player(25);
        p.play(50).unwrap();
        let stats = p.endpoint_mut().stats();
        assert_eq!(stats.segments_acked, stats.segments_sent);
    }
}
