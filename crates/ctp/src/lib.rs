//! # pdo-ctp — the Configurable Transport Protocol and the video player
//!
//! CTP is the Cactus-built configurable transport protocol underneath the
//! paper's video-player experiment (§4.2, Figs 5/6/8/10/11). This crate
//! reproduces it as a composite protocol with the event vocabulary of
//! Fig 5:
//!
//! * sender chain: `SendMsg` → `MsgFrmUserL` → `MsgFrmUserH` (fragmentation)
//!   → `SegFromUser` → `Seg2Net` → the wire, with the Fig 8 handler
//!   structure (`FEC-SFU1`, `SeqSeg-SFU`, `TDriver-SFU` — which raises
//!   `Seg2Net` synchronously — `FEC-SFU2`; `PAU-S2N`, `WFC-S2N`, `FEC-S2N`,
//!   `TD-S2N`);
//! * reliability: `SegmentSent`, `SegmentAcked`, `SegmentTimeout` with a
//!   positive-ack unit, deterministic ack loss, and retransmission;
//! * adaptation: the timer-driven controller chain `ControllerClkL` →
//!   `ControllerClkH` → `ControllerFiring` → `Controller` → `ControllerFired`
//!   → `Adapt` (rate + quality adaptation, occasionally raising
//!   `ResizeFragment`), plus asynchronous `Sample` events;
//! * session setup: `Open`, `AddSysInput`.
//!
//! [`VideoPlayer`] drives frames through a [`CtpEndpoint`] at a configurable
//! frame rate over the virtual clock, measuring real handler busy time and
//! deriving total execution time from a single-CPU model — reproducing the
//! shape of Fig 10 (at low frame rates idle time absorbs the event
//! overhead; at high rates the optimized build pulls ahead).
//!
//! ```
//! use pdo_ctp::{ctp_program, CtpEndpoint, CtpParams, VideoPlayer};
//!
//! let program = ctp_program();
//! let mut endpoint = CtpEndpoint::new(&program, CtpParams::default())?;
//! endpoint.open()?;
//! let mut player = VideoPlayer::new(endpoint, 25);
//! let stats = player.play(50)?;
//! assert_eq!(stats.frames, 50);
//! assert!(stats.segments_sent >= 50);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod endpoint;
pub mod protocol;
pub mod video;

pub use endpoint::{CtpEndpoint, CtpError, CtpLinkState, CtpParams, CtpStats, LinkFaults};
pub use protocol::{ctp_program, ctp_protocol};
pub use video::{PlayStats, VideoPlayer};
