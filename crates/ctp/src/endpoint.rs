//! A runnable CTP endpoint: natives, simulated link, and statistics.

use pdo_cactus::EventProgram;
use pdo_events::{Runtime, RuntimeError};
use pdo_ir::{EventId, GlobalId, RaiseMode, Value};
use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

/// Endpoint tunables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CtpParams {
    /// Every `ack_drop_every`-th segment's acknowledgement is lost,
    /// triggering the timeout/retransmission path (0 disables loss).
    pub ack_drop_every: u64,
    /// Controller clock period in virtual ns. The paper's video player
    /// fires its controller once per frame (Fig 6 shows the controller
    /// chain at the same ~391 weight as the sender chain).
    pub clk_period_ns: u64,
}

impl Default for CtpParams {
    fn default() -> Self {
        CtpParams {
            ack_drop_every: 50,
            clk_period_ns: 200_000_000,
        }
    }
}

/// CTP failure.
#[derive(Debug)]
pub enum CtpError {
    /// The event runtime failed.
    Runtime(RuntimeError),
    /// The program lacks a CTP symbol (indicates a build bug).
    MissingSymbol(String),
}

impl fmt::Display for CtpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CtpError::Runtime(e) => write!(f, "runtime error: {e}"),
            CtpError::MissingSymbol(s) => write!(f, "missing symbol `{s}`"),
        }
    }
}

impl std::error::Error for CtpError {}

impl From<RuntimeError> for CtpError {
    fn from(e: RuntimeError) -> Self {
        CtpError::Runtime(e)
    }
}

/// Mutable native-side state shared with the runtime's natives.
#[derive(Debug, Default)]
struct LinkState {
    unacked: HashMap<i64, Vec<u8>>,
    wire: Vec<(i64, Vec<u8>)>,
    retransmissions: u64,
    sends_since_sample: i64,
    ack_drop_every: u64,
}

/// Statistics snapshot of an endpoint.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CtpStats {
    /// Segments sent (IR counter).
    pub segments_sent: i64,
    /// Segments acknowledged.
    pub segments_acked: i64,
    /// Retransmissions performed.
    pub retransmissions: i64,
    /// Fragment-size adaptations that shrank the fragment.
    pub resizes: i64,
    /// Current fragment size.
    pub frag_size: i64,
    /// Current quality estimate.
    pub quality: i64,
    /// Segments currently unacknowledged (native-side view).
    pub in_flight_native: usize,
}

/// A sender endpoint of the CTP composite protocol.
pub struct CtpEndpoint {
    rt: Runtime,
    state: Rc<RefCell<LinkState>>,
    ev_open: EventId,
    ev_send: EventId,
    globals: Globals,
}

#[derive(Debug, Clone, Copy)]
struct Globals {
    sent: GlobalId,
    acked: GlobalId,
    retrans: GlobalId,
    resizes: GlobalId,
    frag_size: GlobalId,
    quality: GlobalId,
}

impl fmt::Debug for CtpEndpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CtpEndpoint").field("rt", &self.rt).finish()
    }
}

impl CtpEndpoint {
    /// Builds an endpoint for `program` (plain or optimizer-extended).
    ///
    /// # Errors
    ///
    /// Fails when the program lacks CTP's events/globals/natives or when
    /// binding fails.
    pub fn new(program: &EventProgram, params: CtpParams) -> Result<CtpEndpoint, CtpError> {
        let mut rt = program.runtime()?;
        let state = Rc::new(RefCell::new(LinkState {
            ack_drop_every: params.ack_drop_every,
            ..Default::default()
        }));
        install_natives(&mut rt, &state)?;
        if let Some(g) = program.module.global_by_name("clk_period_ns") {
            rt.set_global(g, Value::Int(params.clk_period_ns as i64));
        }

        let ev = |name: &str| {
            program
                .module
                .event_by_name(name)
                .ok_or_else(|| CtpError::MissingSymbol(name.to_string()))
        };
        let gl = |name: &str| {
            program
                .module
                .global_by_name(name)
                .ok_or_else(|| CtpError::MissingSymbol(name.to_string()))
        };
        Ok(CtpEndpoint {
            ev_open: ev("Open")?,
            ev_send: ev("SendMsg")?,
            globals: Globals {
                sent: gl("sent_count")?,
                acked: gl("acked_count")?,
                retrans: gl("retrans_count")?,
                resizes: gl("resize_count")?,
                frag_size: gl("frag_size")?,
                quality: gl("quality")?,
            },
            rt,
            state,
        })
    }

    /// Opens the session: runs setup handlers and starts the controller
    /// clock.
    ///
    /// # Errors
    ///
    /// Propagates handler faults.
    pub fn open(&mut self) -> Result<(), CtpError> {
        self.rt.raise(self.ev_open, RaiseMode::Sync, &[])?;
        Ok(())
    }

    /// Sends one application message through the sender chain.
    ///
    /// # Errors
    ///
    /// Propagates handler faults.
    pub fn send(&mut self, payload: &[u8]) -> Result<(), CtpError> {
        self.rt.raise(
            self.ev_send,
            RaiseMode::Sync,
            &[Value::bytes(payload.to_vec())],
        )?;
        Ok(())
    }

    /// Advances virtual time to `deadline_ns`, firing due timers (acks,
    /// timeouts, the controller clock).
    ///
    /// # Errors
    ///
    /// Propagates handler faults.
    pub fn run_until(&mut self, deadline_ns: u64) -> Result<(), CtpError> {
        self.rt.run_until(deadline_ns)?;
        let now = self.rt.clock_ns();
        if deadline_ns > now {
            self.rt.advance_clock(deadline_ns - now);
        }
        Ok(())
    }

    /// Drains all remaining queued/timed work (ends the session; the
    /// controller clock re-arms itself, so this caps at `slack_ns` past the
    /// current time).
    ///
    /// # Errors
    ///
    /// Propagates handler faults.
    pub fn drain(&mut self, slack_ns: u64) -> Result<(), CtpError> {
        let deadline = self.rt.clock_ns().saturating_add(slack_ns);
        self.run_until(deadline)
    }

    /// A statistics snapshot combining IR globals and native state.
    pub fn stats(&self) -> CtpStats {
        let int = |g: GlobalId| self.rt.global(g).as_int().unwrap_or(0);
        let st = self.state.borrow();
        CtpStats {
            segments_sent: int(self.globals.sent),
            segments_acked: int(self.globals.acked),
            retransmissions: int(self.globals.retrans),
            resizes: int(self.globals.resizes),
            frag_size: int(self.globals.frag_size),
            quality: int(self.globals.quality),
            in_flight_native: st.unacked.len(),
        }
    }

    /// The payload bytes observed on the wire (parity bytes stripped), in
    /// first-transmission order — reassembles to the concatenation of sent
    /// messages when nothing needed retransmission.
    pub fn wire_payload(&self) -> Vec<u8> {
        let st = self.state.borrow();
        let mut out = Vec::new();
        for (_, seg) in &st.wire {
            if !seg.is_empty() {
                out.extend_from_slice(&seg[..seg.len() - 1]);
            }
        }
        out
    }

    /// Number of wire transmissions (including retransmissions).
    pub fn wire_count(&self) -> usize {
        self.state.borrow().wire.len()
    }

    /// The underlying runtime (tracing, cost counters, chains).
    pub fn runtime_mut(&mut self) -> &mut Runtime {
        &mut self.rt
    }

    /// Read-only runtime access.
    pub fn runtime(&self) -> &Runtime {
        &self.rt
    }
}

fn install_natives(rt: &mut Runtime, state: &Rc<RefCell<LinkState>>) -> Result<(), CtpError> {
    let int_arg = |args: &[Value], i: usize| -> Result<i64, String> {
        args.get(i)
            .and_then(Value::as_int)
            .ok_or_else(|| format!("expected int argument {i}"))
    };

    let s = Rc::clone(state);
    rt.bind_native_by_name("net_send", move |args| {
        let seq = int_arg(args, 0)?;
        let data = args
            .get(1)
            .and_then(Value::as_bytes)
            .ok_or("expected bytes")?;
        let mut st = s.borrow_mut();
        st.wire.push((seq, data.to_vec()));
        st.sends_since_sample += 1;
        Ok(Value::Unit)
    })
    .map_err(CtpError::Runtime)?;

    let s = Rc::clone(state);
    rt.bind_native_by_name("pau_register", move |args| {
        let seq = int_arg(args, 0)?;
        let data = args
            .get(1)
            .and_then(Value::as_bytes)
            .ok_or("expected bytes")?;
        s.borrow_mut().unacked.insert(seq, data.to_vec());
        Ok(Value::Unit)
    })
    .map_err(CtpError::Runtime)?;

    let s = Rc::clone(state);
    rt.bind_native_by_name("pau_ack", move |args| {
        let seq = int_arg(args, 0)?;
        Ok(Value::Bool(s.borrow_mut().unacked.remove(&seq).is_some()))
    })
    .map_err(CtpError::Runtime)?;

    let s = Rc::clone(state);
    rt.bind_native_by_name("pau_is_unacked", move |args| {
        let seq = int_arg(args, 0)?;
        Ok(Value::Bool(s.borrow().unacked.contains_key(&seq)))
    })
    .map_err(CtpError::Runtime)?;

    let s = Rc::clone(state);
    rt.bind_native_by_name("retransmit", move |args| {
        let seq = int_arg(args, 0)?;
        let mut st = s.borrow_mut();
        if let Some(data) = st.unacked.get(&seq).cloned() {
            st.wire.push((seq, data));
            st.retransmissions += 1;
        }
        Ok(Value::Unit)
    })
    .map_err(CtpError::Runtime)?;

    rt.bind_native_by_name("fec_parity", move |args| {
        let data = args
            .first()
            .and_then(Value::as_bytes)
            .ok_or("expected bytes")?;
        let parity = data.iter().fold(0u8, |a, b| a ^ b);
        Ok(Value::Int(i64::from(parity)))
    })
    .map_err(CtpError::Runtime)?;

    let s = Rc::clone(state);
    rt.bind_native_by_name("ack_drop", move |args| {
        let seq = int_arg(args, 0)?;
        let every = s.borrow().ack_drop_every;
        Ok(Value::Bool(every != 0 && seq as u64 % every == every - 1))
    })
    .map_err(CtpError::Runtime)?;

    let s = Rc::clone(state);
    rt.bind_native_by_name("controller_sample", move |_args| {
        let mut st = s.borrow_mut();
        let v = st.sends_since_sample;
        st.sends_since_sample = 0;
        Ok(Value::Int(v))
    })
    .map_err(CtpError::Runtime)?;

    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::ctp_program;

    fn endpoint() -> CtpEndpoint {
        let mut e = CtpEndpoint::new(&ctp_program(), CtpParams::default()).unwrap();
        e.open().unwrap();
        e
    }

    #[test]
    fn single_small_message_one_segment() {
        let mut e = endpoint();
        e.send(&[7u8; 100]).unwrap();
        let stats = e.stats();
        assert_eq!(stats.segments_sent, 1);
        assert_eq!(e.wire_count(), 1);
        assert_eq!(e.wire_payload(), vec![7u8; 100]);
    }

    #[test]
    fn large_message_fragments() {
        let mut e = endpoint();
        e.send(&vec![1u8; 1200]).unwrap(); // frag 512 -> 3 segments
        assert_eq!(e.stats().segments_sent, 3);
        assert_eq!(e.wire_payload().len(), 1200);
    }

    #[test]
    fn acks_arrive_after_delay() {
        let mut e = endpoint();
        e.send(&[1u8; 10]).unwrap();
        assert_eq!(e.stats().segments_acked, 0);
        assert_eq!(e.stats().in_flight_native, 1);
        e.run_until(40_000_000).unwrap(); // > 30ms ack delay
        assert_eq!(e.stats().segments_acked, 1);
        assert_eq!(e.stats().in_flight_native, 0);
    }

    #[test]
    fn dropped_ack_triggers_retransmission() {
        let program = ctp_program();
        let mut e = CtpEndpoint::new(&program, CtpParams { ack_drop_every: 1, ..Default::default() }).unwrap();
        e.open().unwrap();
        e.send(&[1u8; 10]).unwrap();
        // Every ack dropped: the 100ms timeout fires and retransmits, and
        // the retransmission's ack always arrives.
        e.run_until(200_000_000).unwrap();
        let stats = e.stats();
        assert_eq!(stats.retransmissions, 1);
        assert_eq!(stats.segments_acked, 1);
        assert_eq!(e.wire_count(), 2);
    }

    #[test]
    fn controller_fires_periodically() {
        let mut e = endpoint();
        // 1 second at a 200ms period: ~5 firings.
        e.run_until(1_000_000_000).unwrap();
        let quality = e.stats().quality;
        assert_eq!(quality, 100); // nothing in flight
        let sample_sum = e.runtime().module().global_by_name("sample_sum").unwrap();
        // Samples observed (0 sends, but the Sample event fired).
        assert!(e.runtime().global(sample_sum).as_int().is_some());
        let last = e
            .runtime()
            .module()
            .global_by_name("last_sample")
            .unwrap();
        assert_eq!(e.runtime().global(last).as_int(), Some(0));
    }

    #[test]
    fn heavy_loss_shrinks_fragment_size() {
        let program = ctp_program();
        let mut e = CtpEndpoint::new(&program, CtpParams { ack_drop_every: 1, ..Default::default() }).unwrap();
        e.open().unwrap();
        for i in 0..40 {
            e.send(&vec![i as u8; 700]).unwrap(); // 2 segments each
            e.run_until((i + 1) * 50_000_000).unwrap();
        }
        e.drain(2_000_000_000).unwrap();
        let stats = e.stats();
        assert!(stats.retransmissions > 10);
        assert!(stats.resizes >= 1, "rate adaptation should have shrunk: {stats:?}");
        assert!(stats.frag_size < 512);
    }

    #[test]
    fn no_loss_grows_fragment_size_back() {
        let mut e = endpoint();
        for i in 0..20 {
            e.send(&[0u8; 64]).unwrap();
            e.run_until((i + 1) * 250_000_000).unwrap();
        }
        // Clock ticked ~20 times with no retransmissions: growth to cap.
        assert!(e.stats().frag_size > 512);
    }

    #[test]
    fn stats_balance_after_drain() {
        let mut e = endpoint();
        for i in 0..30 {
            e.send(&vec![1u8; 300]).unwrap();
            e.run_until((i + 1) * 40_000_000).unwrap();
        }
        e.drain(2_000_000_000).unwrap();
        let stats = e.stats();
        assert_eq!(stats.segments_acked, stats.segments_sent);
        assert_eq!(stats.in_flight_native, 0);
    }
}
