//! A runnable CTP endpoint: natives, simulated link, and statistics.

use pdo_cactus::EventProgram;
use pdo_events::wire::{Arrival, FaultyWire, ReceiverState, SequencedReceiver, WireState};
use pdo_events::{Runtime, RuntimeError};
use pdo_ir::{EventId, GlobalId, RaiseMode, Value};
use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

/// Seeded fault model for the simulated link — the shared
/// [`pdo_events::wire::WireFaults`] model (this crate's original
/// implementation was factored out so SecComm and pdo-xwin roll from the
/// same stream discipline; historical seeds reproduce identical fault
/// sequences). A corrupted segment has a payload byte flipped in transit,
/// which the receiver's parity check rejects (counts as loss, no ack).
pub use pdo_events::wire::WireFaults as LinkFaults;

/// Endpoint tunables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CtpParams {
    /// Every `ack_drop_every`-th segment's acknowledgement is lost,
    /// triggering the timeout/retransmission path (0 disables loss).
    pub ack_drop_every: u64,
    /// Controller clock period in virtual ns. The paper's video player
    /// fires its controller once per frame (Fig 6 shows the controller
    /// chain at the same ~391 weight as the sender chain).
    pub clk_period_ns: u64,
    /// Link-level fault injection (defaults to a perfect link).
    pub link_faults: LinkFaults,
    /// Retransmission attempts per segment before the protocol gives up
    /// and reports [`CtpError::PeerUnreachable`]. Each retry doubles the
    /// previous timeout.
    pub max_retries: u32,
}

impl Default for CtpParams {
    fn default() -> Self {
        CtpParams {
            ack_drop_every: 50,
            clk_period_ns: 200_000_000,
            link_faults: LinkFaults::default(),
            max_retries: 8,
        }
    }
}

/// CTP failure.
#[derive(Debug)]
pub enum CtpError {
    /// The event runtime failed.
    Runtime(RuntimeError),
    /// The program lacks a CTP symbol (indicates a build bug).
    MissingSymbol(String),
    /// A segment exhausted its retransmission budget; the link is treated
    /// as dead instead of retrying (and hanging) forever.
    PeerUnreachable,
}

impl fmt::Display for CtpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CtpError::Runtime(e) => write!(f, "runtime error: {e}"),
            CtpError::MissingSymbol(s) => write!(f, "missing symbol `{s}`"),
            CtpError::PeerUnreachable => {
                write!(f, "peer unreachable: retransmission retries exhausted")
            }
        }
    }
}

impl std::error::Error for CtpError {}

impl From<RuntimeError> for CtpError {
    fn from(e: RuntimeError) -> Self {
        CtpError::Runtime(e)
    }
}

/// Mutable native-side state shared with the runtime's natives: the
/// sender's positive-ack unit plus the simulated link and its receiver.
#[derive(Debug)]
struct LinkState {
    unacked: HashMap<i64, Vec<u8>>,
    wire: Vec<(i64, Vec<u8>)>,
    retransmissions: u64,
    sends_since_sample: i64,
    ack_drop_every: u64,
    // Link fault model (shared faulty-wire layer).
    link: FaultyWire<(i64, Vec<u8>)>,
    outcome: HashMap<i64, bool>,
    // Retry/backoff bookkeeping.
    max_retries: u32,
    retries: HashMap<i64, u32>,
    timeout_base_ns: i64,
    unreachable: bool,
    // Receiver: parity check + dedup + in-order release.
    rx: SequencedReceiver<Vec<u8>>,
    rx_corrupt_dropped: u64,
}

/// Trailing-byte parity check (the FEC micro-protocol appends the xor of
/// the payload; the receiver verifies it).
fn parity_ok(segment: &[u8]) -> bool {
    match segment.split_last() {
        Some((p, body)) => body.iter().fold(0u8, |a, b| a ^ b) == *p,
        None => false,
    }
}

impl LinkState {
    fn new(params: &CtpParams) -> Self {
        LinkState {
            unacked: HashMap::new(),
            wire: Vec::new(),
            retransmissions: 0,
            sends_since_sample: 0,
            ack_drop_every: params.ack_drop_every,
            link: FaultyWire::new(params.link_faults),
            outcome: HashMap::new(),
            max_retries: params.max_retries,
            retries: HashMap::new(),
            timeout_base_ns: 100_000_000,
            unreachable: false,
            rx: SequencedReceiver::new(1),
            rx_corrupt_dropped: 0,
        }
    }

    /// One transmission over the faulty link. Returns whether the segment
    /// reaches the receiver intact (i.e. whether an ack will come back).
    fn transmit(&mut self, seq: i64, data: Vec<u8>) -> bool {
        self.wire.push((seq, data.clone()));
        let t = self
            .link
            .transmit((seq, data), |(_, payload)| match payload.first_mut() {
                Some(b) => *b ^= 0xFF,
                None => payload.push(0xFF),
            });
        self.outcome.insert(seq, t.ok());
        let ok = t.ok();
        for arrival in t.arrivals {
            self.receive(arrival);
        }
        ok
    }

    /// Delivers a transmission the reordering stage parked earlier.
    fn flush_held(&mut self) {
        for arrival in self.link.flush() {
            self.receive(arrival);
        }
    }

    /// Receiver intake: parity-check each arrival, then deduplicate by
    /// sequence number, buffer out-of-order arrivals, release
    /// consecutively.
    fn receive(&mut self, arrival: Arrival<(i64, Vec<u8>)>) {
        let (seq, payload) = arrival.item;
        if !parity_ok(&payload) {
            self.rx_corrupt_dropped += 1;
            return;
        }
        self.rx.accept(seq, payload);
    }
}

/// The complete externally serializable state of an endpoint's native
/// side — everything in [`LinkState`], with hash maps flattened into
/// key-sorted vectors so the representation (and any bytes derived from
/// it) is deterministic. Captured by [`CtpEndpoint::export_link`] and
/// reinstated by [`CtpEndpoint::restore_link`]; the runtime's own state
/// (globals, scheduler, clock) is snapshotted separately through
/// [`pdo_events::Runtime`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CtpLinkState {
    /// Unacknowledged segments, seq-sorted.
    pub unacked: Vec<(i64, Vec<u8>)>,
    /// Every wire transmission so far, in first-transmission order.
    pub wire: Vec<(i64, Vec<u8>)>,
    /// Retransmissions performed.
    pub retransmissions: u64,
    /// Sends since the controller last sampled.
    pub sends_since_sample: i64,
    /// Legacy deterministic ack-drop period.
    pub ack_drop_every: u64,
    /// Faulty-link layer (fault rates, RNG position, parked frame, stats).
    pub link: WireState<(i64, Vec<u8>)>,
    /// Delivery outcome per first transmission, seq-sorted.
    pub outcome: Vec<(i64, bool)>,
    /// Retransmission budget per segment.
    pub max_retries: u32,
    /// Retry counters for segments awaiting ack, seq-sorted.
    pub retries: Vec<(i64, u32)>,
    /// Base retransmission timeout (doubles per retry).
    pub timeout_base_ns: i64,
    /// True once any segment exhausted its retry budget.
    pub unreachable: bool,
    /// Receiver dedup/gap-buffer state.
    pub rx: ReceiverState<Vec<u8>>,
    /// Arrivals rejected by the parity check.
    pub rx_corrupt_dropped: u64,
}

/// Statistics snapshot of an endpoint.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CtpStats {
    /// Segments sent (IR counter).
    pub segments_sent: i64,
    /// Segments acknowledged.
    pub segments_acked: i64,
    /// Retransmissions performed.
    pub retransmissions: i64,
    /// Fragment-size adaptations that shrank the fragment.
    pub resizes: i64,
    /// Current fragment size.
    pub frag_size: i64,
    /// Current quality estimate.
    pub quality: i64,
    /// Segments currently unacknowledged (native-side view).
    pub in_flight_native: usize,
    /// Transmissions lost by the link fault model.
    pub link_dropped: u64,
    /// Transmissions duplicated by the link fault model.
    pub link_duplicated: u64,
    /// Transmissions held back (reordered) by the link fault model.
    pub link_reordered: u64,
    /// Transmissions corrupted by the link fault model.
    pub link_corrupted: u64,
    /// Segments the receiver accepted and released in order.
    pub rx_delivered: usize,
    /// Duplicate arrivals the receiver discarded.
    pub rx_duplicates: u64,
    /// Arrivals the receiver rejected on the parity check.
    pub rx_corrupt_dropped: u64,
    /// Highest retry count among currently-unacknowledged segments — the
    /// link-level backoff level (0 when nothing is awaiting retry).
    pub backoff_level: u32,
    /// True once any segment exhausted its retransmission budget.
    pub peer_unreachable: bool,
}

impl CtpStats {
    /// Exports the protocol counters/gauges and the link fault counters
    /// into `snap` with `extra` labels on every series.
    pub fn export_metrics(&self, snap: &mut pdo_obs::MetricsSnapshot, extra: &[(&str, &str)]) {
        let as_u64 = |v: i64| u64::try_from(v).unwrap_or(0);
        snap.counter(
            "pdo_ctp_segments_sent_total",
            "CTP segments sent",
            extra,
            as_u64(self.segments_sent),
        );
        snap.counter(
            "pdo_ctp_segments_acked_total",
            "CTP segments acknowledged",
            extra,
            as_u64(self.segments_acked),
        );
        snap.counter(
            "pdo_ctp_retransmissions_total",
            "CTP retransmissions performed",
            extra,
            as_u64(self.retransmissions),
        );
        snap.counter(
            "pdo_ctp_rx_duplicates_total",
            "Duplicate arrivals the CTP receiver discarded",
            extra,
            self.rx_duplicates,
        );
        snap.counter(
            "pdo_ctp_rx_corrupt_dropped_total",
            "Arrivals the CTP receiver rejected on the parity check",
            extra,
            self.rx_corrupt_dropped,
        );
        snap.gauge(
            "pdo_ctp_frag_size",
            "Current CTP fragment size",
            extra,
            self.frag_size,
        );
        snap.gauge(
            "pdo_ctp_in_flight",
            "CTP segments currently unacknowledged",
            extra,
            self.in_flight_native as i64,
        );
        snap.gauge(
            "pdo_ctp_backoff_level",
            "Highest retry count among unacknowledged CTP segments",
            extra,
            i64::from(self.backoff_level),
        );
        snap.gauge(
            "pdo_ctp_peer_unreachable",
            "1 once any CTP segment exhausted its retransmission budget",
            extra,
            i64::from(self.peer_unreachable),
        );
        let wire = pdo_events::WireStats {
            dropped: self.link_dropped,
            duplicated: self.link_duplicated,
            reordered: self.link_reordered,
            corrupted: self.link_corrupted,
        };
        wire.export_metrics(snap, extra);
    }
}

/// A sender endpoint of the CTP composite protocol.
pub struct CtpEndpoint {
    rt: Runtime,
    state: Rc<RefCell<LinkState>>,
    ev_open: EventId,
    ev_send: EventId,
    globals: Globals,
}

#[derive(Debug, Clone, Copy)]
struct Globals {
    sent: GlobalId,
    acked: GlobalId,
    retrans: GlobalId,
    resizes: GlobalId,
    frag_size: GlobalId,
    quality: GlobalId,
}

impl fmt::Debug for CtpEndpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CtpEndpoint").field("rt", &self.rt).finish()
    }
}

impl CtpEndpoint {
    /// Builds an endpoint for `program` (plain or optimizer-extended).
    ///
    /// # Errors
    ///
    /// Fails when the program lacks CTP's events/globals/natives or when
    /// binding fails.
    pub fn new(program: &EventProgram, params: CtpParams) -> Result<CtpEndpoint, CtpError> {
        let mut rt = program.runtime()?;
        let state = Rc::new(RefCell::new(LinkState::new(&params)));
        install_natives(&mut rt, &state)?;
        if let Some(g) = program.module.global_by_name("clk_period_ns") {
            rt.set_global(g, Value::Int(params.clk_period_ns as i64));
        }
        if let Some(g) = program.module.global_by_name("timeout_ns") {
            if let Some(t) = rt.global(g).as_int() {
                state.borrow_mut().timeout_base_ns = t;
            }
        }

        let ev = |name: &str| {
            program
                .module
                .event_by_name(name)
                .ok_or_else(|| CtpError::MissingSymbol(name.to_string()))
        };
        let gl = |name: &str| {
            program
                .module
                .global_by_name(name)
                .ok_or_else(|| CtpError::MissingSymbol(name.to_string()))
        };
        Ok(CtpEndpoint {
            ev_open: ev("Open")?,
            ev_send: ev("SendMsg")?,
            globals: Globals {
                sent: gl("sent_count")?,
                acked: gl("acked_count")?,
                retrans: gl("retrans_count")?,
                resizes: gl("resize_count")?,
                frag_size: gl("frag_size")?,
                quality: gl("quality")?,
            },
            rt,
            state,
        })
    }

    /// Opens the session: runs setup handlers and starts the controller
    /// clock.
    ///
    /// # Errors
    ///
    /// Propagates handler faults.
    pub fn open(&mut self) -> Result<(), CtpError> {
        self.rt.raise(self.ev_open, RaiseMode::Sync, &[])?;
        self.link_check()
    }

    /// Sends one application message through the sender chain.
    ///
    /// # Errors
    ///
    /// Propagates handler faults.
    pub fn send(&mut self, payload: &[u8]) -> Result<(), CtpError> {
        self.rt.raise(
            self.ev_send,
            RaiseMode::Sync,
            &[Value::bytes(payload.to_vec())],
        )?;
        self.link_check()
    }

    /// Advances virtual time to `deadline_ns`, firing due timers (acks,
    /// timeouts, the controller clock).
    ///
    /// # Errors
    ///
    /// Propagates handler faults.
    pub fn run_until(&mut self, deadline_ns: u64) -> Result<(), CtpError> {
        self.rt.run_until(deadline_ns)?;
        let now = self.rt.clock_ns();
        if deadline_ns > now {
            self.rt.advance_clock(deadline_ns - now);
        }
        // A transmission parked by the reordering stage with nothing left
        // to overtake it finally arrives.
        self.state.borrow_mut().flush_held();
        self.link_check()
    }

    /// Fails fast once the retry budget of any segment is exhausted.
    fn link_check(&self) -> Result<(), CtpError> {
        if self.state.borrow().unreachable {
            Err(CtpError::PeerUnreachable)
        } else {
            Ok(())
        }
    }

    /// Drains all remaining queued/timed work (ends the session; the
    /// controller clock re-arms itself, so this caps at `slack_ns` past the
    /// current time).
    ///
    /// # Errors
    ///
    /// Propagates handler faults.
    pub fn drain(&mut self, slack_ns: u64) -> Result<(), CtpError> {
        let deadline = self.rt.clock_ns().saturating_add(slack_ns);
        self.run_until(deadline)
    }

    /// A statistics snapshot combining IR globals and native state.
    pub fn stats(&self) -> CtpStats {
        let int = |g: GlobalId| self.rt.global(g).as_int().unwrap_or(0);
        let st = self.state.borrow();
        let wire = st.link.stats();
        CtpStats {
            segments_sent: int(self.globals.sent),
            segments_acked: int(self.globals.acked),
            retransmissions: int(self.globals.retrans),
            resizes: int(self.globals.resizes),
            frag_size: int(self.globals.frag_size),
            quality: int(self.globals.quality),
            in_flight_native: st.unacked.len(),
            link_dropped: wire.dropped,
            link_duplicated: wire.duplicated,
            link_reordered: wire.reordered,
            link_corrupted: wire.corrupted,
            rx_delivered: st.rx.delivered().len(),
            rx_duplicates: st.rx.duplicates(),
            rx_corrupt_dropped: st.rx_corrupt_dropped,
            backoff_level: st.retries.values().copied().max().unwrap_or(0),
            peer_unreachable: st.unreachable,
        }
    }

    /// The payload bytes the **receiver** accepted, deduplicated and in
    /// sequence order, parity bytes stripped — under any fault plan this
    /// reassembles to a prefix of the concatenation of sent messages, and
    /// to the whole of it once every segment is delivered.
    pub fn received_payload(&self) -> Vec<u8> {
        let st = self.state.borrow();
        let mut out = Vec::new();
        for (_, seg) in st.rx.delivered() {
            if !seg.is_empty() {
                out.extend_from_slice(&seg[..seg.len() - 1]);
            }
        }
        out
    }

    /// The payload bytes observed on the wire (parity bytes stripped), in
    /// first-transmission order — reassembles to the concatenation of sent
    /// messages when nothing needed retransmission.
    pub fn wire_payload(&self) -> Vec<u8> {
        let st = self.state.borrow();
        let mut out = Vec::new();
        for (_, seg) in &st.wire {
            if !seg.is_empty() {
                out.extend_from_slice(&seg[..seg.len() - 1]);
            }
        }
        out
    }

    /// Number of wire transmissions (including retransmissions).
    pub fn wire_count(&self) -> usize {
        self.state.borrow().wire.len()
    }

    /// Current virtual time of the session clock.
    pub fn clock_ns(&self) -> u64 {
        self.rt.clock_ns()
    }

    /// Queued async/timed work not yet dispatched.
    pub fn pending(&self) -> usize {
        self.rt.pending()
    }

    /// The underlying runtime (tracing, cost counters, chains).
    pub fn runtime_mut(&mut self) -> &mut Runtime {
        &mut self.rt
    }

    /// Read-only runtime access.
    pub fn runtime(&self) -> &Runtime {
        &self.rt
    }

    /// Exports the native-side protocol state (retransmit queues, retry
    /// counters, faulty-link layer, receiver buffers) for snapshotting.
    /// The runtime's state is exported separately by the caller.
    pub fn export_link(&self) -> CtpLinkState {
        let st = self.state.borrow();
        let sorted = |m: &HashMap<i64, Vec<u8>>| {
            let mut v: Vec<(i64, Vec<u8>)> = m.iter().map(|(&k, d)| (k, d.clone())).collect();
            v.sort_by_key(|&(k, _)| k);
            v
        };
        let mut outcome: Vec<(i64, bool)> = st.outcome.iter().map(|(&k, &v)| (k, v)).collect();
        outcome.sort_by_key(|&(k, _)| k);
        let mut retries: Vec<(i64, u32)> = st.retries.iter().map(|(&k, &v)| (k, v)).collect();
        retries.sort_by_key(|&(k, _)| k);
        CtpLinkState {
            unacked: sorted(&st.unacked),
            wire: st.wire.clone(),
            retransmissions: st.retransmissions,
            sends_since_sample: st.sends_since_sample,
            ack_drop_every: st.ack_drop_every,
            link: st.link.export_state(),
            outcome,
            max_retries: st.max_retries,
            retries,
            timeout_base_ns: st.timeout_base_ns,
            unreachable: st.unreachable,
            rx: st.rx.export_state(),
            rx_corrupt_dropped: st.rx_corrupt_dropped,
        }
    }

    /// Reinstates native-side protocol state exported by
    /// [`CtpEndpoint::export_link`]. Call on a freshly built endpoint
    /// (before [`CtpEndpoint::open`] — a restored session resumes, it does
    /// not re-run setup).
    pub fn restore_link(&mut self, link: CtpLinkState) {
        let mut st = self.state.borrow_mut();
        st.unacked = link.unacked.into_iter().collect();
        st.wire = link.wire;
        st.retransmissions = link.retransmissions;
        st.sends_since_sample = link.sends_since_sample;
        st.ack_drop_every = link.ack_drop_every;
        st.link = FaultyWire::from_state(link.link);
        st.outcome = link.outcome.into_iter().collect();
        st.max_retries = link.max_retries;
        st.retries = link.retries.into_iter().collect();
        st.timeout_base_ns = link.timeout_base_ns;
        st.unreachable = link.unreachable;
        st.rx = SequencedReceiver::from_state(link.rx);
        st.rx_corrupt_dropped = link.rx_corrupt_dropped;
    }
}

fn install_natives(rt: &mut Runtime, state: &Rc<RefCell<LinkState>>) -> Result<(), CtpError> {
    let int_arg = |args: &[Value], i: usize| -> Result<i64, String> {
        args.get(i)
            .and_then(Value::as_int)
            .ok_or_else(|| format!("expected int argument {i}"))
    };

    let s = Rc::clone(state);
    rt.bind_native_by_name("net_send", move |args| {
        let seq = int_arg(args, 0)?;
        let data = args
            .get(1)
            .and_then(Value::as_bytes)
            .ok_or("expected bytes")?;
        let mut st = s.borrow_mut();
        st.transmit(seq, data.to_vec());
        st.sends_since_sample += 1;
        Ok(Value::Unit)
    })
    .map_err(CtpError::Runtime)?;

    let s = Rc::clone(state);
    rt.bind_native_by_name("pau_register", move |args| {
        let seq = int_arg(args, 0)?;
        let data = args
            .get(1)
            .and_then(Value::as_bytes)
            .ok_or("expected bytes")?;
        s.borrow_mut().unacked.insert(seq, data.to_vec());
        Ok(Value::Unit)
    })
    .map_err(CtpError::Runtime)?;

    let s = Rc::clone(state);
    rt.bind_native_by_name("pau_ack", move |args| {
        let seq = int_arg(args, 0)?;
        let mut st = s.borrow_mut();
        st.retries.remove(&seq);
        Ok(Value::Bool(st.unacked.remove(&seq).is_some()))
    })
    .map_err(CtpError::Runtime)?;

    let s = Rc::clone(state);
    rt.bind_native_by_name("pau_is_unacked", move |args| {
        let seq = int_arg(args, 0)?;
        Ok(Value::Bool(s.borrow().unacked.contains_key(&seq)))
    })
    .map_err(CtpError::Runtime)?;

    // Returns whether the retransmitted copy reached the receiver (i.e.
    // whether its ack will come back). The PAU registered the raw fragment
    // (it runs before the FEC handler), so the wire parity byte is
    // re-appended here.
    let s = Rc::clone(state);
    rt.bind_native_by_name("retransmit", move |args| {
        let seq = int_arg(args, 0)?;
        let mut st = s.borrow_mut();
        if let Some(mut data) = st.unacked.get(&seq).cloned() {
            let parity = data.iter().fold(0u8, |a, b| a ^ b);
            data.push(parity);
            st.retransmissions += 1;
            let ok = st.transmit(seq, data);
            Ok(Value::Bool(ok))
        } else {
            Ok(Value::Bool(false))
        }
    })
    .map_err(CtpError::Runtime)?;

    // Doubles the retransmission timeout per retry; returns 0 once the
    // budget is exhausted, marking the peer unreachable.
    let s = Rc::clone(state);
    rt.bind_native_by_name("retry_backoff", move |args| {
        let seq = int_arg(args, 0)?;
        let mut st = s.borrow_mut();
        let count = {
            let r = st.retries.entry(seq).or_insert(0);
            *r += 1;
            *r
        };
        if count > st.max_retries {
            st.retries.remove(&seq);
            if st.unacked.remove(&seq).is_some() {
                st.unreachable = true;
            }
            Ok(Value::Int(0))
        } else {
            let shift = count.min(20);
            Ok(Value::Int(st.timeout_base_ns.saturating_mul(1 << shift)))
        }
    })
    .map_err(CtpError::Runtime)?;

    rt.bind_native_by_name("fec_parity", move |args| {
        let data = args
            .first()
            .and_then(Value::as_bytes)
            .ok_or("expected bytes")?;
        let parity = data.iter().fold(0u8, |a, b| a ^ b);
        Ok(Value::Int(i64::from(parity)))
    })
    .map_err(CtpError::Runtime)?;

    // "Will no ack arrive for this first transmission?" — true when the
    // legacy deterministic pattern drops the ack or when the link fault
    // model lost/corrupted the segment itself.
    let s = Rc::clone(state);
    rt.bind_native_by_name("ack_drop", move |args| {
        let seq = int_arg(args, 0)?;
        let st = s.borrow();
        let every = st.ack_drop_every;
        let legacy = every != 0 && seq as u64 % every == every - 1;
        let delivered = st.outcome.get(&seq).copied().unwrap_or(true);
        Ok(Value::Bool(legacy || !delivered))
    })
    .map_err(CtpError::Runtime)?;

    let s = Rc::clone(state);
    rt.bind_native_by_name("controller_sample", move |_args| {
        let mut st = s.borrow_mut();
        let v = st.sends_since_sample;
        st.sends_since_sample = 0;
        Ok(Value::Int(v))
    })
    .map_err(CtpError::Runtime)?;

    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::ctp_program;

    fn endpoint() -> CtpEndpoint {
        let mut e = CtpEndpoint::new(&ctp_program(), CtpParams::default()).unwrap();
        e.open().unwrap();
        e
    }

    #[test]
    fn single_small_message_one_segment() {
        let mut e = endpoint();
        e.send(&[7u8; 100]).unwrap();
        let stats = e.stats();
        assert_eq!(stats.segments_sent, 1);
        assert_eq!(e.wire_count(), 1);
        assert_eq!(e.wire_payload(), vec![7u8; 100]);
    }

    #[test]
    fn large_message_fragments() {
        let mut e = endpoint();
        e.send(&vec![1u8; 1200]).unwrap(); // frag 512 -> 3 segments
        assert_eq!(e.stats().segments_sent, 3);
        assert_eq!(e.wire_payload().len(), 1200);
    }

    #[test]
    fn acks_arrive_after_delay() {
        let mut e = endpoint();
        e.send(&[1u8; 10]).unwrap();
        assert_eq!(e.stats().segments_acked, 0);
        assert_eq!(e.stats().in_flight_native, 1);
        e.run_until(40_000_000).unwrap(); // > 30ms ack delay
        assert_eq!(e.stats().segments_acked, 1);
        assert_eq!(e.stats().in_flight_native, 0);
    }

    #[test]
    fn dropped_ack_triggers_retransmission() {
        let program = ctp_program();
        let mut e = CtpEndpoint::new(
            &program,
            CtpParams {
                ack_drop_every: 1,
                ..Default::default()
            },
        )
        .unwrap();
        e.open().unwrap();
        e.send(&[1u8; 10]).unwrap();
        // Every ack dropped: the 100ms timeout fires and retransmits, and
        // the retransmission's ack always arrives.
        e.run_until(200_000_000).unwrap();
        let stats = e.stats();
        assert_eq!(stats.retransmissions, 1);
        assert_eq!(stats.segments_acked, 1);
        assert_eq!(e.wire_count(), 2);
    }

    #[test]
    fn controller_fires_periodically() {
        let mut e = endpoint();
        // 1 second at a 200ms period: ~5 firings.
        e.run_until(1_000_000_000).unwrap();
        let quality = e.stats().quality;
        assert_eq!(quality, 100); // nothing in flight
        let sample_sum = e.runtime().module().global_by_name("sample_sum").unwrap();
        // Samples observed (0 sends, but the Sample event fired).
        assert!(e.runtime().global(sample_sum).as_int().is_some());
        let last = e.runtime().module().global_by_name("last_sample").unwrap();
        assert_eq!(e.runtime().global(last).as_int(), Some(0));
    }

    #[test]
    fn heavy_loss_shrinks_fragment_size() {
        let program = ctp_program();
        let mut e = CtpEndpoint::new(
            &program,
            CtpParams {
                ack_drop_every: 1,
                ..Default::default()
            },
        )
        .unwrap();
        e.open().unwrap();
        for i in 0..40 {
            e.send(&vec![i as u8; 700]).unwrap(); // 2 segments each
            e.run_until((i + 1) * 50_000_000).unwrap();
        }
        e.drain(2_000_000_000).unwrap();
        let stats = e.stats();
        assert!(stats.retransmissions > 10);
        assert!(
            stats.resizes >= 1,
            "rate adaptation should have shrunk: {stats:?}"
        );
        assert!(stats.frag_size < 512);
    }

    #[test]
    fn no_loss_grows_fragment_size_back() {
        let mut e = endpoint();
        for i in 0..20 {
            e.send(&[0u8; 64]).unwrap();
            e.run_until((i + 1) * 250_000_000).unwrap();
        }
        // Clock ticked ~20 times with no retransmissions: growth to cap.
        assert!(e.stats().frag_size > 512);
    }

    #[test]
    fn stats_balance_after_drain() {
        let mut e = endpoint();
        for i in 0..30 {
            e.send(&vec![1u8; 300]).unwrap();
            e.run_until((i + 1) * 40_000_000).unwrap();
        }
        e.drain(2_000_000_000).unwrap();
        let stats = e.stats();
        assert_eq!(stats.segments_acked, stats.segments_sent);
        assert_eq!(stats.in_flight_native, 0);
    }

    fn faulty_endpoint(faults: LinkFaults, max_retries: u32) -> CtpEndpoint {
        let mut e = CtpEndpoint::new(
            &ctp_program(),
            CtpParams {
                ack_drop_every: 0, // isolate the link fault model
                link_faults: faults,
                max_retries,
                ..Default::default()
            },
        )
        .unwrap();
        e.open().unwrap();
        e
    }

    fn send_sequence(e: &mut CtpEndpoint, msgs: u8, size: usize) -> Vec<u8> {
        let mut expected = Vec::new();
        for i in 0..msgs {
            let msg = vec![i; size];
            expected.extend_from_slice(&msg);
            e.send(&msg).unwrap();
            e.run_until((u64::from(i) + 1) * 50_000_000).unwrap();
        }
        expected
    }

    #[test]
    fn lossy_link_delivers_everything_in_order() {
        let faults = LinkFaults {
            drop_per_mille: 200,
            seed: 7,
            ..Default::default()
        };
        let mut e = faulty_endpoint(faults, 8);
        let expected = send_sequence(&mut e, 30, 300);
        e.drain(60_000_000_000).unwrap();
        let stats = e.stats();
        assert!(stats.link_dropped > 0, "{stats:?}");
        assert!(stats.retransmissions > 0);
        assert_eq!(stats.segments_acked, stats.segments_sent);
        assert_eq!(stats.in_flight_native, 0);
        assert!(!stats.peer_unreachable);
        assert_eq!(e.received_payload(), expected);
    }

    #[test]
    fn dead_link_reports_peer_unreachable() {
        let faults = LinkFaults {
            drop_per_mille: 1000,
            seed: 1,
            ..Default::default()
        };
        let mut e = faulty_endpoint(faults, 3);
        e.send(&[9u8; 40]).unwrap();
        let err = e.drain(60_000_000_000).unwrap_err();
        assert!(matches!(err, CtpError::PeerUnreachable), "{err}");
        let stats = e.stats();
        assert!(stats.peer_unreachable);
        assert_eq!(stats.segments_acked, 0);
        // 1 initial timeout retransmission + max_retries backed-off ones.
        assert_eq!(stats.retransmissions, 4);
        assert_eq!(stats.in_flight_native, 0, "gave up, not leaked");
        assert!(e.received_payload().is_empty());
    }

    #[test]
    fn duplicating_link_is_deduplicated_by_the_receiver() {
        let faults = LinkFaults {
            dup_per_mille: 1000,
            seed: 3,
            ..Default::default()
        };
        let mut e = faulty_endpoint(faults, 8);
        let expected = send_sequence(&mut e, 6, 700); // 2 segments each
        e.drain(5_000_000_000).unwrap();
        let stats = e.stats();
        assert_eq!(stats.link_duplicated, stats.segments_sent as u64);
        assert!(stats.rx_duplicates >= stats.segments_sent as u64);
        assert_eq!(stats.rx_delivered, stats.segments_sent as usize);
        assert_eq!(e.received_payload(), expected);
    }

    #[test]
    fn corrupting_link_retries_until_clean() {
        let faults = LinkFaults {
            corrupt_per_mille: 400,
            seed: 11,
            ..Default::default()
        };
        let mut e = faulty_endpoint(faults, 8);
        let expected = send_sequence(&mut e, 20, 300);
        e.drain(60_000_000_000).unwrap();
        let stats = e.stats();
        assert!(stats.link_corrupted > 0, "{stats:?}");
        assert_eq!(stats.rx_corrupt_dropped, stats.link_corrupted);
        assert_eq!(stats.segments_acked, stats.segments_sent);
        assert_eq!(e.received_payload(), expected);
    }

    #[test]
    fn reordering_link_is_released_in_order() {
        let faults = LinkFaults {
            reorder_per_mille: 500,
            seed: 5,
            ..Default::default()
        };
        let mut e = faulty_endpoint(faults, 8);
        let expected = send_sequence(&mut e, 10, 700);
        e.drain(5_000_000_000).unwrap();
        let stats = e.stats();
        assert!(stats.link_reordered > 0, "{stats:?}");
        assert_eq!(stats.rx_delivered, stats.segments_sent as usize);
        assert_eq!(e.received_payload(), expected);
    }

    #[test]
    fn perfect_link_receiver_matches_wire() {
        let mut e = endpoint();
        let expected = send_sequence(&mut e, 10, 300);
        e.drain(2_000_000_000).unwrap();
        assert_eq!(e.received_payload(), expected);
        assert_eq!(e.stats().rx_corrupt_dropped, 0);
    }

    // --- Receiver-model edge cases -------------------------------------
    //
    // Deterministic corner scenarios for the dedup / in-order-release /
    // retry machinery: a duplicate of the *final* segment arriving after
    // the session is otherwise fully acked, reordering straddling the
    // retry-cap boundary, corruption forcing a retransmission, and
    // corruption alone exhausting the retry budget.

    #[test]
    fn duplicated_final_segment_after_ack_is_discarded() {
        // Legacy ack-drop pattern: with `every = 4`, only seq 3 matches
        // `seq % every == every - 1`, so exactly the final segment's ack is
        // dropped. The segment itself was delivered; the timeout
        // retransmits it after the first two segments are already acked,
        // and the receiver must discard the late duplicate.
        let mut e = CtpEndpoint::new(
            &ctp_program(),
            CtpParams {
                ack_drop_every: 4,
                ..Default::default()
            },
        )
        .unwrap();
        e.open().unwrap();
        let expected = send_sequence(&mut e, 3, 100); // seqs 1, 2, 3
        e.drain(2_000_000_000).unwrap();
        let stats = e.stats();
        assert_eq!(stats.segments_sent, 3);
        assert_eq!(stats.retransmissions, 1, "only the final segment retried");
        assert_eq!(stats.rx_duplicates, 1, "the late copy was discarded");
        assert_eq!(stats.rx_delivered, 3, "each segment released once");
        assert_eq!(stats.segments_acked, stats.segments_sent);
        assert_eq!(stats.in_flight_native, 0);
        assert!(!stats.peer_unreachable);
        assert_eq!(e.received_payload(), expected);
    }

    #[test]
    fn reorder_across_the_retry_cap_boundary_still_delivers_in_order() {
        // Seed 18 at these rates makes the worst segment need exactly
        // max_retries = 3 attempts while other segments are held back by
        // the reordering stage, so in-order release happens right at the
        // retry-cap boundary.
        let faults = LinkFaults {
            drop_per_mille: 450,
            reorder_per_mille: 450,
            seed: 18,
            ..Default::default()
        };
        let mut e = faulty_endpoint(faults, 3);
        let mut expected = Vec::new();
        for i in 0..4u8 {
            let msg = vec![i; 700]; // 2 segments each
            expected.extend_from_slice(&msg);
            e.send(&msg).unwrap();
            e.run_until((u64::from(i) + 1) * 50_000_000).unwrap();
        }
        e.drain(120_000_000_000).unwrap();
        let stats = e.stats();
        assert!(stats.link_reordered > 0, "{stats:?}");
        assert!(stats.retransmissions > 0, "{stats:?}");
        assert_eq!(stats.segments_acked, stats.segments_sent);
        assert_eq!(stats.rx_delivered, stats.segments_sent as usize);
        assert!(!stats.peer_unreachable);
        assert_eq!(e.received_payload(), expected, "released strictly in order");
    }

    #[test]
    fn one_fewer_retry_across_the_same_boundary_surfaces_peer_unreachable() {
        // The identical fault pattern as above with the budget one below
        // the boundary: the worst segment gives up and the session error
        // surfaces as PeerUnreachable instead of hanging.
        let faults = LinkFaults {
            drop_per_mille: 450,
            reorder_per_mille: 450,
            seed: 18,
            ..Default::default()
        };
        let mut e = faulty_endpoint(faults, 2);
        let err = (|| -> Result<(), CtpError> {
            for i in 0..4u8 {
                e.send(&vec![i; 700])?;
                e.run_until((u64::from(i) + 1) * 50_000_000)?;
            }
            e.drain(120_000_000_000)?;
            Ok(())
        })()
        .unwrap_err();
        assert!(matches!(err, CtpError::PeerUnreachable), "{err}");
        assert!(e.stats().peer_unreachable);
        assert_eq!(e.stats().in_flight_native, 0, "gave up, not leaked");
    }

    #[test]
    fn corrupt_then_retransmit_delivers_on_the_clean_copy() {
        // Seed 6 at 600 permille corrupts exactly the first transmission
        // and leaves the retransmission clean: the receiver's parity check
        // rejects the first copy, no ack comes back, the timeout fires,
        // and the clean retransmission delivers and is acked.
        let faults = LinkFaults {
            corrupt_per_mille: 600,
            seed: 6,
            ..Default::default()
        };
        let mut e = faulty_endpoint(faults, 8);
        e.send(&[42u8; 100]).unwrap();
        e.drain(2_000_000_000).unwrap();
        let stats = e.stats();
        assert_eq!(stats.link_corrupted, 1);
        assert_eq!(stats.rx_corrupt_dropped, 1, "parity rejected the garbage");
        assert_eq!(stats.retransmissions, 1);
        assert_eq!(stats.rx_delivered, 1);
        assert_eq!(stats.rx_duplicates, 0);
        assert_eq!(stats.segments_acked, stats.segments_sent);
        assert!(!stats.peer_unreachable);
        assert_eq!(e.received_payload(), vec![42u8; 100]);
    }

    #[test]
    fn kill_restore_mid_session_continues_identically() {
        // Reference run: lossy link, messages interleaved with timer work.
        let faults = LinkFaults {
            drop_per_mille: 250,
            dup_per_mille: 150,
            reorder_per_mille: 200,
            corrupt_per_mille: 150,
            seed: 31,
        };
        let params = CtpParams {
            ack_drop_every: 0,
            link_faults: faults,
            max_retries: 8,
            ..Default::default()
        };
        let program = ctp_program();
        let run_segment = |e: &mut CtpEndpoint, i: u64| {
            e.send(&vec![i as u8; 300]).unwrap();
            e.run_until((i + 1) * 50_000_000).unwrap();
        };

        let mut reference = CtpEndpoint::new(&program, params).unwrap();
        reference.open().unwrap();
        let mut victim = CtpEndpoint::new(&program, params).unwrap();
        victim.open().unwrap();
        for i in 0..10 {
            run_segment(&mut reference, i);
            run_segment(&mut victim, i);
            // Kill the victim endpoint and rebuild it from exported state:
            // runtime globals + scheduler + clock, then the link state.
            let module = victim.runtime().module().clone();
            let globals: Vec<Value> = (0..module.globals.len())
                .map(|g| victim.runtime().global(GlobalId::from_index(g)).clone())
                .collect();
            let sched = victim.runtime().export_sched();
            let clock = victim.runtime().clock_ns();
            let link = victim.export_link();
            drop(victim);

            victim = CtpEndpoint::new(&program, params).unwrap();
            for (g, v) in globals.into_iter().enumerate() {
                victim.runtime_mut().set_global(GlobalId::from_index(g), v);
            }
            victim.runtime_mut().restore_sched(sched);
            victim.runtime_mut().advance_clock(clock);
            victim.restore_link(link);
        }
        reference.drain(10_000_000_000).unwrap();
        victim.drain(10_000_000_000).unwrap();
        assert_eq!(victim.stats(), reference.stats());
        assert_eq!(victim.received_payload(), reference.received_payload());
        assert_eq!(victim.export_link(), reference.export_link());
    }

    #[test]
    fn corruption_alone_exhausts_the_retry_budget() {
        // A link that corrupts every copy never gets a parity-clean
        // segment through: the receiver rejects each arrival, no ack ever
        // comes back, and the retry budget surfaces PeerUnreachable even
        // though nothing was technically dropped.
        let faults = LinkFaults {
            corrupt_per_mille: 1000,
            seed: 1,
            ..Default::default()
        };
        let mut e = faulty_endpoint(faults, 2);
        e.send(&[9u8; 40]).unwrap();
        let err = e.drain(60_000_000_000).unwrap_err();
        assert!(matches!(err, CtpError::PeerUnreachable), "{err}");
        let stats = e.stats();
        assert!(stats.peer_unreachable);
        assert_eq!(stats.link_dropped, 0);
        assert_eq!(
            stats.rx_corrupt_dropped,
            e.wire_count() as u64,
            "every copy was rejected by the parity check"
        );
        assert_eq!(stats.rx_delivered, 0);
        assert_eq!(stats.segments_acked, 0);
        assert!(e.received_payload().is_empty());
    }
}
