//! Property tests for the CTP transport substrate: fragmentation and
//! reliable delivery invariants over random message mixes.

use pdo_ctp::{ctp_program, CtpEndpoint, CtpParams};
use proptest::prelude::*;

fn endpoint(drop_every: u64) -> CtpEndpoint {
    let mut e = CtpEndpoint::new(
        &ctp_program(),
        CtpParams {
            ack_drop_every: drop_every,
            clk_period_ns: 200_000_000,
            ..Default::default()
        },
    )
    .expect("endpoint");
    e.open().expect("open");
    e
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Fragmentation is lossless and order-preserving: the wire payload
    /// (parity stripped) is exactly the concatenation of the messages.
    #[test]
    fn fragmentation_reassembles_exactly(
        msgs in prop::collection::vec(prop::collection::vec(any::<u8>(), 1..1500), 1..8),
    ) {
        let mut e = endpoint(0); // no ack loss: no retransmissions
        let mut expected = Vec::new();
        for m in &msgs {
            e.send(m).expect("send");
            expected.extend_from_slice(m);
        }
        prop_assert_eq!(e.wire_payload(), expected);
    }

    /// Segment accounting: ceil(len / frag_size) segments per message.
    #[test]
    fn segment_counts_match_fragmentation(
        lens in prop::collection::vec(1usize..2000, 1..6),
    ) {
        let mut e = endpoint(0);
        let mut expected = 0i64;
        for &len in &lens {
            e.send(&vec![7u8; len]).expect("send");
            expected += len.div_ceil(512) as i64;
        }
        prop_assert_eq!(e.stats().segments_sent, expected);
    }

    /// Reliability: whatever the (deterministic) ack-loss pattern, after
    /// draining every segment is acknowledged and nothing stays in flight.
    #[test]
    fn reliability_converges_under_loss(
        lens in prop::collection::vec(1usize..900, 1..6),
        drop_every in 1u64..6,
    ) {
        let mut e = endpoint(drop_every);
        for (i, &len) in lens.iter().enumerate() {
            e.send(&vec![i as u8; len]).expect("send");
            e.run_until((i as u64 + 1) * 50_000_000).expect("run");
        }
        e.drain(5_000_000_000).expect("drain");
        let stats = e.stats();
        prop_assert_eq!(stats.segments_acked, stats.segments_sent);
        prop_assert_eq!(stats.in_flight_native, 0);
        // Loss at 1-in-N segments must have produced retransmissions when
        // enough segments flowed.
        if stats.segments_sent >= drop_every as i64 {
            prop_assert!(stats.retransmissions > 0);
        }
    }

    /// The wire parity byte always checks out: each transmitted segment's
    /// trailing byte equals the XOR of its payload bytes.
    #[test]
    fn wire_parity_is_consistent(
        msg in prop::collection::vec(any::<u8>(), 1..1200),
    ) {
        let mut e = endpoint(0);
        e.send(&msg).expect("send");
        // Recompute from the raw wire log via the public payload view:
        // wire_payload strips the parity; rebuild segments from frag_size.
        let payload = e.wire_payload();
        prop_assert_eq!(&payload, &msg);
        // The total wire length is payload + one parity byte per segment.
        let segs = msg.len().div_ceil(512);
        let wire_len: usize = payload.len() + segs;
        let _ = wire_len; // structural identity asserted via stats below
        prop_assert_eq!(e.stats().segments_sent as usize, segs);
    }
}
