//! Targeted optimizer tests: deep chains, conditional raises under
//! speculation, and fallback after re-optimization.

use pdo::{optimize, OptimizeOptions};
use pdo_events::{Runtime, TraceConfig};
use pdo_ir::{BinOp, EventId, FuncId, FunctionBuilder, GlobalId, Module, RaiseMode, Value};
use pdo_profile::Profile;

/// Builds a linear chain `E0 → E1 → … → E{n-1}`: each event has a single
/// handler appending its digit (base 10) and synchronously raising the next.
fn chain_module(n: usize) -> (Module, Vec<EventId>, GlobalId, Vec<FuncId>) {
    let mut m = Module::new();
    let events: Vec<EventId> = (0..n).map(|i| m.add_event(format!("E{i}"))).collect();
    let g = m.add_global("log", Value::Int(0));
    let mut funcs = Vec::new();
    for i in 0..n {
        let mut b = FunctionBuilder::new(format!("h{i}"), 0);
        let v = b.load_global(g);
        let ten = b.const_int(10);
        let s = b.bin(BinOp::Mul, v, ten);
        let d = b.const_int(i as i64 + 1);
        let o = b.bin(BinOp::Add, s, d);
        b.store_global(g, o);
        if i + 1 < n {
            b.raise(events[i + 1], RaiseMode::Sync, &[]);
        }
        b.ret(None);
        funcs.push(m.add_function(b.finish()));
    }
    (m, events, g, funcs)
}

fn bound_runtime(m: &Module, events: &[EventId], funcs: &[FuncId]) -> Runtime {
    let mut rt = Runtime::new(m.clone());
    for (e, f) in events.iter().zip(funcs) {
        rt.bind(*e, *f, 0).unwrap();
    }
    rt
}

#[test]
fn five_deep_chain_collapses_to_one_dispatch() {
    let (m, events, g, funcs) = chain_module(5);
    let mut rt = bound_runtime(&m, &events, &funcs);
    rt.set_trace_config(TraceConfig::full());
    for _ in 0..50 {
        rt.raise(events[0], RaiseMode::Sync, &[]).unwrap();
    }
    let profile = Profile::from_trace(&rt.take_trace(), 25);
    let opt = optimize(&m, rt.registry(), &profile, &OptimizeOptions::new(25));
    // Head super-handler subsumed the entire chain.
    let head = opt
        .report
        .events
        .iter()
        .find(|e| e.event == events[0])
        .expect("head optimized");
    assert_eq!(head.subsumed_raises, 1, "direct child subsumed");
    // Transitively, the chain guard covers all five events.
    let chain = opt.chains.iter().find(|c| c.head == events[0]).unwrap();
    assert_eq!(chain.guards.len(), 5, "guards: {:?}", chain.guards);

    let mut fast = bound_runtime(&opt.module, &events, &funcs);
    opt.install_chains(&mut fast);
    fast.raise(events[0], RaiseMode::Sync, &[]).unwrap();
    assert_eq!(fast.global(g), &Value::Int(12345));
    assert_eq!(fast.cost.fastpath_hits, 1);
    assert_eq!(fast.cost.raises_sync, 0, "no nested raises remain");
    assert_eq!(fast.cost.registry_lookups, 0);
}

#[test]
fn conditional_raise_subsumed_speculatively_keeps_both_branches() {
    // E0's handler raises E1 only for even inputs; speculation specializes
    // the raise site anyway — both branches must behave.
    let mut m = Module::new();
    let e0 = m.add_event("E0");
    let e1 = m.add_event("E1");
    let g = m.add_global("hits", Value::Int(0));

    let mut b = FunctionBuilder::new("h0", 1);
    let fire = b.new_block();
    let skip = b.new_block();
    let two = b.const_int(2);
    let rem = b.bin(BinOp::Rem, b.param(0), two);
    let zero = b.const_int(0);
    let even = b.bin(BinOp::Eq, rem, zero);
    b.branch(even, fire, skip);
    b.switch_to(fire);
    b.raise(e1, RaiseMode::Sync, &[]);
    b.ret(None);
    b.switch_to(skip);
    b.ret(None);
    let h0 = m.add_function(b.finish());

    let mut b = FunctionBuilder::new("h1", 0);
    let v = b.load_global(g);
    let one = b.const_int(1);
    let s = b.bin(BinOp::Add, v, one);
    b.store_global(g, s);
    b.ret(None);
    let h1 = m.add_function(b.finish());

    let mut rt = Runtime::new(m.clone());
    rt.bind(e0, h0, 0).unwrap();
    rt.bind(e1, h1, 0).unwrap();
    rt.set_trace_config(TraceConfig::full());
    // Profile only odd inputs: the nested raise is NEVER observed.
    for i in 0..40 {
        rt.raise(e0, RaiseMode::Sync, &[Value::Int(i * 2 + 1)])
            .unwrap();
    }
    let profile = Profile::from_trace(&rt.take_trace(), 20);

    let mut opts = OptimizeOptions::new(20);
    opts.speculative = true;
    opts.merge_all = true;
    let opt = optimize(&m, rt.registry(), &profile, &opts);

    let mut fast = Runtime::new(opt.module.clone());
    fast.bind(e0, h0, 0).unwrap();
    fast.bind(e1, h1, 0).unwrap();
    opt.install_chains(&mut fast);
    // Both parities behave correctly despite the unobserved branch.
    fast.raise(e0, RaiseMode::Sync, &[Value::Int(3)]).unwrap();
    assert_eq!(fast.global(g), &Value::Int(0));
    fast.raise(e0, RaiseMode::Sync, &[Value::Int(4)]).unwrap();
    assert_eq!(fast.global(g), &Value::Int(1));
}

#[test]
fn reoptimization_after_rebinding_restores_the_fast_path() {
    let (m, events, g, funcs) = chain_module(3);
    let mut rt = bound_runtime(&m, &events, &funcs);
    rt.set_trace_config(TraceConfig::full());
    for _ in 0..30 {
        rt.raise(events[0], RaiseMode::Sync, &[]).unwrap();
    }
    let profile = Profile::from_trace(&rt.take_trace(), 15);
    let opt = optimize(&m, rt.registry(), &profile, &OptimizeOptions::new(15));

    let mut fast = bound_runtime(&opt.module, &events, &funcs);
    opt.install_chains(&mut fast);

    // Invalidate by re-binding the middle event.
    fast.unbind(events[1], funcs[1]);
    fast.bind(events[1], funcs[1], 0).unwrap();
    fast.raise(events[0], RaiseMode::Sync, &[]).unwrap();
    // The head chain misses, and the generic path's nested raise of E1
    // misses E1's own stale chain too.
    assert!(fast.cost.fastpath_misses >= 1);
    assert_eq!(fast.global(g), &Value::Int(123));

    // Recovering the fast path is the paper's offline loop: re-profile a
    // fresh session of the (original) program under the new configuration,
    // re-optimize, and deploy a fresh specialized session. A live runtime's
    // module is immutable, so re-optimization always ships as a new
    // deployment.
    let mut rt2 = bound_runtime(&m, &events, &funcs);
    rt2.set_trace_config(TraceConfig::full());
    for _ in 0..30 {
        rt2.raise(events[0], RaiseMode::Sync, &[]).unwrap();
    }
    let profile2 = Profile::from_trace(&rt2.take_trace(), 15);
    let opt2 = optimize(&m, rt2.registry(), &profile2, &OptimizeOptions::new(15));

    let mut fast2 = bound_runtime(&opt2.module, &events, &funcs);
    opt2.install_chains(&mut fast2);
    fast2.raise(events[0], RaiseMode::Sync, &[]).unwrap();
    assert_eq!(fast2.cost.fastpath_hits, 1, "fast path restored");
    assert_eq!(fast2.global(g), &Value::Int(123));
}
