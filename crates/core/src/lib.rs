//! # pdo — profile-directed optimization of event-based programs
//!
//! This crate is the reproduction of the PLDI 2002 paper's contribution:
//! given a program (a `pdo-ir` module executed by the `pdo-events` runtime)
//! and a [`pdo_profile::Profile`] of its event behaviour, [`optimize`]
//! applies the paper's graph optimizations —
//!
//! * **handler merging** (Fig 7): the stable handler sequence of a hot
//!   event becomes one *super-handler*;
//! * **event chains & subsumption** (Figs 8/9): synchronous raises inside
//!   merged bodies are replaced by direct calls to the child event's
//!   super-handler, collapsing whole chains into one function;
//! * **guarded fast paths** (§3.2.1/§3.3): every specialization carries the
//!   binding versions it assumed; dynamic re-binding makes the dispatch
//!   fall back to generic code;
//! * **partitioned super-handlers** (Fig 14, §5 extension): per-segment
//!   guards compiled into the body, so a re-binding of one chained event
//!   degrades only that segment;
//!
//! — followed by the **compiler optimizations** of §3.2.2 (inlining,
//! constant propagation, CSE, DCE, lock coalescing, redundant-load
//! elimination) from `pdo-passes`, applied only to the new super-handlers.
//!
//! ```
//! use pdo_ir::{Module, FunctionBuilder, BinOp, Value, RaiseMode};
//! use pdo_events::{Runtime, TraceConfig};
//! use pdo_profile::Profile;
//! use pdo::{optimize, OptimizeOptions};
//!
//! // A module with one event and two handlers.
//! let mut m = Module::new();
//! let e = m.add_event("Tick");
//! let g = m.add_global("count", Value::Int(0));
//! let mut mk = |m: &mut Module, name: &str, k: i64| {
//!     let mut b = FunctionBuilder::new(name, 1);
//!     b.lock(g);
//!     let v = b.load_global(g);
//!     let kk = b.const_value(Value::Int(k));
//!     let s = b.bin(BinOp::Add, v, kk);
//!     b.store_global(g, s);
//!     b.unlock(g);
//!     b.ret(None);
//!     m.add_function(b.finish())
//! };
//! let h1 = mk(&mut m, "h1", 1);
//! let h2 = mk(&mut m, "h2", 10);
//!
//! // Profile a run.
//! let mut rt = Runtime::new(m.clone());
//! rt.bind(e, h1, 0)?;
//! rt.bind(e, h2, 1)?;
//! rt.set_trace_config(TraceConfig::full());
//! for _ in 0..100 {
//!     rt.raise(e, RaiseMode::Sync, &[Value::Unit])?;
//! }
//! let profile = Profile::from_trace(&rt.take_trace(), 50);
//!
//! // Optimize and run the specialized program.
//! let opt = optimize(&m, rt.registry(), &profile, &OptimizeOptions::new(50));
//! assert_eq!(opt.report.events.len(), 1);
//! let mut fast = Runtime::new(opt.module.clone());
//! fast.bind(e, h1, 0)?;
//! fast.bind(e, h2, 1)?;
//! opt.install_chains(&mut fast);
//! fast.raise(e, RaiseMode::Sync, &[Value::Unit])?;
//! assert_eq!(fast.global(g), &Value::Int(11));
//! assert_eq!(fast.cost.fastpath_hits, 1);
//! assert_eq!(fast.cost.marshaled_values, 0);
//! # Ok::<(), pdo_events::RuntimeError>(())
//! ```

pub mod adapt;
pub mod heal;
pub mod merge;
pub mod quarantine;
pub mod report;
pub mod subsume;
pub mod workflow;

pub use adapt::{
    AdaptConfig, AdaptStats, AdaptiveEngine, ChainCache, ChainCacheKey, EngineSnapshot,
};
pub use heal::{HealReport, SelfHealer};
pub use merge::{build_super_handler, build_super_handler_metered, MergeSkip};
pub use quarantine::{Quarantine, QuarantineConfig, QuarantineEntry};
pub use report::{EventReport, OptReport};
pub use subsume::{subsume_direct, subsume_partitioned, sync_raise_sites, RaiseSite};
pub use workflow::{profile_and_optimize, Deployed, WorkflowError};

use pdo_events::{CompiledChain, Guard, Registry, Runtime};
use pdo_ir::{EventId, FuncId, Module, NativeId};
use pdo_passes::optimize_single_function;
use pdo_profile::Profile;
use std::collections::{BTreeMap, BTreeSet};

/// Tuning knobs for [`optimize`]. Start from [`OptimizeOptions::new`] and
/// toggle the extension flags for ablations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OptimizeOptions {
    /// Edge-weight threshold for graph reduction (the paper's `T`).
    pub threshold: u64,
    /// Replace synchronous raises inside super-handlers with direct calls
    /// to the child's super-handler (Figs 8/9). Default on.
    pub subsume: bool,
    /// Compile per-segment version guards into the super-handler (Fig 14)
    /// instead of guarding the whole chain. Default off.
    pub partitioned: bool,
    /// Merge *every* event with a stable handler sequence, not only hot
    /// ones (§5 "simple extension"). Default off.
    pub merge_all: bool,
    /// Subsume raises even without nested-raise profile evidence (§5
    /// speculative optimization; always guarded, hence safe). Default off.
    pub speculative: bool,
    /// Inline merged handler bodies into the super-handler. Default on.
    pub inline: bool,
    /// Run the §3.2.2 compiler passes on super-handlers. Default on.
    pub compiler_passes: bool,
    /// Inline size ceiling for handler bodies.
    pub inline_threshold: usize,
    /// Emit a `__pdo_fuel_boundary` marker before each merged handler
    /// segment so [`pdo_events::FaultKind::ExhaustFuel`] trips at the same
    /// pre-merge handler boundaries as generic dispatch. Default off: the
    /// markers are native calls, which act as barriers to the compiler
    /// passes (notably lock coalescing), so they cost real optimization
    /// opportunity and are only worth it when fuel-exhaustion equivalence
    /// matters (chaos testing).
    pub fuel_boundaries: bool,
}

impl OptimizeOptions {
    /// Defaults matching the paper's main configuration at threshold `t`.
    pub fn new(threshold: u64) -> Self {
        OptimizeOptions {
            threshold,
            subsume: true,
            partitioned: false,
            merge_all: false,
            speculative: false,
            inline: true,
            compiler_passes: true,
            inline_threshold: 4096,
            fuel_boundaries: false,
        }
    }
}

/// The result of [`optimize`]: an extended module (original functions plus
/// super-handlers), the guarded chains to install, and a report.
#[derive(Debug, Clone)]
pub struct Optimization {
    /// Original module plus the generated super-handlers. Original function
    /// ids are unchanged, so existing bindings remain valid.
    pub module: Module,
    /// Compiled chains, one per optimized event.
    pub chains: Vec<CompiledChain>,
    /// What happened.
    pub report: OptReport,
}

impl Optimization {
    /// Installs every chain into `runtime`. The runtime must be executing
    /// [`Optimization::module`] and its registry must match the binding
    /// state that was profiled (otherwise the guards simply never pass and
    /// dispatch stays generic — correct, but unoptimized).
    pub fn install_chains(&self, runtime: &mut Runtime) {
        for chain in &self.chains {
            runtime.install_chain(chain.clone());
        }
    }
}

/// Runs the full profile-directed optimization pipeline.
///
/// `registry` is the live binding state of the profiled program — the
/// specializations are valid exactly for that state and guarded against
/// any change from it.
pub fn optimize(
    module: &Module,
    registry: &Registry,
    profile: &Profile,
    opts: &OptimizeOptions,
) -> Optimization {
    let mut builder = Builder {
        out: module.clone(),
        registry,
        profile,
        opts,
        version_native: None,
        fuel_native: None,
        memo: BTreeMap::new(),
        in_progress: BTreeSet::new(),
        report: OptReport {
            module_instrs_before: module.instr_count(),
            ..Default::default()
        },
    };

    if opts.partitioned {
        let id = builder
            .out
            .native_by_name(Runtime::NATIVE_BINDING_VERSION)
            .unwrap_or_else(|| builder.out.add_native(Runtime::NATIVE_BINDING_VERSION));
        builder.version_native = Some(id);
    }
    if opts.fuel_boundaries {
        let id = builder
            .out
            .native_by_name(Runtime::NATIVE_FUEL_BOUNDARY)
            .unwrap_or_else(|| builder.out.add_native(Runtime::NATIVE_FUEL_BOUNDARY));
        builder.fuel_native = Some(id);
    }

    // Candidate events: nodes of the reduced graph, or every profiled event
    // under `merge_all`.
    let reduced = profile.event_graph.reduce(opts.threshold);
    let candidates: BTreeSet<EventId> = if opts.merge_all {
        profile.handler_graph.sequences.keys().copied().collect()
    } else {
        reduced.nodes.keys().copied().collect()
    };

    for &event in &candidates {
        builder.build(event);
    }

    let chains = builder.chains();
    builder.report.module_instrs_after = builder.out.instr_count();
    Optimization {
        module: builder.out,
        chains,
        report: builder.report,
    }
}

/// A built super-handler and what it covers.
#[derive(Debug, Clone)]
struct Built {
    func: FuncId,
    params: u16,
    /// Events whose handlers were folded in (excluding the head).
    subsumed: BTreeSet<EventId>,
}

struct Builder<'a> {
    out: Module,
    registry: &'a Registry,
    profile: &'a Profile,
    opts: &'a OptimizeOptions,
    version_native: Option<NativeId>,
    fuel_native: Option<NativeId>,
    memo: BTreeMap<EventId, Option<Built>>,
    in_progress: BTreeSet<EventId>,
    report: OptReport,
}

impl Builder<'_> {
    /// Builds (or fetches) the super-handler for `event`.
    fn build(&mut self, event: EventId) -> Option<Built> {
        if let Some(b) = self.memo.get(&event) {
            return b.clone();
        }
        if self.in_progress.contains(&event) {
            return None; // event cycle: leave the raise generic
        }

        // The profiled sequence must be stable *and* still current.
        let Some(seq) = self.profile.handler_graph.stable_sequence(event) else {
            if self.profile.handler_graph.sequences.contains_key(&event) {
                self.report.skip(event, MergeSkip::UnstableSequence);
            }
            self.memo.insert(event, None);
            return None;
        };
        let seq: Vec<FuncId> = seq.to_vec();
        let live: Vec<FuncId> = self
            .registry
            .bindings(event)
            .iter()
            .map(|b| b.handler)
            .collect();
        if live != seq {
            self.report.skip(event, MergeSkip::RegistryDrift);
            self.memo.insert(event, None);
            return None;
        }
        if seq.is_empty() {
            self.memo.insert(event, None);
            return None;
        }

        self.in_progress.insert(event);
        let name = format!("__super_{}", self.out.event_name(event));
        let shell = match merge::build_super_handler_metered(
            &mut self.out,
            &name,
            &seq,
            self.fuel_native,
        ) {
            Ok(f) => f,
            Err(reason) => {
                self.report.skip(event, reason);
                self.in_progress.remove(&event);
                self.memo.insert(event, None);
                return None;
            }
        };
        let params = self.out.function(shell).params;
        let instrs_original: usize = seq
            .iter()
            .map(|&h| self.out.function(h).instr_count())
            .sum();

        self.cleanup(shell);

        // Subsumption: fold synchronous child raises into the body. Work in
        // rounds: each round collects the current sites up front and
        // rewrites them in reverse order (so earlier positions stay valid),
        // then inlining may expose new sites from spliced child bodies.
        // Events already given a partitioned guard are excluded in later
        // rounds — their remaining raise is the slow-arm fallback itself.
        let mut subsumed: BTreeSet<EventId> = BTreeSet::new();
        let mut subsume_count = 0usize;
        if self.opts.subsume {
            let mut refused: BTreeSet<EventId> = BTreeSet::new();
            let mut guarded: BTreeSet<EventId> = BTreeSet::new();
            for _round in 0..4 {
                let sites: Vec<RaiseSite> = sync_raise_sites(&self.out.functions[shell.index()])
                    .into_iter()
                    .filter(|s| {
                        !refused.contains(&s.event)
                            && (!self.opts.partitioned || !guarded.contains(&s.event))
                            && self.subsume_evidence(event, s.event)
                    })
                    .collect();
                if sites.is_empty() {
                    break;
                }
                let mut did_any = false;
                for site in sites.into_iter().rev() {
                    let Some(child) = self.build(site.event) else {
                        refused.insert(site.event);
                        continue;
                    };
                    if usize::from(child.params) != site.arity {
                        refused.insert(site.event);
                        continue;
                    }
                    if self.opts.partitioned {
                        let vn = self.version_native.expect("declared above");
                        let expected = self.registry.version(site.event);
                        subsume_partitioned(
                            &mut self.out.functions[shell.index()],
                            site,
                            child.func,
                            vn,
                            expected,
                        );
                        guarded.insert(site.event);
                    } else {
                        subsume_direct(&mut self.out.functions[shell.index()], site, child.func);
                    }
                    subsumed.insert(site.event);
                    subsumed.extend(child.subsumed.iter().copied());
                    subsume_count += 1;
                    did_any = true;
                }
                if !did_any {
                    break;
                }
                self.cleanup(shell);
            }
        }

        self.cleanup(shell);
        self.in_progress.remove(&event);

        let built = Built {
            func: shell,
            params,
            subsumed,
        };
        self.report.events.push(EventReport {
            event,
            func: shell,
            merged_handlers: seq.len(),
            subsumed_raises: subsume_count,
            instrs_original,
            instrs_optimized: self.out.function(shell).instr_count(),
        });
        self.memo.insert(event, Some(built.clone()));
        Some(built)
    }

    /// Does the profile justify folding `child` into `parent`'s body?
    ///
    /// Always-correct guard semantics make the evidence requirement purely
    /// a cost/benefit heuristic: without [`OptimizeOptions::speculative`],
    /// we require an observed nested synchronous raise (Fig 8 pattern).
    fn subsume_evidence(&self, parent: EventId, child: EventId) -> bool {
        if self.opts.speculative {
            return true;
        }
        self.profile
            .handler_graph
            .nested
            .iter()
            .any(|(k, &count)| k.parent_event == parent && k.child_event == child && count > 0)
    }

    /// Applies inlining / compiler passes to one super-handler according to
    /// the options.
    fn cleanup(&mut self, func: FuncId) {
        let inline = self.opts.inline.then_some(self.opts.inline_threshold);
        if self.opts.compiler_passes {
            optimize_single_function(&mut self.out, func, inline);
        } else if let Some(th) = inline {
            pdo_passes::inline::inline_into(&mut self.out, func.index(), th);
        }
    }

    /// Emits the compiled chains for every built event.
    fn chains(&self) -> Vec<CompiledChain> {
        let mut chains = Vec::new();
        for (&event, built) in &self.memo {
            let Some(built) = built else { continue };
            let mut guard_events: Vec<EventId> = vec![event];
            guard_events.extend(built.subsumed.iter().copied());
            chains.push(CompiledChain {
                head: event,
                guards: guard_events
                    .into_iter()
                    .map(|e| Guard {
                        event: e,
                        version: self.registry.version(e),
                    })
                    .collect(),
                func: built.func,
                params: built.params,
                partitioned: self.opts.partitioned,
            });
        }
        chains
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdo_events::{RuntimeError, TraceConfig};
    use pdo_ir::{BinOp, FunctionBuilder, RaiseMode, Value};

    /// Builds the Fig 8/9 shape: SegFromUser has three handlers, the middle
    /// one synchronously raises Seg2Net, which has two handlers. Each
    /// handler appends its digit to a base-100 accumulator so execution
    /// order is observable.
    fn chain_module() -> (Module, EventId, EventId, Vec<FuncId>, Vec<FuncId>) {
        let mut m = Module::new();
        let sfu = m.add_event("SegFromUser");
        let s2n = m.add_event("Seg2Net");
        let g = m.add_global("log", Value::Int(0));

        let digit = |m: &mut Module, name: &str, d: i64, raises: Option<EventId>| {
            let mut b = FunctionBuilder::new(name, 1);
            b.lock(g);
            let v = b.load_global(g);
            let hundred = b.const_int(100);
            let scaled = b.bin(BinOp::Mul, v, hundred);
            let dd = b.const_int(d);
            let s = b.bin(BinOp::Add, scaled, dd);
            b.store_global(g, s);
            b.unlock(g);
            if let Some(ev) = raises {
                b.raise(ev, RaiseMode::Sync, &[b.param(0)]);
            }
            b.ret(None);
            m.add_function(b.finish())
        };

        let h_sfu = vec![
            digit(&mut m, "fec_sfu1", 1, None),
            digit(&mut m, "tdriver_sfu", 2, Some(s2n)),
            digit(&mut m, "fec_sfu2", 3, None),
        ];
        let h_s2n = vec![
            digit(&mut m, "pau_s2n", 7, None),
            digit(&mut m, "td_s2n", 8, None),
        ];
        (m, sfu, s2n, h_sfu, h_s2n)
    }

    fn setup_runtime(
        m: &Module,
        sfu: EventId,
        s2n: EventId,
        h_sfu: &[FuncId],
        h_s2n: &[FuncId],
    ) -> Result<Runtime, RuntimeError> {
        let mut rt = Runtime::new(m.clone());
        for (i, &h) in h_sfu.iter().enumerate() {
            rt.bind(sfu, h, i as i32)?;
        }
        for (i, &h) in h_s2n.iter().enumerate() {
            rt.bind(s2n, h, i as i32)?;
        }
        Ok(rt)
    }

    fn profile_run(rt: &mut Runtime, sfu: EventId, n: usize) -> Profile {
        rt.set_trace_config(TraceConfig::full());
        for _ in 0..n {
            rt.raise(sfu, RaiseMode::Sync, &[Value::Unit]).unwrap();
        }
        Profile::from_trace(&rt.take_trace(), (n / 2) as u64)
    }

    /// Expected accumulator after one SegFromUser dispatch: digits
    /// 1,2,(7,8 from subsumed Seg2Net),3 in base 100.
    fn expected_one_dispatch() -> i64 {
        let mut v = 0i64;
        for d in [1, 2, 7, 8, 3] {
            v = v * 100 + d;
        }
        v
    }

    #[test]
    fn expected_constant_matches() {
        assert_eq!(expected_one_dispatch(), 102_070_803);
    }

    #[test]
    fn optimizes_chain_and_preserves_behavior() {
        let (m, sfu, s2n, h_sfu, h_s2n) = chain_module();
        let g = m.global_by_name("log").unwrap();
        let mut rt = setup_runtime(&m, sfu, s2n, &h_sfu, &h_s2n).unwrap();
        let profile = profile_run(&mut rt, sfu, 100);

        let opt = optimize(&m, rt.registry(), &profile, &OptimizeOptions::new(50));
        assert_eq!(
            opt.report.events.len(),
            2,
            "{}",
            opt.report.render(&opt.module)
        );
        assert_eq!(opt.report.total_subsumed(), 1);

        // Optimized runtime produces identical state with zero marshaling.
        let mut fast = setup_runtime(&opt.module, sfu, s2n, &h_sfu, &h_s2n).unwrap();
        opt.install_chains(&mut fast);
        fast.raise(sfu, RaiseMode::Sync, &[Value::Unit]).unwrap();
        assert_eq!(fast.global(g), &Value::Int(expected_one_dispatch()));
        assert_eq!(fast.cost.fastpath_hits, 1);
        assert_eq!(fast.cost.marshaled_values, 0);
        assert_eq!(fast.cost.indirect_calls, 0);

        // Baseline runtime for comparison.
        let mut slow = setup_runtime(&m, sfu, s2n, &h_sfu, &h_s2n).unwrap();
        slow.raise(sfu, RaiseMode::Sync, &[Value::Unit]).unwrap();
        assert_eq!(slow.global(g), &Value::Int(expected_one_dispatch()));
        assert!(slow.cost.weighted_total() > fast.cost.weighted_total());
    }

    #[test]
    fn lock_coalescing_happens_inside_super_handler() {
        let (m, sfu, s2n, h_sfu, h_s2n) = chain_module();
        let mut rt = setup_runtime(&m, sfu, s2n, &h_sfu, &h_s2n).unwrap();
        let profile = profile_run(&mut rt, sfu, 100);
        let opt = optimize(&m, rt.registry(), &profile, &OptimizeOptions::new(50));

        let mut fast = setup_runtime(&opt.module, sfu, s2n, &h_sfu, &h_s2n).unwrap();
        opt.install_chains(&mut fast);
        fast.raise(sfu, RaiseMode::Sync, &[Value::Unit]).unwrap();
        // 5 handlers × lock+unlock = 10 lock ops generically; the merged
        // body coalesces interior unlock/lock pairs down to one pair.
        assert_eq!(fast.cost.lock_ops, 2);
    }

    #[test]
    fn rebinding_child_falls_back_and_stays_correct() {
        let (m, sfu, s2n, h_sfu, h_s2n) = chain_module();
        let g = m.global_by_name("log").unwrap();
        let mut rt = setup_runtime(&m, sfu, s2n, &h_sfu, &h_s2n).unwrap();
        let profile = profile_run(&mut rt, sfu, 100);
        let opt = optimize(&m, rt.registry(), &profile, &OptimizeOptions::new(50));

        let mut fast = setup_runtime(&opt.module, sfu, s2n, &h_sfu, &h_s2n).unwrap();
        opt.install_chains(&mut fast);
        // Unbind one Seg2Net handler: the whole SegFromUser chain guard
        // fails (monolithic mode).
        fast.unbind(s2n, h_s2n[1]);
        fast.raise(sfu, RaiseMode::Sync, &[Value::Unit]).unwrap();
        let mut v = 0i64;
        for d in [1, 2, 7, 3] {
            v = v * 100 + d;
        }
        assert_eq!(fast.global(g), &Value::Int(v));
        assert!(fast.cost.fastpath_misses >= 1);
        assert_eq!(fast.cost.fastpath_hits, 0);
    }

    #[test]
    fn partitioned_chain_survives_child_rebinding() {
        let (m, sfu, s2n, h_sfu, h_s2n) = chain_module();
        let g = m.global_by_name("log").unwrap();
        let mut rt = setup_runtime(&m, sfu, s2n, &h_sfu, &h_s2n).unwrap();
        let profile = profile_run(&mut rt, sfu, 100);
        let mut opts = OptimizeOptions::new(50);
        opts.partitioned = true;
        let opt = optimize(&m, rt.registry(), &profile, &opts);

        let mut fast = setup_runtime(&opt.module, sfu, s2n, &h_sfu, &h_s2n).unwrap();
        opt.install_chains(&mut fast);
        fast.unbind(s2n, h_s2n[1]);
        fast.raise(sfu, RaiseMode::Sync, &[Value::Unit]).unwrap();
        let mut v = 0i64;
        for d in [1, 2, 7, 3] {
            v = v * 100 + d;
        }
        assert_eq!(fast.global(g), &Value::Int(v));
        // Head guard still holds: the fast path is taken; only the Seg2Net
        // segment fell back (Fig 14).
        assert_eq!(fast.cost.fastpath_hits, 1);
    }

    #[test]
    fn unstable_sequence_skipped() {
        let (m, sfu, s2n, h_sfu, h_s2n) = chain_module();
        let mut rt = setup_runtime(&m, sfu, s2n, &h_sfu, &h_s2n).unwrap();
        rt.set_trace_config(TraceConfig::full());
        for i in 0..100 {
            // Alternate Seg2Net's binding so its sequence is unstable.
            if i == 50 {
                rt.unbind(s2n, h_s2n[1]);
            }
            rt.raise(sfu, RaiseMode::Sync, &[Value::Unit]).unwrap();
        }
        let profile = Profile::from_trace(&rt.take_trace(), 50);
        let opt = optimize(&m, rt.registry(), &profile, &OptimizeOptions::new(50));
        // Seg2Net skipped (unstable); SegFromUser may still merge but not
        // subsume the unstable child.
        assert!(opt
            .report
            .skipped
            .iter()
            .any(|(e, why)| *e == s2n && why.contains("unstable")));
        assert_eq!(opt.report.total_subsumed(), 0);
    }

    #[test]
    fn registry_drift_skipped() {
        let (m, sfu, s2n, h_sfu, h_s2n) = chain_module();
        let mut rt = setup_runtime(&m, sfu, s2n, &h_sfu, &h_s2n).unwrap();
        let profile = profile_run(&mut rt, sfu, 100);
        // Re-bind after profiling.
        rt.unbind(sfu, h_sfu[2]);
        let opt = optimize(&m, rt.registry(), &profile, &OptimizeOptions::new(50));
        assert!(opt
            .report
            .skipped
            .iter()
            .any(|(e, why)| *e == sfu && why.contains("registry")));
    }

    #[test]
    fn code_growth_is_reported() {
        let (m, sfu, s2n, h_sfu, h_s2n) = chain_module();
        let mut rt = setup_runtime(&m, sfu, s2n, &h_sfu, &h_s2n).unwrap();
        let profile = profile_run(&mut rt, sfu, 100);
        let opt = optimize(&m, rt.registry(), &profile, &OptimizeOptions::new(50));
        assert!(opt.report.code_growth_percent() > 0.0);
        assert_eq!(opt.report.module_instrs_before, m.instr_count());
        assert_eq!(opt.report.module_instrs_after, opt.module.instr_count());
    }

    #[test]
    fn merge_all_includes_cold_events() {
        let (m, sfu, s2n, h_sfu, h_s2n) = chain_module();
        let mut rt = setup_runtime(&m, sfu, s2n, &h_sfu, &h_s2n).unwrap();
        // Tiny profile: below any reasonable threshold.
        rt.set_trace_config(TraceConfig::full());
        rt.raise(sfu, RaiseMode::Sync, &[Value::Unit]).unwrap();
        let profile = Profile::from_trace(&rt.take_trace(), 1000);

        let cold = optimize(&m, rt.registry(), &profile, &OptimizeOptions::new(1000));
        assert!(cold.report.events.is_empty());

        let mut opts = OptimizeOptions::new(1000);
        opts.merge_all = true;
        opts.speculative = true;
        let all = optimize(&m, rt.registry(), &profile, &opts);
        assert_eq!(all.report.events.len(), 2);
    }

    #[test]
    fn no_inline_keeps_direct_calls() {
        let (m, sfu, s2n, h_sfu, h_s2n) = chain_module();
        let g = m.global_by_name("log").unwrap();
        let mut rt = setup_runtime(&m, sfu, s2n, &h_sfu, &h_s2n).unwrap();
        let profile = profile_run(&mut rt, sfu, 100);
        let mut opts = OptimizeOptions::new(50);
        opts.inline = false;
        opts.compiler_passes = false;
        let opt = optimize(&m, rt.registry(), &profile, &opts);

        let mut fast = setup_runtime(&opt.module, sfu, s2n, &h_sfu, &h_s2n).unwrap();
        opt.install_chains(&mut fast);
        fast.raise(sfu, RaiseMode::Sync, &[Value::Unit]).unwrap();
        assert_eq!(fast.global(g), &Value::Int(expected_one_dispatch()));
        // Direct calls instead of inlined bodies, but still no marshaling.
        assert!(fast.cost.calls >= 5);
        assert_eq!(fast.cost.marshaled_values, 0);
    }

    #[test]
    fn async_child_raise_never_subsumed() {
        // Like chain_module but the nested raise is asynchronous: it must
        // survive as a raise (timing semantics, §3.2.1).
        let mut m = Module::new();
        let a = m.add_event("A");
        let b_ev = m.add_event("B");
        let g = m.add_global("log", Value::Int(0));
        let mk = |m: &mut Module, name: &str, d: i64, raises: bool| {
            let mut fb = FunctionBuilder::new(name, 0);
            let v = fb.load_global(g);
            let ten = fb.const_int(10);
            let s = fb.bin(BinOp::Mul, v, ten);
            let dd = fb.const_int(d);
            let o = fb.bin(BinOp::Add, s, dd);
            fb.store_global(g, o);
            if raises {
                fb.raise(b_ev, RaiseMode::Async, &[]);
            }
            fb.ret(None);
            m.add_function(fb.finish())
        };
        let ha = mk(&mut m, "ha", 1, true);
        let hb = mk(&mut m, "hb", 2, false);

        let mut rt = Runtime::new(m.clone());
        rt.bind(a, ha, 0).unwrap();
        rt.bind(b_ev, hb, 0).unwrap();
        rt.set_trace_config(TraceConfig::full());
        for _ in 0..50 {
            rt.raise(a, RaiseMode::Sync, &[]).unwrap();
            rt.run_until_idle().unwrap();
        }
        let profile = Profile::from_trace(&rt.take_trace(), 10);
        let mut opts = OptimizeOptions::new(10);
        opts.speculative = true; // even speculation must not touch async
        let opt = optimize(&m, rt.registry(), &profile, &opts);

        let sup = opt.module.function_by_name("__super_A").expect("A merged");
        let has_async_raise = opt.module.function(sup).blocks.iter().any(|blk| {
            blk.instrs.iter().any(|i| {
                matches!(
                    i,
                    pdo_ir::Instr::Raise {
                        mode: RaiseMode::Async,
                        ..
                    }
                )
            })
        });
        assert!(has_async_raise, "async raise must be preserved");
    }
}
