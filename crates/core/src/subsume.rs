//! Subsumption: rewriting synchronous raises into direct super-handler
//! calls (paper §3.2.1, Figs 8/9; partitioned form Fig 14).

use pdo_ir::{
    Block, BlockId, EventId, FuncId, Function, Instr, NativeId, RaiseMode, Terminator, Value,
};

/// A synchronous raise site found in a function body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RaiseSite {
    /// Block index.
    pub block: usize,
    /// Instruction index within the block.
    pub pos: usize,
    /// The raised event.
    pub event: EventId,
    /// Number of arguments the raise passes.
    pub arity: usize,
}

/// Lists every `raise sync` site in `f`, in block/instruction order.
pub fn sync_raise_sites(f: &Function) -> Vec<RaiseSite> {
    let mut sites = Vec::new();
    for (b, block) in f.blocks.iter().enumerate() {
        for (i, instr) in block.instrs.iter().enumerate() {
            if let Instr::Raise {
                event,
                mode: RaiseMode::Sync,
                args,
            } = instr
            {
                sites.push(RaiseSite {
                    block: b,
                    pos: i,
                    event: *event,
                    arity: args.len(),
                });
            }
        }
    }
    sites
}

/// Replaces the raise at `site` with a **direct call** to `target` (the
/// child event's super-handler). Valid only under a chain-level guard on
/// the child's binding version: if the child re-binds, the whole chain must
/// fall back (§3.2.1).
///
/// # Panics
///
/// Panics if `site` does not address a synchronous raise.
pub fn subsume_direct(f: &mut Function, site: RaiseSite, target: FuncId) {
    let instr = &mut f.blocks[site.block].instrs[site.pos];
    let Instr::Raise {
        mode: RaiseMode::Sync,
        args,
        ..
    } = instr
    else {
        panic!("subsume_direct: site is not a synchronous raise");
    };
    let args = args.clone();
    let dst = f.new_reg();
    f.blocks[site.block].instrs[site.pos] = Instr::Call {
        dst,
        func: target,
        args,
    };
}

/// Replaces the raise at `site` with the **partitioned** guarded form of
/// Fig 14:
///
/// ```text
/// if binding_version(child) == expected { call super_child(args) }
/// else                                  { raise sync child(args) }
/// ```
///
/// The chain containing this site then only needs its *head* guard — a
/// re-binding of the child degrades exactly this segment, not the whole
/// chain.
///
/// # Panics
///
/// Panics if `site` does not address a synchronous raise.
pub fn subsume_partitioned(
    f: &mut Function,
    site: RaiseSite,
    target: FuncId,
    version_native: NativeId,
    expected_version: u64,
) {
    let block = site.block;
    let pos = site.pos;
    let Instr::Raise {
        event,
        mode: RaiseMode::Sync,
        args,
    } = f.blocks[block].instrs[pos].clone()
    else {
        panic!("subsume_partitioned: site is not a synchronous raise");
    };

    // Split: prefix stays in `block`; suffix moves to a continuation block.
    let tail: Vec<Instr> = f.blocks[block].instrs.split_off(pos + 1);
    f.blocks[block].instrs.pop(); // the raise itself

    let cont_id = BlockId::from_index(f.blocks.len());
    let fast_id = BlockId::from_index(f.blocks.len() + 1);
    let slow_id = BlockId::from_index(f.blocks.len() + 2);

    // Guard computation appended to the prefix block.
    let ev_reg = f.new_reg();
    let ver_reg = f.new_reg();
    let exp_reg = f.new_reg();
    let ok_reg = f.new_reg();
    let call_dst = f.new_reg();
    let prefix_term = std::mem::replace(
        &mut f.blocks[block].term,
        Terminator::Branch {
            cond: ok_reg,
            then_blk: fast_id,
            else_blk: slow_id,
        },
    );
    let prefix = &mut f.blocks[block].instrs;
    prefix.push(Instr::Const {
        dst: ev_reg,
        value: Value::Int(i64::from(event.0)),
    });
    prefix.push(Instr::CallNative {
        dst: ver_reg,
        native: version_native,
        args: vec![ev_reg],
    });
    prefix.push(Instr::Const {
        dst: exp_reg,
        value: Value::Int(expected_version as i64),
    });
    prefix.push(Instr::Bin {
        op: pdo_ir::BinOp::Eq,
        dst: ok_reg,
        lhs: ver_reg,
        rhs: exp_reg,
    });

    // Continuation with the original suffix and terminator.
    f.blocks.push(Block {
        instrs: tail,
        term: prefix_term,
    });
    // Fast arm: direct call to the child's super-handler.
    f.blocks.push(Block {
        instrs: vec![Instr::Call {
            dst: call_dst,
            func: target,
            args: args.clone(),
        }],
        term: Terminator::Jump(cont_id),
    });
    // Slow arm: the original generic raise.
    f.blocks.push(Block {
        instrs: vec![Instr::Raise {
            event,
            mode: RaiseMode::Sync,
            args,
        }],
        term: Terminator::Jump(cont_id),
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdo_ir::interp::{call, BasicEnv};
    use pdo_ir::parse::parse_module;
    use pdo_ir::{verify_module, Module};

    fn module_with_raise() -> Module {
        parse_module(
            "event Child\n\
             native __pdo_binding_version\n\
             func @parent(1) {\n\
             b0:\n\
               r1 = const int 5\n\
               raise sync %Child(r0)\n\
               r2 = add r0, r1\n\
               ret r2\n\
             }\n\
             func @child_super(1) {\n\
             b0:\n\
               ret r0\n\
             }\n",
        )
        .unwrap()
    }

    #[test]
    fn finds_sync_raise_sites() {
        let m = module_with_raise();
        let sites = sync_raise_sites(&m.functions[0]);
        assert_eq!(sites.len(), 1);
        assert_eq!(sites[0].block, 0);
        assert_eq!(sites[0].pos, 1);
        assert_eq!(sites[0].event, EventId(0));
        assert_eq!(sites[0].arity, 1);
    }

    #[test]
    fn async_raises_not_listed() {
        let m = parse_module(
            "event E\n\
             func @f(0) {\n\
             b0:\n\
               raise async %E()\n\
               raise timed %E()\n\
               ret\n\
             }\n",
        )
        .unwrap();
        assert!(sync_raise_sites(&m.functions[0]).is_empty());
    }

    #[test]
    fn direct_subsumption_replaces_raise_with_call() {
        let mut m = module_with_raise();
        let site = sync_raise_sites(&m.functions[0])[0];
        let target = m.function_by_name("child_super").unwrap();
        subsume_direct(&mut m.functions[0], site, target);
        verify_module(&m).unwrap();
        assert!(sync_raise_sites(&m.functions[0]).is_empty());
        let mut env = BasicEnv::new(&m);
        let parent = m.function_by_name("parent").unwrap();
        let r = call(&m, &mut env, parent, &[Value::Int(3)]).unwrap();
        assert_eq!(r, Value::Int(8));
        assert!(env.raised.is_empty(), "raise was replaced");
        assert_eq!(env.cost.calls, 1);
    }

    #[test]
    fn partitioned_subsumption_builds_guard() {
        let mut m = module_with_raise();
        let site = sync_raise_sites(&m.functions[0])[0];
        let target = m.function_by_name("child_super").unwrap();
        let nv = m.native_by_name("__pdo_binding_version").unwrap();
        subsume_partitioned(&mut m.functions[0], site, target, nv, 7);
        verify_module(&m).unwrap();

        // Guard matches: direct call, no raise.
        let parent = m.function_by_name("parent").unwrap();
        let mut env = BasicEnv::new(&m);
        env.bind_native(nv, |_| Ok(Value::Int(7)));
        let r = call(&m, &mut env, parent, &[Value::Int(3)]).unwrap();
        assert_eq!(r, Value::Int(8));
        assert!(env.raised.is_empty());

        // Guard fails: falls back to the generic raise.
        let mut env2 = BasicEnv::new(&m);
        env2.bind_native(nv, |_| Ok(Value::Int(99)));
        let r2 = call(&m, &mut env2, parent, &[Value::Int(3)]).unwrap();
        assert_eq!(r2, Value::Int(8));
        assert_eq!(env2.raised.len(), 1);
        assert_eq!(env2.raised[0].0, EventId(0));
    }

    #[test]
    fn partitioned_subsumption_preserves_suffix() {
        // The instructions after the raise must execute on both arms.
        let mut m = module_with_raise();
        let site = sync_raise_sites(&m.functions[0])[0];
        let target = m.function_by_name("child_super").unwrap();
        let nv = m.native_by_name("__pdo_binding_version").unwrap();
        subsume_partitioned(&mut m.functions[0], site, target, nv, 0);
        // `r2 = add r0, r1; ret r2` must live in the continuation block.
        let cont = &m.functions[0].blocks[1];
        assert_eq!(cont.instrs.len(), 1);
        assert!(matches!(cont.term, Terminator::Ret(Some(_))));
    }
}
