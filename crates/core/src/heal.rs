//! Self-healing specialization: the re-optimization loop that pairs
//! [`FaultPolicy::Despecialize`](pdo_events::FaultPolicy) with the
//! [`Quarantine`].
//!
//! Under `Despecialize` the runtime removes a faulting chain and keeps
//! draining generically — correct, but permanently slow. The
//! [`SelfHealer`] closes the loop: once per *epoch* (a workload slice the
//! caller chooses) it takes the runtime's stats delta, feeds the
//! [`Quarantine`], removes chains for newly quarantined events, and
//! re-installs a chain once its event's backoff has expired **and** the
//! registry still matches what the chain was compiled for.
//!
//! "Still matches" is checked structurally, not by version number: a chain
//! compiled for handler sequence `[h1, h2]` is valid whenever the live
//! bindings are exactly `[h1, h2]`, even if the version counter moved
//! through an unbind/re-bind cycle in between. In that case the healer
//! refreshes the guard versions in place — the §3.3 guard mechanism plus a
//! recovery path. If the sequence genuinely changed, the chain is reported
//! stale; producing a new one needs a fresh profile-and-optimize pass.

use crate::quarantine::{Quarantine, QuarantineConfig};
use crate::Optimization;
use pdo_events::{CompiledChain, Registry, Runtime, RuntimeStats};
use pdo_ir::{EventId, FuncId};
use std::collections::BTreeMap;

/// A chain plus the handler sequences (per guard event) it was compiled
/// against, captured at deploy time.
#[derive(Debug, Clone)]
struct ChainRecord {
    chain: CompiledChain,
    sequences: BTreeMap<EventId, Vec<FuncId>>,
}

/// What one [`SelfHealer::heal`] pass did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HealReport {
    /// Events newly quarantined this epoch, with their backoff expiry (ns).
    pub quarantined: Vec<(EventId, u64)>,
    /// Chains removed from the runtime because their event was quarantined.
    pub removed: Vec<EventId>,
    /// Chains (re-)installed: backoff expired and the registry still
    /// matches the compiled handler sequences.
    pub reinstalled: Vec<EventId>,
    /// Events whose backoff expired but whose bindings changed since
    /// compile time; they need a fresh profile-and-optimize pass.
    pub stale: Vec<EventId>,
}

impl HealReport {
    /// Nothing happened this pass.
    pub fn is_empty(&self) -> bool {
        self.quarantined.is_empty()
            && self.removed.is_empty()
            && self.reinstalled.is_empty()
            && self.stale.is_empty()
    }
}

/// The re-optimization loop state for one deployed runtime.
#[derive(Debug, Clone)]
pub struct SelfHealer {
    quarantine: Quarantine,
    records: BTreeMap<EventId, ChainRecord>,
}

impl SelfHealer {
    /// Captures the chains of `optimization` together with the handler
    /// sequences currently live in `registry` (call this at deploy time,
    /// when guards are valid by construction).
    pub fn new(config: QuarantineConfig, optimization: &Optimization, registry: &Registry) -> Self {
        SelfHealer {
            quarantine: Quarantine::new(config),
            records: Self::capture(optimization, registry),
        }
    }

    /// Replaces the tracked chains with those of a *fresh* optimization
    /// (the adaptive daemon re-profiled and rebuilt them), preserving the
    /// quarantine so a misbehaving event keeps its backoff across
    /// re-profiles.
    pub fn rebind(&mut self, optimization: &Optimization, registry: &Registry) {
        self.records = Self::capture(optimization, registry);
    }

    fn capture(optimization: &Optimization, registry: &Registry) -> BTreeMap<EventId, ChainRecord> {
        optimization
            .chains
            .iter()
            .map(|chain| {
                let sequences = chain
                    .guards
                    .iter()
                    .map(|g| {
                        let seq = registry
                            .bindings(g.event)
                            .iter()
                            .map(|b| b.handler)
                            .collect();
                        (g.event, seq)
                    })
                    .collect();
                (
                    chain.head,
                    ChainRecord {
                        chain: chain.clone(),
                        sequences,
                    },
                )
            })
            .collect()
    }

    /// The quarantine state (for reports and tests).
    pub fn quarantine(&self) -> &Quarantine {
        &self.quarantine
    }

    /// Mutable quarantine access — used by the adaptive engine to adopt
    /// strike counts and backoff expiries carried across a session
    /// snapshot/restore cycle.
    pub fn quarantine_mut(&mut self) -> &mut Quarantine {
        &mut self.quarantine
    }

    /// Runs one epoch boundary: takes the runtime's stats delta and heals.
    pub fn after_epoch(&mut self, runtime: &mut Runtime) -> HealReport {
        let stats = runtime.take_stats();
        self.heal(runtime, &stats)
    }

    /// As [`SelfHealer::after_epoch`] but with an explicit stats delta
    /// (when the caller already took the stats, e.g. to log them).
    pub fn heal(&mut self, runtime: &mut Runtime, stats: &RuntimeStats) -> HealReport {
        let now = runtime.clock_ns();
        let mut report = HealReport::default();

        for event in self.quarantine.observe(stats, now) {
            if runtime.remove_chain(event).is_some() {
                report.removed.push(event);
            }
            let until = self
                .quarantine
                .quarantined_until(event)
                .expect("just quarantined");
            report.quarantined.push((event, until));
        }

        for (&event, record) in self.records.iter_mut() {
            if runtime.spec().get(event).is_some() || self.quarantine.is_quarantined(event, now) {
                continue;
            }
            let matches = record.sequences.iter().all(|(&guard_event, compiled)| {
                let live = runtime.registry().bindings(guard_event);
                live.len() == compiled.len()
                    && live.iter().map(|b| b.handler).eq(compiled.iter().copied())
            });
            if matches {
                for guard in &mut record.chain.guards {
                    guard.version = runtime.registry().version(guard.event);
                }
                runtime.install_chain(record.chain.clone());
                report.reinstalled.push(event);
            } else {
                report.stale.push(event);
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{optimize, OptimizeOptions};
    use pdo_events::{
        FaultInjector, FaultKind, FaultPolicy, FaultSpec, RuntimeConfig, TraceConfig,
    };
    use pdo_ir::{BinOp, FunctionBuilder, Module, RaiseMode, Value};

    fn counting_module() -> (Module, EventId, pdo_ir::GlobalId, FuncId) {
        let mut m = Module::new();
        let e = m.add_event("E");
        let g = m.add_global("n", Value::Int(0));
        let mut b = FunctionBuilder::new("h", 0);
        let v = b.load_global(g);
        let one = b.const_int(1);
        let s = b.bin(BinOp::Add, v, one);
        b.store_global(g, s);
        b.ret(None);
        let h = m.add_function(b.finish());
        (m, e, g, h)
    }

    fn deploy(policy: FaultPolicy) -> (Runtime, SelfHealer, EventId, pdo_ir::GlobalId) {
        let (m, e, g, h) = counting_module();
        let mut rt = Runtime::new(m.clone());
        rt.bind(e, h, 0).unwrap();
        rt.set_trace_config(TraceConfig::full());
        for _ in 0..20 {
            rt.raise(e, RaiseMode::Sync, &[]).unwrap();
        }
        let profile = pdo_profile::Profile::from_trace(&rt.take_trace(), 10);
        let opt = optimize(&m, rt.registry(), &profile, &OptimizeOptions::new(10));
        assert_eq!(opt.chains.len(), 1);

        let mut fast = Runtime::with_config(
            opt.module.clone(),
            RuntimeConfig {
                fault_policy: policy,
                ..Default::default()
            },
        );
        fast.bind(e, h, 0).unwrap();
        opt.install_chains(&mut fast);
        let healer = SelfHealer::new(
            QuarantineConfig {
                fault_threshold: 2,
                churn_threshold: 4,
                base_backoff_ns: 1_000,
                max_backoff_ns: 8_000,
            },
            &opt,
            fast.registry(),
        );
        (fast, healer, e, g)
    }

    #[test]
    fn faulting_chain_is_quarantined_then_reinstalled_after_backoff() {
        let (mut rt, mut healer, e, g) = deploy(FaultPolicy::Despecialize);
        // Three injected traps cross fault_threshold = 2.
        rt.set_fault_injector(FaultInjector::from_plan((0..3).map(|i| FaultSpec {
            event: e,
            occurrence: i,
            kind: FaultKind::TrapDispatch,
        })));
        for _ in 0..3 {
            rt.raise(e, RaiseMode::Sync, &[]).unwrap();
        }
        // Despecialize already removed the chain on the first trap, and each
        // occurrence still ran generically.
        assert!(rt.spec().get(e).is_none());
        assert_eq!(rt.global(g), &Value::Int(3));

        let report = healer.after_epoch(&mut rt);
        assert_eq!(report.quarantined.len(), 1);
        let (qe, until) = report.quarantined[0];
        assert_eq!(qe, e);
        assert_eq!(until, rt.clock_ns() + 1_000);
        // While quarantined: heal does not re-install.
        let report = healer.heal(&mut rt, &RuntimeStats::default());
        assert!(report.reinstalled.is_empty());
        assert!(rt.spec().get(e).is_none());

        // Advance the virtual clock to exactly the expiry: re-installed.
        rt.advance_clock(1_000);
        let report = healer.heal(&mut rt, &RuntimeStats::default());
        assert_eq!(report.reinstalled, vec![e]);
        assert!(rt.spec().get(e).is_some());
        rt.raise(e, RaiseMode::Sync, &[]).unwrap();
        assert_eq!(rt.cost.fastpath_hits, 1);
    }

    #[test]
    fn reinstall_waits_for_full_backoff_on_virtual_clock() {
        let (mut rt, mut healer, e, _) = deploy(FaultPolicy::Despecialize);
        rt.set_fault_injector(FaultInjector::from_plan((0..3).map(|i| FaultSpec {
            event: e,
            occurrence: i,
            kind: FaultKind::TrapDispatch,
        })));
        for _ in 0..3 {
            rt.raise(e, RaiseMode::Sync, &[]).unwrap();
        }
        healer.after_epoch(&mut rt);
        rt.advance_clock(999); // one tick short
        let report = healer.heal(&mut rt, &RuntimeStats::default());
        assert!(report.reinstalled.is_empty());
        rt.advance_clock(1);
        let report = healer.heal(&mut rt, &RuntimeStats::default());
        assert_eq!(report.reinstalled, vec![e]);
    }

    #[test]
    fn guard_churn_quarantines_without_any_fault() {
        let (mut rt, mut healer, e, _) = deploy(FaultPolicy::Abort);
        // Rebinding invalidates the guard; every raise is then a miss.
        let h = rt.registry().bindings(e)[0].handler;
        rt.unbind(e, h);
        rt.bind(e, h, 0).unwrap();
        for _ in 0..5 {
            rt.raise(e, RaiseMode::Sync, &[]).unwrap();
        }
        assert_eq!(rt.stats().guard_misses(e), 5); // churn_threshold = 4
        let report = healer.after_epoch(&mut rt);
        assert_eq!(report.quarantined.len(), 1);
        assert_eq!(report.removed, vec![e]); // healer removed the stale chain
                                             // After backoff the sequence still matches [h], so the healer
                                             // refreshes the guard to the *current* version and re-installs.
        rt.advance_clock(1_000);
        let report = healer.heal(&mut rt, &RuntimeStats::default());
        assert_eq!(report.reinstalled, vec![e]);
        rt.raise(e, RaiseMode::Sync, &[]).unwrap();
        assert_eq!(rt.cost.fastpath_hits, 1, "refreshed guard must hold");
    }

    #[test]
    fn changed_sequence_reports_stale_instead_of_reinstalling() {
        let (mut rt, mut healer, e, _) = deploy(FaultPolicy::Despecialize);
        rt.set_fault_injector(FaultInjector::from_plan((0..3).map(|i| FaultSpec {
            event: e,
            occurrence: i,
            kind: FaultKind::TrapDispatch,
        })));
        for _ in 0..3 {
            rt.raise(e, RaiseMode::Sync, &[]).unwrap();
        }
        healer.after_epoch(&mut rt);
        // Genuinely change the bindings while quarantined.
        let h = rt.registry().bindings(e)[0].handler;
        rt.unbind(e, h);
        rt.advance_clock(10_000);
        let report = healer.heal(&mut rt, &RuntimeStats::default());
        assert_eq!(report.stale, vec![e]);
        assert!(rt.spec().get(e).is_none());
    }

    #[test]
    fn repeated_offense_doubles_backoff() {
        let (mut rt, mut healer, e, _) = deploy(FaultPolicy::Despecialize);
        let fault_round = |rt: &mut Runtime, healer: &mut SelfHealer, base: u64| {
            rt.set_fault_injector(FaultInjector::from_plan((base..base + 3).map(|i| {
                FaultSpec {
                    event: e,
                    occurrence: i - base,
                    kind: FaultKind::TrapDispatch,
                }
            })));
            for _ in 0..3 {
                rt.raise(e, RaiseMode::Sync, &[]).unwrap();
            }
            let report = healer.after_epoch(rt);
            report.quarantined[0].1 - rt.clock_ns()
        };
        let w1 = fault_round(&mut rt, &mut healer, 0);
        rt.advance_clock(w1);
        assert_eq!(
            healer.heal(&mut rt, &RuntimeStats::default()).reinstalled,
            vec![e]
        );
        let w2 = fault_round(&mut rt, &mut healer, 0);
        assert_eq!(w1, 1_000);
        assert_eq!(w2, 2_000);
    }

    #[test]
    fn partitioned_chain_quarantines_only_the_faulting_segments_event() {
        // Fig 14 shape: Head's handler synchronously raises Child.
        // Partitioned optimization compiles both chains; the head chain
        // enters on its own guard and re-checks Child's version in-body.
        let mut m = Module::new();
        let head = m.add_event("Head");
        let child = m.add_event("Child");
        let g = m.add_global("log", Value::Int(0));
        let boom = m.add_native("boom"); // never bound: calling it traps

        let digit = |m: &mut Module, name: &str, d: i64, raises: Option<EventId>| {
            let mut b = FunctionBuilder::new(name, 0);
            let v = b.load_global(g);
            let ten = b.const_int(10);
            let scaled = b.bin(BinOp::Mul, v, ten);
            let dd = b.const_int(d);
            let s = b.bin(BinOp::Add, scaled, dd);
            b.store_global(g, s);
            if let Some(ev) = raises {
                b.raise(ev, RaiseMode::Sync, &[]);
            }
            b.ret(None);
            m.add_function(b.finish())
        };
        let h_head = digit(&mut m, "head_h", 1, Some(child));
        let h_child = digit(&mut m, "child_h", 2, None);
        let mut b = FunctionBuilder::new("trap_h", 0);
        let _ = b.call_native(boom, &[]);
        b.ret(None);
        let h_trap = m.add_function(b.finish());

        let mut rt = Runtime::new(m.clone());
        rt.bind(head, h_head, 0).unwrap();
        rt.bind(child, h_child, 0).unwrap();
        rt.set_trace_config(TraceConfig::full());
        for _ in 0..40 {
            rt.raise(head, RaiseMode::Sync, &[]).unwrap();
        }
        let profile = pdo_profile::Profile::from_trace(&rt.take_trace(), 20);
        let mut opts = OptimizeOptions::new(20);
        opts.partitioned = true;
        let opt = optimize(&m, rt.registry(), &profile, &opts);
        assert_eq!(opt.chains.len(), 2);
        assert!(opt.chains.iter().all(|c| c.partitioned));

        let mut fast = Runtime::with_config(
            opt.module.clone(),
            RuntimeConfig {
                fault_policy: FaultPolicy::Despecialize,
                ..Default::default()
            },
        );
        fast.bind(head, h_head, 0).unwrap();
        fast.bind(child, h_child, 0).unwrap();
        opt.install_chains(&mut fast);
        let mut healer = SelfHealer::new(
            QuarantineConfig {
                fault_threshold: 2,
                churn_threshold: 100,
                base_backoff_ns: 1_000,
                max_backoff_ns: 8_000,
            },
            &opt,
            fast.registry(),
        );

        // Fault only the child segment: the extra binding invalidates the
        // segment guard, and the fallback generic dispatch of Child traps.
        fast.bind(child, h_trap, 10).unwrap();
        for _ in 0..3 {
            fast.raise(head, RaiseMode::Sync, &[]).unwrap();
        }
        assert_eq!(fast.cost.fastpath_hits, 3, "head chain keeps its fast path");
        assert_eq!(fast.stats().faults(child), 3);
        assert_eq!(fast.stats().faults(head), 0);
        // Each raise still appends 1 (head) then 2 (child's intact handler).
        assert_eq!(fast.global(g), &Value::Int(121_212));

        let report = healer.after_epoch(&mut fast);
        assert_eq!(report.quarantined.len(), 1);
        assert_eq!(report.quarantined[0].0, child);
        assert!(!healer.quarantine().is_quarantined(head, fast.clock_ns()));
        // Only the faulting segment's event lost specialization; the head
        // chain stays installed and keeps hitting.
        assert!(fast.spec().get(head).is_some());
        assert!(fast.spec().get(child).is_none());
        fast.raise(head, RaiseMode::Sync, &[]).unwrap();
        assert_eq!(fast.cost.fastpath_hits, 4);
    }
}
