//! Handler merging (paper Fig 7): building the super-handler shell.

use pdo_ir::{FuncId, FunctionBuilder, Module, NativeId, Reg};

/// Why an event could not be merged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MergeSkip {
    /// The profile observed more than one distinct handler sequence.
    UnstableSequence,
    /// The profiled sequence no longer matches the live registry.
    RegistryDrift,
    /// Handlers disagree on arity; a single merged body cannot serve them.
    ArityMismatch,
    /// No handlers are bound; nothing to merge.
    NoHandlers,
}

impl std::fmt::Display for MergeSkip {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MergeSkip::UnstableSequence => write!(f, "handler sequence unstable in profile"),
            MergeSkip::RegistryDrift => write!(f, "registry changed since profiling"),
            MergeSkip::ArityMismatch => write!(f, "handlers have differing arities"),
            MergeSkip::NoHandlers => write!(f, "no handlers bound"),
        }
    }
}

/// Builds the super-handler *shell* for a handler sequence: one function
/// that calls each handler in order with its own parameters. The shell is
/// subsequently expanded by aggressive inlining and cleaned by the compiler
/// passes, yielding the merged body of Fig 7.
///
/// Returns the new function's id.
///
/// # Errors
///
/// Returns [`MergeSkip::NoHandlers`] for an empty sequence and
/// [`MergeSkip::ArityMismatch`] when the handlers disagree on parameter
/// count.
pub fn build_super_handler(
    module: &mut Module,
    name: &str,
    handlers: &[FuncId],
) -> Result<FuncId, MergeSkip> {
    build_super_handler_metered(module, name, handlers, None)
}

/// As [`build_super_handler`], optionally emitting a call to the
/// `fuel_boundary` native before each handler segment. The markers make
/// [`pdo_events::FaultKind::ExhaustFuel`] charge its handler-boundary
/// budget at the same program points as generic dispatch (which meters one
/// unit before each pre-merge handler call), so fuel exhaustion trips
/// identically in original and merged runs.
///
/// # Errors
///
/// As [`build_super_handler`].
pub fn build_super_handler_metered(
    module: &mut Module,
    name: &str,
    handlers: &[FuncId],
    fuel_boundary: Option<NativeId>,
) -> Result<FuncId, MergeSkip> {
    let Some(&first) = handlers.first() else {
        return Err(MergeSkip::NoHandlers);
    };
    let params = module.function(first).params;
    if handlers
        .iter()
        .any(|&h| module.function(h).params != params)
    {
        return Err(MergeSkip::ArityMismatch);
    }
    let mut b = FunctionBuilder::new(name, params);
    let args: Vec<Reg> = (0..params).map(|i| b.param(i)).collect();
    for &h in handlers {
        if let Some(native) = fuel_boundary {
            let _ = b.call_native(native, &[]);
        }
        let _ = b.call(h, &args);
    }
    b.ret(None);
    Ok(module.add_function(b.finish()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdo_ir::interp::{call, BasicEnv};
    use pdo_ir::parse::parse_module;
    use pdo_ir::{GlobalId, Value};

    #[test]
    fn shell_calls_each_handler_in_order() {
        let mut m = parse_module(
            "global acc = int 0\n\
             func @h1(1) {\n\
             b0:\n\
               r1 = load $acc\n\
               r2 = const int 10\n\
               r3 = mul r1, r2\n\
               r4 = const int 1\n\
               r5 = add r3, r4\n\
               store $acc, r5\n\
               ret\n\
             }\n\
             func @h2(1) {\n\
             b0:\n\
               r1 = load $acc\n\
               r2 = const int 10\n\
               r3 = mul r1, r2\n\
               r4 = const int 2\n\
               r5 = add r3, r4\n\
               store $acc, r5\n\
               ret\n\
             }\n",
        )
        .unwrap();
        let h1 = m.function_by_name("h1").unwrap();
        let h2 = m.function_by_name("h2").unwrap();
        let sup = build_super_handler(&mut m, "__super_E", &[h1, h2]).unwrap();
        pdo_ir::verify_module(&m).unwrap();
        let mut env = BasicEnv::new(&m);
        call(&m, &mut env, sup, &[Value::Unit]).unwrap();
        assert_eq!(env.global(GlobalId(0)), &Value::Int(12));
    }

    #[test]
    fn empty_sequence_rejected() {
        let mut m = Module::new();
        assert_eq!(
            build_super_handler(&mut m, "s", &[]),
            Err(MergeSkip::NoHandlers)
        );
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut m = parse_module(
            "func @a(1) {\nb0:\n  ret\n}\n\
             func @b(2) {\nb0:\n  ret\n}\n",
        )
        .unwrap();
        let a = m.function_by_name("a").unwrap();
        let b = m.function_by_name("b").unwrap();
        assert_eq!(
            build_super_handler(&mut m, "s", &[a, b]),
            Err(MergeSkip::ArityMismatch)
        );
    }

    #[test]
    fn single_handler_shell_is_valid() {
        let mut m = parse_module("func @a(2) {\nb0:\n  r2 = add r0, r1\n  ret r2\n}\n").unwrap();
        let a = m.function_by_name("a").unwrap();
        let sup = build_super_handler(&mut m, "s", &[a]).unwrap();
        let mut env = BasicEnv::new(&m);
        // Shell discards the handler's return value, like dispatch does.
        let r = call(&m, &mut env, sup, &[Value::Int(1), Value::Int(2)]).unwrap();
        assert_eq!(r, Value::Unit);
    }
}
