//! The online adaptive-specialization loop.
//!
//! The paper's pipeline is offline: run, trace, optimize, redeploy. The
//! [`AdaptiveEngine`] closes that loop at runtime. Attached to a
//! [`Runtime`] through the epoch hook (so it fires *inside*
//! [`Runtime::run_until`] on virtual-clock epoch boundaries, with no
//! caller-driven `after_epoch`), each epoch it:
//!
//! 1. drains the session's trace window into an incremental
//!    [`ProfileBuilder`] (O(window), not O(everything ever traced));
//! 2. feeds the runtime's stats delta to the [`SelfHealer`] so faulting
//!    chains quarantine, back off, and re-install exactly as in the
//!    caller-driven workflow;
//! 3. when enough fresh events accumulated — or the healer reports a
//!    chain *stale* (bindings genuinely changed) — re-runs
//!    [`optimize`](crate::optimize) against the **original base module**
//!    and the live registry, hot-swaps the module, and installs the new
//!    chains under fresh binding-version guards;
//! 4. decays the accumulated profile, so hotness observed `k` epochs ago
//!    weighs `1/2^k`: a workload shift from chain A to chain B ends with
//!    B specialized and A despecialized;
//! 5. optionally duty-cycles the tracer
//!    ([`AdaptConfig::trace_sleep_epochs`]): once chains are deployed,
//!    instrumentation switches off between one-epoch sampling windows.
//!    While asleep, per-event generic-dispatch counters (a single map
//!    update on the slow path only — fast-path dispatches are by
//!    definition already specialized) keep the event graph current and
//!    wake the tracer early when an unspecialized event goes hot, so
//!    steady-state profiling overhead is zero between samples yet a
//!    workload shift is still caught within a couple of epochs. Healing
//!    (stats-based) keeps running every epoch regardless.
//!
//! Re-optimizing against the base module (not the previously optimized
//! one) keeps the module from growing a `__super_*` generation per
//! re-profile; existing function/global/native ids are stable because the
//! optimizer only appends, so [`Runtime::replace_module`] preserves all
//! session state.

use crate::heal::SelfHealer;
use crate::quarantine::{QuarantineConfig, QuarantineEntry};
use crate::{optimize, Optimization, OptimizeOptions};
use pdo_events::{Registry, Runtime, TraceConfig};
use pdo_ir::{EventId, Module};
use pdo_obs::{AuditAction, Histogram, MetricsSnapshot, ObsKind, SpanKind};
use pdo_profile::{BuilderState, Profile, ProfileBuilder};
use std::cell::RefCell;
use std::collections::BTreeSet;
use std::rc::Rc;
use std::time::Instant;

/// Tuning for one session's adaptation loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdaptConfig {
    /// Virtual-clock epoch length driving the loop (ns).
    pub epoch_ns: u64,
    /// Re-profile only after at least this many fresh raises accumulated
    /// (a `HealReport::stale` chain forces a re-profile regardless).
    pub min_fresh_events: u64,
    /// Optimizer configuration used for each re-profile.
    pub opts: OptimizeOptions,
    /// Quarantine/backoff policy for the embedded [`SelfHealer`].
    pub quarantine: QuarantineConfig,
    /// Trace-window cap installed on the runtime (bounds memory between
    /// epochs; `None` keeps the trace unbounded).
    pub trace_window: Option<usize>,
    /// Trace duty cycle: once chains are deployed, instrumentation sleeps
    /// this many epochs between one-epoch sampling windows, with per-event
    /// generic-dispatch counters standing in as the (tracing-free) hotness
    /// signal and demand-wake trigger while asleep. Steady-state tracing
    /// cost between samples is zero, and re-profiles only run on sampled
    /// epochs. `0` samples every epoch (fastest shift detection); larger
    /// values trade a bounded detection latency for throughput.
    pub trace_sleep_epochs: u32,
    /// Capacity of the per-session [`ChainCache`]: a workload oscillating
    /// between phases it has already seen swaps the pre-built optimization
    /// back in instead of re-running `optimize`. `0` disables caching.
    pub chain_cache: usize,
    /// Superinstruction fusion over freshly built super-handlers: `None`
    /// disables; `Some(min_pair)` runs the `pdo-passes` fusion pass on
    /// every function the optimizer appended, rewriting sequences whose
    /// adjacent-pair evidence in the interpreter's sampled opcode profile
    /// reaches `min_pair` (when no profile was sampled, every structural
    /// match fuses). Enabling this also duty-cycles opcode profiling
    /// alongside the tracer. Fused super-handlers install under the same
    /// binding-version guards as the chains that carry them.
    pub fuse_min_pair: Option<u64>,
}

impl Default for AdaptConfig {
    fn default() -> Self {
        AdaptConfig {
            epoch_ns: 1_000_000,
            min_fresh_events: 64,
            opts: OptimizeOptions::new(16),
            quarantine: QuarantineConfig::default(),
            trace_window: Some(8192),
            trace_sleep_epochs: 0,
            chain_cache: 8,
            fuse_min_pair: Some(0),
        }
    }
}

/// Cache key identifying one workload phase against one registry
/// configuration: the canonical [`Profile::shape_hash`] (structure of the
/// reduced event graph and its handler sequences, weights excluded) plus
/// the binding version of every reduced-graph node at optimize time. Two
/// epochs in the same phase with unchanged bindings produce equal keys;
/// any rebind of a hot event bumps its version and forces a miss.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct ChainCacheKey {
    /// Canonical profile-shape hash.
    pub shape: u64,
    /// `(event, registry version)` for every node of the reduced graph,
    /// in event order.
    pub versions: Vec<(EventId, u64)>,
}

impl ChainCacheKey {
    /// The key for `profile` against the live `registry`.
    pub fn of(profile: &Profile, registry: &Registry) -> ChainCacheKey {
        ChainCacheKey {
            shape: profile.shape_hash(),
            versions: profile
                .reduced()
                .nodes
                .keys()
                .map(|&e| (e, registry.version(e)))
                .collect(),
        }
    }
}

/// A bounded LRU of previously built [`Optimization`]s, keyed by
/// [`ChainCacheKey`].
///
/// Correctness does not rest on the key: before a hit is returned, every
/// cached chain is re-checked with
/// [`guards_hold`](pdo_events::CompiledChain::guards_hold) against the
/// *live* registry — the key's version vector only covers reduced-graph
/// nodes, while a chain may also guard subsumed child events. A cached
/// entry whose guards no longer hold is invalidated and reported as a
/// miss, so a cached install can never resurrect a stale binding-version
/// guard. Entries are likewise invalidated when the runtime despecializes
/// one of their events for containment (the healer's quarantine, not the
/// cache, decides when that chain may return).
#[derive(Debug, Default)]
pub struct ChainCache {
    cap: usize,
    /// Most-recently-used last; linear scans are fine at LRU capacities.
    entries: Vec<(ChainCacheKey, Optimization)>,
    hits: u64,
    misses: u64,
    evictions: u64,
    invalidations: u64,
}

impl ChainCache {
    /// A cache holding up to `cap` optimizations (`0` disables).
    pub fn new(cap: usize) -> ChainCache {
        ChainCache {
            cap,
            ..ChainCache::default()
        }
    }

    /// The cached optimization for `key`, if present and still valid
    /// against `registry`. Counts a hit or a miss; a guard-stale entry is
    /// dropped (invalidation + miss).
    pub fn lookup(&mut self, key: &ChainCacheKey, registry: &Registry) -> Option<Optimization> {
        match self.entries.iter().position(|(k, _)| k == key) {
            Some(idx) => {
                let entry = self.entries.remove(idx);
                if entry.1.chains.iter().all(|c| c.guards_hold(registry)) {
                    self.hits += 1;
                    let opt = entry.1.clone();
                    self.entries.push(entry);
                    Some(opt)
                } else {
                    self.invalidations += 1;
                    self.misses += 1;
                    None
                }
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Caches `opt` under `key`, evicting the least-recently-used entry
    /// when full. Empty optimizations are not cached (nothing to replay).
    pub fn insert(&mut self, key: ChainCacheKey, opt: &Optimization) {
        if self.cap == 0 || opt.chains.is_empty() {
            return;
        }
        self.entries.retain(|(k, _)| k != &key);
        if self.entries.len() >= self.cap {
            self.entries.remove(0);
            self.evictions += 1;
        }
        self.entries.push((key, opt.clone()));
    }

    /// Drops every entry containing a chain that dispatches or guards
    /// `event`, returning how many were dropped. Called when the runtime
    /// despecializes `event` for containment: the quarantine owns the
    /// decision of when that chain may come back.
    pub fn invalidate_event(&mut self, event: EventId) -> usize {
        let before = self.entries.len();
        self.entries.retain(|(_, opt)| {
            !opt.chains
                .iter()
                .any(|c| c.head == event || c.guards.iter().any(|g| g.event == event))
        });
        let dropped = before - self.entries.len();
        self.invalidations += dropped as u64;
        dropped
    }

    /// Live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses so far (guard-stale lookups included).
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// LRU evictions so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Entries dropped for staleness (guard mismatch or despecialization).
    pub fn invalidations(&self) -> u64 {
        self.invalidations
    }
}

/// Observable counters of one session's adaptation loop.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdaptStats {
    /// Epoch boundaries processed.
    pub epochs: u64,
    /// Epochs whose span ran with full handler instrumentation (equals
    /// `epochs` unless a trace duty cycle is configured).
    pub sampled_epochs: u64,
    /// Full profile-and-optimize passes run.
    pub reprofiles: u64,
    /// Chains installed by re-profiles (cumulative).
    pub chains_installed: u64,
    /// Previously installed chains *not* reproduced by a later re-profile
    /// (the workload shifted away from them).
    pub chains_dropped: u64,
    /// Chains the runtime removed for containment (`Despecialize` policy),
    /// accumulated from the per-epoch stats deltas.
    pub despecialized: u64,
    /// Re-profiles served from the [`ChainCache`] (no `optimize` run).
    pub cache_hits: u64,
    /// Re-profiles that had to run `optimize` (cold, evicted, or stale).
    pub cache_misses: u64,
    /// Cache entries evicted by the LRU bound.
    pub cache_evictions: u64,
    /// Cache entries dropped for staleness (guard mismatch on lookup, or
    /// despecialization of one of their events).
    pub cache_invalidations: u64,
}

impl AdaptStats {
    /// Field-wise sum of `other` into `self` — the one place that knows
    /// every counter, so shard/server rollups can't silently drop a field
    /// when one is added here.
    pub fn absorb(&mut self, other: &AdaptStats) {
        let AdaptStats {
            epochs,
            sampled_epochs,
            reprofiles,
            chains_installed,
            chains_dropped,
            despecialized,
            cache_hits,
            cache_misses,
            cache_evictions,
            cache_invalidations,
        } = other;
        self.epochs += epochs;
        self.sampled_epochs += sampled_epochs;
        self.reprofiles += reprofiles;
        self.chains_installed += chains_installed;
        self.chains_dropped += chains_dropped;
        self.despecialized += despecialized;
        self.cache_hits += cache_hits;
        self.cache_misses += cache_misses;
        self.cache_evictions += cache_evictions;
        self.cache_invalidations += cache_invalidations;
    }
}

/// Serializable state of one [`AdaptiveEngine`], captured at an epoch
/// boundary (when the trace window and stats delta have just been
/// drained, so nothing in-flight is lost). A restored engine *resumes*
/// specialization: the decaying profile accumulators, the cumulative
/// adaptation counters, the trace duty-cycle position, and every
/// quarantine strike/backoff carry over.
///
/// Deliberately **not** captured — each is rebuilt deterministically or
/// is diagnostic-only: compiled chains (the next re-profile rebuilds them
/// from the carried profile), the [`ChainCache`] (a warm-start cache),
/// the reprofile wall-clock histogram (wall time is nondeterministic),
/// and the healer's chain records (recaptured at the next deploy).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EngineSnapshot {
    /// Decaying profile accumulators ([`ProfileBuilder`] state).
    pub profile: BuilderState,
    /// Cumulative adaptation counters (cache counters folded in).
    pub stats: AdaptStats,
    /// Trace duty-cycle position (epochs left asleep; 0 = sampling).
    pub sleep_remaining: u32,
    /// Per-event quarantine entries in id order.
    pub quarantine: Vec<(EventId, QuarantineEntry)>,
}

/// Per-session state of the adaptive-specialization daemon.
#[derive(Debug)]
pub struct AdaptiveEngine {
    base: Module,
    config: AdaptConfig,
    builder: ProfileBuilder,
    healer: Option<SelfHealer>,
    stats: AdaptStats,
    /// Epochs left before the trace duty cycle re-enables instrumentation
    /// (0 = currently sampling).
    sleep_remaining: u32,
    /// Wall-clock duration of each profile-and-optimize pass. Wall time —
    /// not virtual time — because the pass is daemon work the workload
    /// never sees on the virtual clock; consequently the histogram is
    /// nondeterministic and excluded from exact snapshot pins.
    reprofile_wall_ns: Histogram,
    /// Previously built optimizations, keyed by profile shape and binding
    /// versions, so oscillating phases skip `optimize`.
    cache: ChainCache,
    /// Quarantine entries carried across a snapshot/restore cycle, adopted
    /// by the healer the next time chains deploy (the healer itself only
    /// exists once a re-profile has run).
    restored_quarantine: Option<Vec<(EventId, QuarantineEntry)>>,
}

impl AdaptiveEngine {
    /// An engine re-optimizing against `base` (the session's original,
    /// unspecialized module).
    pub fn new(base: Module, config: AdaptConfig) -> Self {
        AdaptiveEngine {
            base,
            config,
            builder: ProfileBuilder::new(),
            healer: None,
            stats: AdaptStats::default(),
            sleep_remaining: 0,
            reprofile_wall_ns: Histogram::new(),
            cache: ChainCache::new(config.chain_cache),
            restored_quarantine: None,
        }
    }

    /// Hooks `engine` into `rt`: enables full tracing (bounded by the
    /// configured window) and installs an epoch hook that runs
    /// [`AdaptiveEngine::on_epoch`] inside `run_until` — the session
    /// adapts with no further caller involvement. The engine handle stays
    /// shared so callers can read [`AdaptiveEngine::stats`].
    pub fn attach(engine: Rc<RefCell<Self>>, rt: &mut Runtime) {
        let (epoch_ns, window, fusing) = {
            let e = engine.borrow();
            (
                e.config.epoch_ns,
                e.config.trace_window,
                e.config.fuse_min_pair.is_some(),
            )
        };
        rt.set_trace_config(TraceConfig::full());
        rt.set_trace_window(window);
        rt.set_dispatch_accounting(true);
        // Opcode profiling rides the same duty cycle as the tracer: on
        // while sampling, off while asleep.
        rt.set_opcode_profiling(fusing);
        rt.set_epoch_hook(epoch_ns, move |rt, _boundary| {
            engine.borrow_mut().on_epoch(rt);
        });
    }

    /// Convenience: builds an engine over the runtime's current module
    /// (which must be the unoptimized base) and attaches it.
    pub fn attach_new(rt: &mut Runtime, config: AdaptConfig) -> Rc<RefCell<Self>> {
        let engine = Rc::new(RefCell::new(AdaptiveEngine::new(
            rt.module().clone(),
            config,
        )));
        Self::attach(Rc::clone(&engine), rt);
        engine
    }

    /// Captures the engine's serializable state. Meaningful at an epoch
    /// boundary, where the trace window and stats delta have just been
    /// drained into the builder — snapshotting mid-epoch loses only that
    /// partial window, never corrupts.
    pub fn snapshot(&self) -> EngineSnapshot {
        EngineSnapshot {
            profile: self.builder.export_state(),
            stats: self.stats(),
            sleep_remaining: self.sleep_remaining,
            quarantine: match &self.healer {
                Some(h) => h.quarantine().export_entries(),
                None => self.restored_quarantine.clone().unwrap_or_default(),
            },
        }
    }

    /// Rebuilds an engine from a snapshot: profile accumulators, counters,
    /// duty-cycle position, and quarantine entries resume; chains and the
    /// cache rebuild at the next re-profile.
    pub fn from_snapshot(base: Module, config: AdaptConfig, snap: EngineSnapshot) -> Self {
        AdaptiveEngine {
            base,
            config,
            builder: ProfileBuilder::from_state(snap.profile),
            healer: None,
            stats: snap.stats,
            sleep_remaining: snap.sleep_remaining,
            reprofile_wall_ns: Histogram::new(),
            cache: ChainCache::new(config.chain_cache),
            restored_quarantine: (!snap.quarantine.is_empty()).then_some(snap.quarantine),
        }
    }

    /// Rebuilds an engine from `snap` and attaches it to `rt`, honoring a
    /// mid-sleep trace duty cycle (the tracer stays off until the carried
    /// sleep count runs out).
    pub fn attach_restored(
        rt: &mut Runtime,
        base: Module,
        config: AdaptConfig,
        snap: EngineSnapshot,
    ) -> Rc<RefCell<Self>> {
        let engine = Rc::new(RefCell::new(Self::from_snapshot(base, config, snap)));
        Self::attach(Rc::clone(&engine), rt);
        if engine.borrow().sleep_remaining > 0 {
            rt.set_trace_config(TraceConfig::off());
            rt.set_opcode_profiling(false);
        }
        engine
    }

    /// Adaptation counters so far (cache counters folded in). The base
    /// cache fields are zero on a fresh engine; a restored engine carries
    /// its pre-snapshot totals there, and the live cache adds on top.
    pub fn stats(&self) -> AdaptStats {
        AdaptStats {
            cache_hits: self.stats.cache_hits + self.cache.hits(),
            cache_misses: self.stats.cache_misses + self.cache.misses(),
            cache_evictions: self.stats.cache_evictions + self.cache.evictions(),
            cache_invalidations: self.stats.cache_invalidations + self.cache.invalidations(),
            ..self.stats
        }
    }

    /// The embedded healer, once the first re-profile deployed chains.
    pub fn healer(&self) -> Option<&SelfHealer> {
        self.healer.as_ref()
    }

    /// The session's original, unspecialized module — what every
    /// re-profile optimizes against. Migration uses it to reconstruct the
    /// session on another shard.
    pub fn base(&self) -> &Module {
        &self.base
    }

    /// Wall-clock durations of every profile-and-optimize pass so far
    /// (cache hits included — a hit's pass is the lookup plus the
    /// install).
    pub fn reprofile_wall_ns(&self) -> &Histogram {
        &self.reprofile_wall_ns
    }

    /// Runs one epoch boundary (normally invoked by the epoch hook).
    pub fn on_epoch(&mut self, rt: &mut Runtime) {
        self.stats.epochs += 1;
        let sampling = self.sleep_remaining == 0;
        if sampling {
            self.stats.sampled_epochs += 1;
            let window = rt.take_trace();
            self.builder.observe(&window);
        }
        let delta = rt.take_stats();
        self.stats.despecialized += delta.chains_removed;
        // Containment removed a chain: any cached optimization touching
        // that event must not short-circuit the quarantine by re-entering
        // through a cache hit.
        for &event in delta.despecialized_by_event.keys() {
            self.cache.invalidate_event(event);
        }
        // Generic-dispatch counts feed the event graph every epoch. While
        // the tracer sleeps they are the *only* hotness signal (and the
        // demand-wake trigger below); on sampled epochs they can overlap
        // with raise records for unspecialized sync raises, at most
        // doubling a node weight tracing already saw — a hotness signal,
        // not an exact count, so the overcount only accelerates crossing
        // the candidacy threshold. Fast-path dispatches are never counted:
        // an already specialized event cannot demand respecialization.
        self.builder
            .observe_dispatches(&delta.generic_dispatches_by_event);
        // Nested synchronous raises seen on the slow path feed the
        // subsumption evidence the same way: without this, a session whose
        // nested pattern only emerges while the tracer sleeps would
        // re-specialize the parent as a flat chain, never folding the
        // child in (`handler_graph.nested` is invisible during trace-off
        // epochs).
        self.builder.observe_nested(&delta.nested_sync_by_event);
        // Healing runs every epoch: it needs only the stats delta, not the
        // trace, so quarantine/backoff latency is unaffected by the duty
        // cycle.
        let stale = match self.healer.as_mut() {
            Some(h) => {
                let report = h.heal(rt, &delta);
                if let Some(obs) = rt.obs() {
                    for &(event, until_ns) in &report.quarantined {
                        obs.record(
                            rt.clock_ns(),
                            ObsKind::Quarantined {
                                event: event.0,
                                until_ns,
                            },
                        );
                    }
                }
                if let Some(t) = rt.tracer() {
                    // Audit spans: each quarantine decision joins the
                    // trace whose dispatch exposed the fault.
                    let now = rt.clock_ns();
                    for &(event, until_ns) in &report.quarantined {
                        t.record_under(
                            rt.last_trace_ctx(),
                            now,
                            now,
                            SpanKind::ChainAudit {
                                event: Some(event.0),
                                action: AuditAction::Quarantine,
                                why: format!("faults exceeded quarantine threshold; backoff until t={until_ns}ns"),
                            },
                        );
                    }
                }
                !report.stale.is_empty()
            }
            None => false,
        };
        // Re-profiles are pinned to sampled epochs: that is when the
        // handler graph holds an undecayed sequence for whatever the event
        // graph says is hot, so the optimizer can actually build chains.
        if stale || (sampling && self.builder.fresh_events() >= self.config.min_fresh_events) {
            self.reprofile(rt, stale);
        }
        self.builder.end_epoch();
        if sampling {
            if self.config.trace_sleep_epochs > 0 && !rt.spec().is_empty() {
                rt.set_trace_config(TraceConfig::off());
                rt.set_opcode_profiling(false);
                self.sleep_remaining = self.config.trace_sleep_epochs;
            }
        } else {
            // Demand wake: enough unspecialized dispatches accumulated to
            // justify a re-profile, so cut the sleep short — the next
            // epoch runs fully instrumented and supplies the handler
            // sequences the counts cannot.
            if self.builder.fresh_events() >= self.config.min_fresh_events {
                self.sleep_remaining = 1;
            }
            self.sleep_remaining -= 1;
            if self.sleep_remaining == 0 {
                rt.set_trace_config(TraceConfig::full());
                if self.config.fuse_min_pair.is_some() {
                    rt.set_opcode_profiling(true);
                }
            }
        }
    }

    /// One full profile-and-optimize pass against the base module, followed
    /// by a hot swap of module and chains.
    fn reprofile(&mut self, rt: &mut Runtime, stale: bool) {
        let started = Instant::now();
        let fresh = self.builder.take_fresh();
        let profile = self.builder.snapshot(self.config.opts.threshold);
        let key = ChainCacheKey::of(&profile, rt.registry());
        let mut cache_hit = true;
        let mut fused: Vec<pdo_passes::FusionRecord> = Vec::new();
        let opt = match self.cache.lookup(&key, rt.registry()) {
            Some(cached) => cached,
            None => {
                cache_hit = false;
                let mut opt = optimize(&self.base, rt.registry(), &profile, &self.config.opts);
                // Fusion happens before the cache insert, so a later hit
                // replays the already-fused optimization.
                fused = self.fuse_super_handlers(rt, &mut opt);
                self.cache.insert(key, &opt);
                opt
            }
        };
        self.stats.reprofiles += 1;
        // The auditable "why" every decision span below carries: the
        // profile evidence that triggered this pass.
        let evidence = format!(
            "fresh_events={fresh} min_fresh={} threshold={} stale={stale} cache={} chains={}",
            self.config.min_fresh_events,
            self.config.opts.threshold,
            if cache_hit { "hit" } else { "miss" },
            opt.chains.len(),
        );
        let audit = |rt: &Runtime, event: Option<u32>, action: AuditAction, extra: &str| {
            if let Some(t) = rt.tracer() {
                let now = rt.clock_ns();
                t.record_under(
                    rt.last_trace_ctx(),
                    now,
                    now,
                    SpanKind::ChainAudit {
                        event,
                        action,
                        why: if extra.is_empty() {
                            evidence.clone()
                        } else {
                            format!("{extra}; {evidence}")
                        },
                    },
                );
            }
        };
        audit(rt, None, AuditAction::Reprofile, "");
        // Fusion flight record: which sequences fused where, with the
        // pair-frequency evidence that justified each rewrite.
        for r in &fused {
            if let Some(obs) = rt.obs() {
                obs.record(
                    rt.clock_ns(),
                    ObsKind::SequenceFused {
                        func: r.func.0,
                        pattern: r.pattern,
                        sites: u32::try_from(r.sites).unwrap_or(u32::MAX),
                        evidence: r.evidence,
                    },
                );
            }
            audit(
                rt,
                None,
                AuditAction::Install,
                &format!(
                    "superinstruction fusion: func={} pattern={} sites={} pair_evidence={}",
                    r.func.0, r.pattern, r.sites, r.evidence
                ),
            );
        }
        if opt.chains.is_empty() {
            // Nothing is hot enough right now; keep the deployed chains
            // (they are still guard-correct) rather than thrashing.
            self.note_reprofile(rt, started, 0);
            return;
        }

        // Every installed chain references the *current* module's function
        // ids, which the swap invalidates: remove them all first, counting
        // the ones the new optimization no longer covers as dropped.
        let new_heads: BTreeSet<EventId> = opt.chains.iter().map(|c| c.head).collect();
        let old_heads: Vec<EventId> = rt.spec().iter().map(|c| c.head).collect();
        for event in old_heads {
            rt.remove_chain(event);
            if !new_heads.contains(&event) {
                self.stats.chains_dropped += 1;
                if let Some(obs) = rt.obs() {
                    obs.record(rt.clock_ns(), ObsKind::ChainDropped { event: event.0 });
                }
                audit(
                    rt,
                    Some(event.0),
                    AuditAction::Drop,
                    "chain not reproduced by new profile",
                );
            }
        }
        rt.replace_module(opt.module.clone());

        // The healer (re)binds before the install loop so the quarantine
        // check below sees every entry — including strikes and backoffs
        // carried across a snapshot/restore cycle, adopted here on the
        // first deploy of a restored session.
        match self.healer.as_mut() {
            Some(h) => h.rebind(&opt, rt.registry()),
            None => {
                let mut h = SelfHealer::new(self.config.quarantine, &opt, rt.registry());
                if let Some(entries) = self.restored_quarantine.take() {
                    h.quarantine_mut().restore_entries(entries);
                }
                self.healer = Some(h);
            }
        }
        let now = rt.clock_ns();
        for chain in &opt.chains {
            let quarantined = self
                .healer
                .as_ref()
                .is_some_and(|h| h.quarantine().is_quarantined(chain.head, now));
            if quarantined {
                audit(
                    rt,
                    Some(chain.head.0),
                    AuditAction::Quarantine,
                    "install skipped: event under quarantine backoff",
                );
                continue; // the healer re-installs it after backoff
            }
            rt.install_chain(chain.clone());
            self.stats.chains_installed += 1;
            if let Some(obs) = rt.obs() {
                obs.record(
                    rt.clock_ns(),
                    ObsKind::ChainInstalled {
                        event: chain.head.0,
                    },
                );
            }
            audit(
                rt,
                Some(chain.head.0),
                AuditAction::Install,
                "hot chain from profile snapshot",
            );
        }
        self.note_reprofile(rt, started, opt.chains.len() as u32);
    }

    /// Fuses hot instruction sequences in the freshly built super-handlers
    /// (functions the optimizer appended past the base module), guided by
    /// the opcode/pair profile the interpreter sampled since the last
    /// reprofile. Base functions are never rewritten — the hot-swap
    /// contract only appends — so the fused module installs under the
    /// same binding-version guards as the chains that reference it.
    fn fuse_super_handlers(
        &self,
        rt: &mut Runtime,
        opt: &mut crate::Optimization,
    ) -> Vec<pdo_passes::FusionRecord> {
        let Some(min_pair) = self.config.fuse_min_pair else {
            return Vec::new();
        };
        // Taking the profile zeroes it, so each reprofile interval fuses
        // on evidence from its own sampled windows only.
        let profile = rt.take_opcode_profile();
        let mut records = Vec::new();
        for idx in self.base.functions.len()..opt.module.functions.len() {
            pdo_passes::fuse_function(
                &mut opt.module.functions[idx],
                pdo_ir::FuncId::from_index(idx),
                profile.as_ref(),
                min_pair,
                &mut records,
            );
        }
        if !records.is_empty() {
            debug_assert_eq!(pdo_ir::verify_module(&opt.module), Ok(()));
        }
        records
    }

    /// Closes out one reprofile pass: wall-clock duration into the
    /// engine's histogram plus a flight-recorder entry.
    fn note_reprofile(&mut self, rt: &Runtime, started: Instant, chains: u32) {
        let duration_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.reprofile_wall_ns.record(duration_ns);
        if let Some(obs) = rt.obs() {
            obs.record(
                rt.clock_ns(),
                ObsKind::Reprofile {
                    chains,
                    duration_ns,
                },
            );
        }
    }

    /// Exports the adaptation loop's counters, gauges, and reprofile
    /// duration histogram into `snap` with `extra` labels on every series.
    /// `rt` supplies the live-chain gauge (the engine installs chains but
    /// the runtime owns them).
    pub fn export_metrics(&self, rt: &Runtime, snap: &mut MetricsSnapshot, extra: &[(&str, &str)]) {
        snap.counter(
            "pdo_adapt_epochs_total",
            "Epoch boundaries processed by the adaptation loop",
            extra,
            self.stats.epochs,
        );
        snap.counter(
            "pdo_adapt_cache_hits_total",
            "Re-profiles served from the specialization cache",
            extra,
            self.stats.cache_hits + self.cache.hits(),
        );
        snap.counter(
            "pdo_adapt_cache_misses_total",
            "Re-profiles that had to run the optimizer",
            extra,
            self.stats.cache_misses + self.cache.misses(),
        );
        snap.counter(
            "pdo_adapt_cache_evictions_total",
            "Specialization-cache entries evicted by the LRU bound",
            extra,
            self.stats.cache_evictions + self.cache.evictions(),
        );
        snap.counter(
            "pdo_adapt_cache_invalidations_total",
            "Specialization-cache entries dropped for staleness",
            extra,
            self.stats.cache_invalidations + self.cache.invalidations(),
        );
        snap.counter(
            "pdo_adapt_sampled_epochs_total",
            "Epochs whose span ran with full handler instrumentation",
            extra,
            self.stats.sampled_epochs,
        );
        snap.counter(
            "pdo_adapt_reprofiles_total",
            "Full profile-and-optimize passes run",
            extra,
            self.stats.reprofiles,
        );
        snap.counter(
            "pdo_adapt_chains_installed_total",
            "Compiled chains installed by re-profiles (cumulative)",
            extra,
            self.stats.chains_installed,
        );
        snap.counter(
            "pdo_adapt_chains_dropped_total",
            "Previously installed chains not reproduced by a later re-profile",
            extra,
            self.stats.chains_dropped,
        );
        snap.counter(
            "pdo_adapt_despecialized_total",
            "Chains the runtime removed for containment",
            extra,
            self.stats.despecialized,
        );
        snap.gauge(
            "pdo_adapt_chains_live",
            "Compiled chains currently installed in the runtime",
            extra,
            rt.spec().iter().count() as i64,
        );
        snap.gauge(
            "pdo_adapt_sampling",
            "Trace duty-cycle state: sessions currently sampling (1 per engine; sums across a shard)",
            extra,
            i64::from(self.sleep_remaining == 0),
        );
        if self.reprofile_wall_ns.count() > 0 {
            snap.histogram(
                "pdo_adapt_reprofile_wall_ns",
                "Wall-clock duration of each profile-and-optimize pass",
                extra,
                &self.reprofile_wall_ns,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdo_events::{FaultInjector, FaultKind, FaultPolicy, FaultSpec, RuntimeConfig};
    use pdo_ir::{BinOp, FunctionBuilder, RaiseMode, Value};

    /// Two independent events, two handlers each; handler `k` adds `k` to
    /// its event's accumulator, so each dispatch of [h1, h2] adds 3.
    fn two_chain_module() -> (Module, [EventId; 2], [pdo_ir::GlobalId; 2]) {
        let mut m = Module::new();
        let a = m.add_event("A");
        let b = m.add_event("B");
        let ga = m.add_global("la", Value::Int(0));
        let gb = m.add_global("lb", Value::Int(0));
        let adder = |m: &mut Module, name: &str, g: pdo_ir::GlobalId, d: i64| {
            let mut fb = FunctionBuilder::new(name, 0);
            let v = fb.load_global(g);
            let dd = fb.const_int(d);
            let o = fb.bin(BinOp::Add, v, dd);
            fb.store_global(g, o);
            fb.ret(None);
            m.add_function(fb.finish())
        };
        adder(&mut m, "a1", ga, 1);
        adder(&mut m, "a2", ga, 2);
        adder(&mut m, "b1", gb, 1);
        adder(&mut m, "b2", gb, 2);
        (m, [a, b], [ga, gb])
    }

    fn bind_all(rt: &mut Runtime, m: &Module, a: EventId, b: EventId) {
        rt.bind(a, m.function_by_name("a1").unwrap(), 0).unwrap();
        rt.bind(a, m.function_by_name("a2").unwrap(), 1).unwrap();
        rt.bind(b, m.function_by_name("b1").unwrap(), 0).unwrap();
        rt.bind(b, m.function_by_name("b2").unwrap(), 1).unwrap();
    }

    fn config() -> AdaptConfig {
        AdaptConfig {
            epoch_ns: 1_000,
            min_fresh_events: 20,
            opts: OptimizeOptions::new(10),
            ..Default::default()
        }
    }

    /// Drives `rt` with `n` timed raises of `event`, one per 100 ns, so
    /// `run_until` crosses epoch boundaries while dispatching.
    fn drive(rt: &mut Runtime, event: EventId, n: u64) {
        let start = rt.clock_ns();
        for i in 0..n {
            rt.raise(
                event,
                RaiseMode::Timed,
                &[Value::Int((i * 100 + 100) as i64)],
            )
            .unwrap();
        }
        rt.run_until(start + n * 100 + 1).unwrap();
    }

    #[test]
    fn hot_event_gets_specialized_with_no_caller_involvement() {
        let (m, [a, b], [ga, _]) = two_chain_module();
        let mut rt = Runtime::new(m.clone());
        bind_all(&mut rt, &m, a, b);
        let engine = AdaptiveEngine::attach_new(&mut rt, config());
        drive(&mut rt, a, 60);
        let stats = engine.borrow().stats();
        assert!(stats.epochs > 0, "epoch hook must fire inside run_until");
        assert!(stats.reprofiles >= 1);
        assert!(rt.spec().get(a).is_some(), "hot chain installed");
        let before = rt.cost.fastpath_hits;
        drive(&mut rt, a, 10);
        assert!(rt.cost.fastpath_hits > before, "fast path actually used");
        // Behaviour preserved: 70 dispatches of [a1, a2], each adding 3.
        assert_eq!(rt.global(ga), &Value::Int(70 * 3));
    }

    #[test]
    fn reprofile_fuses_super_handlers_online() {
        let (m, [a, b], [ga, _]) = two_chain_module();
        let mut rt = Runtime::new(m.clone());
        bind_all(&mut rt, &m, a, b);
        let hub = rt.enable_observability();
        let _engine = AdaptiveEngine::attach_new(&mut rt, config());
        drive(&mut rt, a, 60);
        assert!(rt.spec().get(a).is_some(), "hot chain installed");
        // The installed super-handler (appended past the base module) must
        // carry superinstructions; base functions stay untouched.
        let base_fns = m.functions.len();
        assert!(
            rt.module().functions[base_fns..].iter().any(|f| f
                .blocks
                .iter()
                .any(|b| b.instrs.iter().any(|i| i.opcode().is_fused()))),
            "online reprofile should fuse the super-handler"
        );
        assert_eq!(rt.module().functions[..base_fns], m.functions[..]);
        // The flight record names the fused pattern with its evidence.
        assert!(
            hub.tail(4096)
                .iter()
                .any(|r| matches!(r.kind, ObsKind::SequenceFused { sites, .. } if sites > 0)),
            "fusion must leave a SequenceFused flight record"
        );
        // Behaviour preserved through the fused fast path.
        drive(&mut rt, a, 10);
        assert_eq!(rt.global(ga), &Value::Int(70 * 3));
    }

    #[test]
    fn fusion_disabled_leaves_super_handlers_unfused() {
        let (m, [a, b], [ga, _]) = two_chain_module();
        let mut rt = Runtime::new(m.clone());
        bind_all(&mut rt, &m, a, b);
        let _engine = AdaptiveEngine::attach_new(
            &mut rt,
            AdaptConfig {
                fuse_min_pair: None,
                ..config()
            },
        );
        drive(&mut rt, a, 60);
        assert!(rt.spec().get(a).is_some());
        assert!(
            !rt.module().functions.iter().any(|f| f
                .blocks
                .iter()
                .any(|b| b.instrs.iter().any(|i| i.opcode().is_fused()))),
            "fuse_min_pair: None must disable fusion"
        );
        assert!(!rt.opcode_profiling(), "profiling stays off when disabled");
        drive(&mut rt, a, 10);
        assert_eq!(rt.global(ga), &Value::Int(70 * 3));
    }

    #[test]
    fn workload_shift_respecializes_and_drops_the_cold_chain() {
        let (m, [a, b], _) = two_chain_module();
        let mut rt = Runtime::new(m.clone());
        bind_all(&mut rt, &m, a, b);
        let engine = AdaptiveEngine::attach_new(&mut rt, config());
        drive(&mut rt, a, 60);
        assert!(rt.spec().get(a).is_some());
        assert!(rt.spec().get(b).is_none());
        // Shift: B becomes hot, A goes silent. Decay forgets A.
        drive(&mut rt, b, 200);
        assert!(rt.spec().get(b).is_some(), "B specialized after shift");
        assert!(rt.spec().get(a).is_none(), "A despecialized after shift");
        assert!(engine.borrow().stats().chains_dropped >= 1);
    }

    #[test]
    fn faulting_chain_quarantines_and_heals_inside_run_until() {
        let (m, [a, b], [ga, _]) = two_chain_module();
        let mut rt = Runtime::with_config(
            m.clone(),
            RuntimeConfig {
                fault_policy: FaultPolicy::Despecialize,
                ..Default::default()
            },
        );
        bind_all(&mut rt, &m, a, b);
        let engine = AdaptiveEngine::attach_new(
            &mut rt,
            AdaptConfig {
                quarantine: QuarantineConfig {
                    fault_threshold: 2,
                    base_backoff_ns: 2_000,
                    ..Default::default()
                },
                ..config()
            },
        );
        drive(&mut rt, a, 60);
        assert!(rt.spec().get(a).is_some());
        // Three injected traps: despecialize + quarantine, all contained.
        rt.set_fault_injector(FaultInjector::from_plan((0..3).map(|i| FaultSpec {
            event: a,
            occurrence: i,
            kind: FaultKind::TrapDispatch,
        })));
        drive(&mut rt, a, 3);
        assert!(rt.spec().get(a).is_none(), "containment removed the chain");
        // Keep running: backoff expires on the virtual clock and the healer
        // (driven by the epoch hook) re-installs or the next re-profile
        // rebuilds — either way the chain returns with no caller calls.
        drive(&mut rt, a, 120);
        assert!(rt.spec().get(a).is_some(), "chain healed");
        assert!(engine.borrow().stats().despecialized >= 1);
        // Every dispatch (faulted ones included, via generic fallback)
        // added its 3.
        assert_eq!(rt.global(ga), &Value::Int(183 * 3));
    }

    /// Module for the sleeping-tracer regression: `A` is the initially hot
    /// workload; `C`'s handler raises `D` synchronously only while `flag`
    /// is set; `D` is also raised top-level so its handler sequence is on
    /// record before the shift.
    fn nested_shift_module() -> (
        Module,
        [EventId; 3],
        [pdo_ir::GlobalId; 2],
        pdo_ir::GlobalId,
    ) {
        let mut m = Module::new();
        let a = m.add_event("A");
        let c = m.add_event("C");
        let d = m.add_event("D");
        let ga = m.add_global("ga", Value::Int(0));
        let gc = m.add_global("gc", Value::Int(0));
        let gd = m.add_global("gd", Value::Int(0));
        let flag = m.add_global("flag", Value::Int(0));
        let adder = |m: &mut Module, name: &str, g: pdo_ir::GlobalId| {
            let mut fb = FunctionBuilder::new(name, 0);
            let v = fb.load_global(g);
            let one = fb.const_int(1);
            let o = fb.bin(BinOp::Add, v, one);
            fb.store_global(g, o);
            fb.ret(None);
            m.add_function(fb.finish())
        };
        adder(&mut m, "a1", ga);
        adder(&mut m, "a2", ga);
        adder(&mut m, "d1", gd);
        let mut fb = FunctionBuilder::new("c1", 0);
        let v = fb.load_global(gc);
        let one = fb.const_int(1);
        let o = fb.bin(BinOp::Add, v, one);
        fb.store_global(gc, o);
        let f = fb.load_global(flag);
        let zero = fb.const_int(0);
        let cond = fb.bin(BinOp::Ne, f, zero);
        let then_blk = fb.new_block();
        let done = fb.new_block();
        fb.branch(cond, then_blk, done);
        fb.switch_to(then_blk);
        fb.raise(d, RaiseMode::Sync, &[]);
        fb.jump(done);
        fb.switch_to(done);
        fb.ret(None);
        m.add_function(fb.finish());
        (m, [a, c, d], [gc, gd], flag)
    }

    #[test]
    fn sleeping_tracer_still_discovers_a_new_nested_chain() {
        let (m, [a, c, d], [gc, gd], flag) = nested_shift_module();
        let mut rt = Runtime::new(m.clone());
        rt.bind(a, m.function_by_name("a1").unwrap(), 0).unwrap();
        rt.bind(c, m.function_by_name("c1").unwrap(), 0).unwrap();
        rt.bind(d, m.function_by_name("d1").unwrap(), 0).unwrap();
        let engine = AdaptiveEngine::attach_new(
            &mut rt,
            AdaptConfig {
                epoch_ns: 10_000,
                trace_sleep_epochs: 8,
                ..config()
            },
        );
        // While sampling: C and D run just below the candidacy threshold,
        // so their (stable) handler sequences are on record but neither
        // gets a chain; A goes hot, deploys, and puts the tracer to sleep.
        drive(&mut rt, c, 4);
        drive(&mut rt, d, 4);
        drive(&mut rt, a, 95);
        assert!(rt.spec().get(a).is_some(), "A deployed while sampling");
        assert!(rt.spec().get(c).is_none(), "C stays below threshold");
        // The workload shifts *while the tracer sleeps*: C goes hot and
        // its handler starts raising D synchronously. A's chain is gone
        // and its bindings changed, so the healer reports it stale and
        // forces a re-profile mid-sleep — with no trace window at all,
        // the slow-path nested counters are the only subsumption evidence.
        rt.set_global(flag, Value::Int(1));
        rt.bind(a, m.function_by_name("a2").unwrap(), 1).unwrap();
        rt.remove_chain(a);
        drive(&mut rt, c, 100);
        let stats = engine.borrow().stats();
        assert!(
            stats.sampled_epochs < stats.epochs,
            "the re-profile must run on a slept epoch: {stats:?}"
        );
        let chain = rt.spec().get(c).expect("sleeping session specialized C");
        assert!(
            chain.guards.iter().any(|g| g.event == d),
            "C's chain must subsume D on slow-path nested counts alone: {:?}",
            chain.guards
        );
        assert!(rt.spec().get(a).is_none(), "rebound A not rebuilt (drift)");
        // Behaviour preserved across the mid-sleep hot swap.
        assert_eq!(rt.global(gc), &Value::Int(104));
        assert_eq!(rt.global(gd), &Value::Int(104));
    }

    #[test]
    fn trace_duty_cycle_bounds_sampling_but_still_adapts() {
        let (m, [a, b], [ga, gb]) = two_chain_module();
        let mut rt = Runtime::new(m.clone());
        bind_all(&mut rt, &m, a, b);
        let engine = AdaptiveEngine::attach_new(
            &mut rt,
            AdaptConfig {
                trace_sleep_epochs: 4,
                ..config()
            },
        );
        drive(&mut rt, a, 60);
        assert!(rt.spec().get(a).is_some(), "converges while sampling");
        // Well past deployment: most epochs sleep the tracer.
        drive(&mut rt, a, 300);
        let stats = engine.borrow().stats();
        assert!(
            stats.sampled_epochs < stats.epochs,
            "duty cycle must skip sampling on some epochs: {stats:?}"
        );
        // A workload shift is still caught — while asleep, the generic-
        // dispatch counters register B going hot and demand-wake the
        // tracer, whose next window supplies B's handler sequence.
        drive(&mut rt, b, 800);
        assert!(
            rt.spec().get(b).is_some(),
            "B specialized despite duty cycle"
        );
        assert!(
            rt.spec().get(a).is_none(),
            "A despecialized despite duty cycle"
        );
        assert_eq!(rt.global(ga), &Value::Int(360 * 3));
        assert_eq!(rt.global(gb), &Value::Int(800 * 3));
    }

    /// Stale-guard property: however the session churns — rebinds that
    /// bump binding versions, manual chain drops, traps that despecialize
    /// under containment — once the next epoch has processed the churn,
    /// no installed chain may carry a binding-version guard that
    /// disagrees with the live registry. Quarantine (guard-miss churn),
    /// re-profiling (which removes every deployed chain before a hot
    /// swap), and the healer (which refreshes guard versions before a
    /// re-install) must jointly maintain the invariant.
    #[test]
    fn churn_cycles_never_leave_a_stale_guard_installed() {
        let (m, [a, b], _) = two_chain_module();
        let mut rt = Runtime::with_config(
            m.clone(),
            RuntimeConfig {
                fault_policy: FaultPolicy::Despecialize,
                ..Default::default()
            },
        );
        bind_all(&mut rt, &m, a, b);
        let engine = AdaptiveEngine::attach_new(&mut rt, config());
        // Any third handler works as rebind churn; behaviour is not under
        // test here, only guard freshness.
        let extra = [
            m.function_by_name("b1").unwrap(),
            m.function_by_name("a1").unwrap(),
        ];
        let mut extra_bound = [false, false];

        let mut state = 0x5EED_CAFEu64;
        let mut next = move || -> u64 {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };

        let mut installed_checks = 0u64;
        for cycle in 0..60 {
            // The mutated event and the driven event are drawn
            // independently: mutating an event that then goes *cold* is
            // exactly the case where only the re-profile's
            // remove-everything-before-swap (not guard-miss quarantine)
            // can clear the stale chain.
            let drive_idx = (next() % 2) as usize;
            let mut_idx = (next() % 2) as usize;
            let mutated = [a, b][mut_idx];
            let mutation = next() % 5;
            match mutation {
                0 => {
                    // Version churn: toggle an extra binding.
                    if extra_bound[mut_idx] {
                        rt.unbind(mutated, extra[mut_idx]);
                    } else {
                        rt.bind(mutated, extra[mut_idx], 5).unwrap();
                    }
                    extra_bound[mut_idx] = !extra_bound[mut_idx];
                }
                1 => {
                    rt.remove_chain(mutated);
                }
                2 => {
                    // A trap landing mid-burst; Despecialize containment
                    // removes the chain and feeds the quarantine.
                    let occurrence = next() % 8;
                    rt.set_fault_injector(FaultInjector::from_plan(std::iter::once(FaultSpec {
                        event: mutated,
                        occurrence,
                        kind: FaultKind::TrapDispatch,
                    })));
                }
                _ => {}
            }
            // Enough raises that every epoch inside the burst crosses the
            // candidacy threshold and the fresh-event floor, so the churn
            // is processed (by quarantine, re-profile, or heal) before the
            // burst ends.
            drive(&mut rt, [a, b][drive_idx], 45);
            for chain in rt.spec().iter() {
                assert!(
                    chain.guards_hold(rt.registry()),
                    "cycle {cycle} (mutation {mutation}) left a stale guard \
                     installed for head {:?}: {:?} vs registry",
                    chain.head,
                    chain.guards,
                );
                installed_checks += 1;
            }
        }
        let stats = engine.borrow().stats();
        assert!(
            installed_checks > 0,
            "property never saw an installed chain"
        );
        assert!(stats.reprofiles > 1, "engine never re-profiled: {stats:?}");
        assert!(
            stats.chains_installed > 1,
            "engine never hot-swapped chains: {stats:?}"
        );
        // The specialization cache is on by default, so the property above
        // also covers the cached install path: every guard check ran
        // against chains that may have come from the cache, and at least
        // some must have (phases repeat across churn cycles). A cached
        // install that resurrected a stale binding-version guard would
        // have tripped `guards_hold` above.
        assert!(
            stats.cache_hits >= 1,
            "churn never exercised the cached install path: {stats:?}"
        );
        assert!(
            stats.cache_misses >= 1,
            "version churn must force at least one rebuild: {stats:?}"
        );
    }

    #[test]
    fn snapshot_restore_resumes_specialization_and_quarantine() {
        let (m, [a, b], _) = two_chain_module();
        let adapt_config = AdaptConfig {
            quarantine: QuarantineConfig {
                fault_threshold: 2,
                base_backoff_ns: 1_000_000,
                ..Default::default()
            },
            ..config()
        };
        let mut rt = Runtime::with_config(
            m.clone(),
            RuntimeConfig {
                fault_policy: FaultPolicy::Despecialize,
                ..Default::default()
            },
        );
        bind_all(&mut rt, &m, a, b);
        let engine = AdaptiveEngine::attach_new(&mut rt, adapt_config);
        drive(&mut rt, a, 60);
        assert!(rt.spec().get(a).is_some());
        // Quarantine A with a long backoff, then let an epoch process it.
        rt.set_fault_injector(FaultInjector::from_plan((0..3).map(|i| FaultSpec {
            event: a,
            occurrence: i,
            kind: FaultKind::TrapDispatch,
        })));
        drive(&mut rt, a, 3);
        drive(&mut rt, b, 30);
        let until = engine
            .borrow()
            .healer()
            .expect("healer deployed")
            .quarantine()
            .quarantined_until(a)
            .expect("A quarantined");
        let snap = engine.borrow().snapshot();
        assert!(snap.stats.epochs > 0);
        assert_eq!(
            snap.quarantine
                .iter()
                .find(|(e, _)| *e == a)
                .map(|(_, q)| q.until_ns,),
            Some(Some(until))
        );

        // Restore into a fresh runtime at the same virtual time.
        let clock = rt.clock_ns();
        let mut rt2 = Runtime::with_config(
            m.clone(),
            RuntimeConfig {
                fault_policy: FaultPolicy::Despecialize,
                ..Default::default()
            },
        );
        bind_all(&mut rt2, &m, a, b);
        rt2.advance_clock(clock);
        let engine2 =
            AdaptiveEngine::attach_restored(&mut rt2, m.clone(), adapt_config, snap.clone());
        assert_eq!(engine2.borrow().snapshot(), snap, "round trip is exact");
        // A stays hot but its carried quarantine bars re-specialization…
        drive(&mut rt2, a, 60);
        assert!(
            engine2.borrow().stats().reprofiles > snap.stats.reprofiles,
            "restored engine resumes re-profiling"
        );
        assert!(
            rt2.spec().get(a).is_none(),
            "carried quarantine must bar A from re-specializing"
        );
        // …until the carried backoff expires on the virtual clock.
        rt2.advance_clock(1_000_000);
        drive(&mut rt2, a, 60);
        assert!(
            rt2.spec().get(a).is_some(),
            "A re-specializes once the carried backoff expires"
        );
        assert_eq!(
            engine2.borrow().healer().unwrap().quarantine().strikes(a),
            1,
            "strike count survives the restore"
        );
    }

    /// Builds a real `Optimization` for `event` from a synthetic trace, as
    /// the cache unit tests need genuine guard-bearing chains.
    fn opt_for(rt: &Runtime, base: &Module, event: EventId) -> (Profile, Optimization) {
        use pdo_events::{Trace, TraceRecord};
        let prefix = if event == EventId(0) { "a" } else { "b" };
        let handlers = [
            base.function_by_name(&format!("{prefix}1")).unwrap(),
            base.function_by_name(&format!("{prefix}2")).unwrap(),
        ];
        let mut records = Vec::new();
        for d in 0..30u64 {
            records.push(TraceRecord::Raise {
                event,
                mode: RaiseMode::Sync,
                depth: 0,
                at: d,
            });
            for handler in handlers {
                records.push(TraceRecord::HandlerEnter {
                    event,
                    handler,
                    dispatch: d,
                    at: d,
                });
                records.push(TraceRecord::HandlerExit {
                    event,
                    handler,
                    dispatch: d,
                    at: d,
                });
            }
        }
        let profile = Profile::from_trace(&Trace { records }, 10);
        let opt = optimize(base, rt.registry(), &profile, &OptimizeOptions::new(10));
        assert!(!opt.chains.is_empty(), "synthetic profile must specialize");
        (profile, opt)
    }

    #[test]
    fn chain_cache_hit_miss_eviction_and_guard_staleness() {
        let (m, [a, b], _) = two_chain_module();
        let mut rt = Runtime::new(m.clone());
        bind_all(&mut rt, &m, a, b);
        let (profile_a, opt_a) = opt_for(&rt, &m, a);
        let (profile_b, opt_b) = opt_for(&rt, &m, b);

        let mut cache = ChainCache::new(1);
        let key_a = ChainCacheKey::of(&profile_a, rt.registry());
        assert!(cache.lookup(&key_a, rt.registry()).is_none());
        assert_eq!(cache.misses(), 1);

        cache.insert(key_a.clone(), &opt_a);
        let hit = cache.lookup(&key_a, rt.registry()).expect("cached");
        assert_eq!(hit.chains.len(), opt_a.chains.len());
        assert_eq!(cache.hits(), 1);

        // Capacity 1: caching B's phase evicts A's.
        let key_b = ChainCacheKey::of(&profile_b, rt.registry());
        assert_ne!(key_a, key_b, "distinct phases must key differently");
        cache.insert(key_b.clone(), &opt_b);
        assert_eq!(cache.evictions(), 1);
        assert_eq!(cache.len(), 1);
        assert!(cache.lookup(&key_a, rt.registry()).is_none());

        // A rebind bumps B's version: the stale entry is dropped on
        // lookup, never returned.
        rt.bind(b, m.function_by_name("a1").unwrap(), 7).unwrap();
        assert!(
            cache.lookup(&key_b, rt.registry()).is_none(),
            "guard-stale entry must not hit"
        );
        assert_eq!(cache.invalidations(), 1);
        assert!(cache.is_empty());
    }

    #[test]
    fn chain_cache_invalidate_event_drops_guarding_entries() {
        let (m, [a, b], _) = two_chain_module();
        let mut rt = Runtime::new(m.clone());
        bind_all(&mut rt, &m, a, b);
        let (profile_a, opt_a) = opt_for(&rt, &m, a);
        let (profile_b, opt_b) = opt_for(&rt, &m, b);
        let mut cache = ChainCache::new(4);
        cache.insert(ChainCacheKey::of(&profile_a, rt.registry()), &opt_a);
        cache.insert(ChainCacheKey::of(&profile_b, rt.registry()), &opt_b);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.invalidate_event(a), 1);
        assert_eq!(cache.len(), 1, "only A's entry is dropped");
        assert_eq!(cache.invalidate_event(EventId(999)), 0);
    }

    #[test]
    fn repeated_phase_hits_the_cache_and_preserves_behaviour() {
        let (m, [a, b], [ga, gb]) = two_chain_module();
        let mut rt = Runtime::new(m.clone());
        bind_all(&mut rt, &m, a, b);
        let engine = AdaptiveEngine::attach_new(&mut rt, config());
        // Phase 1: A hot. Phase 2: B hot (A decays out). Phase 3: back to
        // A — its optimization replays from the cache.
        drive(&mut rt, a, 60);
        assert!(rt.spec().get(a).is_some());
        drive(&mut rt, b, 200);
        assert!(rt.spec().get(b).is_some());
        let hits_before_return = engine.borrow().stats().cache_hits;
        drive(&mut rt, a, 200);
        assert!(rt.spec().get(a).is_some(), "A respecialized on return");
        let stats = engine.borrow().stats();
        assert!(
            stats.cache_hits > hits_before_return,
            "returning to a seen phase must hit the cache: {stats:?}"
        );
        // Behaviour identical to the uncached engine: every dispatch of
        // [h1, h2] added 3 to its accumulator.
        assert_eq!(rt.global(ga), &Value::Int(260 * 3));
        assert_eq!(rt.global(gb), &Value::Int(200 * 3));
    }

    #[test]
    fn binding_version_bump_misses_the_cache() {
        let (m, [a, b], _) = two_chain_module();
        let mut rt = Runtime::new(m.clone());
        bind_all(&mut rt, &m, a, b);
        // Short quarantine backoff: the rebind's guard-miss churn
        // quarantines A briefly, and the test wants to see it
        // re-specialize within the drive window.
        let engine = AdaptiveEngine::attach_new(
            &mut rt,
            AdaptConfig {
                quarantine: QuarantineConfig {
                    base_backoff_ns: 2_000,
                    ..Default::default()
                },
                ..config()
            },
        );
        drive(&mut rt, a, 120);
        assert!(rt.spec().get(a).is_some());
        let before = engine.borrow().stats();
        // Rebind A: version bump makes every cached A-phase key stale.
        rt.bind(a, m.function_by_name("b1").unwrap(), 9).unwrap();
        drive(&mut rt, a, 240);
        let after = engine.borrow().stats();
        assert!(
            after.cache_misses > before.cache_misses,
            "rebind must force a fresh optimize: {after:?}"
        );
        let chain = rt.spec().get(a).expect("respecialized after rebind");
        assert!(chain.guards_hold(rt.registry()), "fresh guards installed");
    }

    #[test]
    fn despecialization_invalidates_the_cached_entry() {
        let (m, [a, b], _) = two_chain_module();
        let mut rt = Runtime::with_config(
            m.clone(),
            RuntimeConfig {
                fault_policy: FaultPolicy::Despecialize,
                ..Default::default()
            },
        );
        bind_all(&mut rt, &m, a, b);
        let engine = AdaptiveEngine::attach_new(
            &mut rt,
            AdaptConfig {
                quarantine: QuarantineConfig {
                    fault_threshold: 2,
                    base_backoff_ns: 2_000,
                    ..Default::default()
                },
                ..config()
            },
        );
        drive(&mut rt, a, 60);
        assert!(rt.spec().get(a).is_some());
        rt.set_fault_injector(FaultInjector::from_plan((0..3).map(|i| FaultSpec {
            event: a,
            occurrence: i,
            kind: FaultKind::TrapDispatch,
        })));
        drive(&mut rt, a, 3);
        assert!(rt.spec().get(a).is_none(), "containment removed the chain");
        // The next epoch processes the despecialization delta and drops
        // the cached A optimization with it.
        drive(&mut rt, b, 30);
        let stats = engine.borrow().stats();
        assert!(
            stats.cache_invalidations >= 1,
            "despecialization must invalidate the cache: {stats:?}"
        );
    }
}
