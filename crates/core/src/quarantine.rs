//! Specialization quarantine with exponential backoff.
//!
//! A compiled chain that keeps faulting (or whose guards keep failing
//! because the program re-binds handlers at a high rate) is worse than
//! generic dispatch: every occurrence pays the guard check, the containment
//! bookkeeping, or both. The quarantine tracks per-event fault and
//! guard-churn counters from [`pdo_events::RuntimeStats`] deltas and, once a
//! counter crosses its threshold, bars the event from specialization for an
//! exponentially growing window of *virtual* time (the runtime's clock, so
//! tests and simulations stay deterministic).
//!
//! The counters are per-epoch accumulators with a forgiveness rule: an
//! epoch in which a tracked event records neither faults nor guard misses
//! resets that event's accumulators (but not its strike count, so repeat
//! offenders keep doubling their backoff). This is what keeps one-off
//! transients from eventually adding up to a quarantine.

use pdo_events::RuntimeStats;
use pdo_ir::EventId;
use std::collections::{BTreeMap, BTreeSet};

/// Thresholds and backoff shape for [`Quarantine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuarantineConfig {
    /// Accumulated faults (injected or contained traps) above which an
    /// event is quarantined. The comparison is strict (`> fault_threshold`).
    pub fault_threshold: u64,
    /// Accumulated guard misses above which an event is quarantined
    /// (strict comparison), catching re-binding churn.
    pub churn_threshold: u64,
    /// Backoff after the first quarantine, in virtual ns; doubles with
    /// every strike.
    pub base_backoff_ns: u64,
    /// Backoff ceiling in virtual ns.
    pub max_backoff_ns: u64,
}

impl Default for QuarantineConfig {
    fn default() -> Self {
        QuarantineConfig {
            fault_threshold: 3,
            churn_threshold: 8,
            base_backoff_ns: 1_000_000,
            max_backoff_ns: 1_000_000_000,
        }
    }
}

#[derive(Debug, Clone, Default)]
struct Entry {
    faults: u64,
    guard_misses: u64,
    strikes: u32,
    until_ns: Option<u64>,
}

/// Externally serializable per-event quarantine state — the snapshot form
/// of one tracked event's accumulators, strike count, and backoff expiry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QuarantineEntry {
    /// Accumulated faults this (dirty) epoch run.
    pub faults: u64,
    /// Accumulated guard misses this (dirty) epoch run.
    pub guard_misses: u64,
    /// Lifetime quarantine count (drives the backoff exponent).
    pub strikes: u32,
    /// Current (or most recent) backoff expiry in virtual ns.
    pub until_ns: Option<u64>,
}

/// Per-event quarantine state. Feed it one [`RuntimeStats`] delta per epoch
/// via [`Quarantine::observe`]; query with [`Quarantine::is_quarantined`].
#[derive(Debug, Clone)]
pub struct Quarantine {
    config: QuarantineConfig,
    entries: BTreeMap<EventId, Entry>,
}

impl Quarantine {
    /// An empty quarantine with the given thresholds.
    pub fn new(config: QuarantineConfig) -> Self {
        Quarantine {
            config,
            entries: BTreeMap::new(),
        }
    }

    /// The configured thresholds.
    pub fn config(&self) -> &QuarantineConfig {
        &self.config
    }

    /// Merges one epoch's stats delta at virtual time `now_ns` and returns
    /// the events that crossed a threshold *this* epoch (in id order).
    ///
    /// `stats` must be a delta (e.g. from [`pdo_events::Runtime::take_stats`]
    /// called once per epoch), not a cumulative snapshot — feeding the same
    /// counts twice doubles them.
    pub fn observe(&mut self, stats: &RuntimeStats, now_ns: u64) -> Vec<EventId> {
        let active: BTreeSet<EventId> = stats
            .faults_by_event
            .keys()
            .chain(stats.guard_misses_by_event.keys())
            .copied()
            .collect();

        // Forgiveness: a clean epoch resets an event's accumulators.
        for (event, entry) in self.entries.iter_mut() {
            if !active.contains(event) {
                entry.faults = 0;
                entry.guard_misses = 0;
            }
        }

        for (&event, &n) in &stats.faults_by_event {
            self.entries.entry(event).or_default().faults += n;
        }
        for (&event, &n) in &stats.guard_misses_by_event {
            self.entries.entry(event).or_default().guard_misses += n;
        }

        let mut newly = Vec::new();
        for &event in &active {
            let config = self.config;
            let entry = self.entries.entry(event).or_default();
            let already = entry.until_ns.is_some_and(|u| u > now_ns);
            if !already
                && (entry.faults > config.fault_threshold
                    || entry.guard_misses > config.churn_threshold)
            {
                entry.strikes += 1;
                let shift = u32::min(entry.strikes - 1, 63);
                let backoff = config
                    .base_backoff_ns
                    .saturating_mul(1u64 << shift)
                    .min(config.max_backoff_ns);
                entry.until_ns = Some(now_ns.saturating_add(backoff));
                entry.faults = 0;
                entry.guard_misses = 0;
                newly.push(event);
            }
        }
        newly
    }

    /// Is `event` barred from specialization at virtual time `now_ns`?
    /// The bar lifts exactly at the recorded deadline: at `now_ns ==
    /// until_ns` the event is eligible again.
    pub fn is_quarantined(&self, event: EventId, now_ns: u64) -> bool {
        self.entries
            .get(&event)
            .and_then(|e| e.until_ns)
            .is_some_and(|u| u > now_ns)
    }

    /// The virtual time at which `event`'s current (or most recent)
    /// quarantine expires, if it was ever quarantined.
    pub fn quarantined_until(&self, event: EventId) -> Option<u64> {
        self.entries.get(&event).and_then(|e| e.until_ns)
    }

    /// How many times `event` has been quarantined (drives the exponent).
    pub fn strikes(&self, event: EventId) -> u32 {
        self.entries.get(&event).map_or(0, |e| e.strikes)
    }

    /// Current fault/guard-miss accumulators for `event` (testing and
    /// report rendering).
    pub fn counters(&self, event: EventId) -> (u64, u64) {
        self.entries
            .get(&event)
            .map_or((0, 0), |e| (e.faults, e.guard_misses))
    }

    /// Exports every tracked event's state in id order (snapshotting).
    pub fn export_entries(&self) -> Vec<(EventId, QuarantineEntry)> {
        self.entries
            .iter()
            .map(|(&event, e)| {
                (
                    event,
                    QuarantineEntry {
                        faults: e.faults,
                        guard_misses: e.guard_misses,
                        strikes: e.strikes,
                        until_ns: e.until_ns,
                    },
                )
            })
            .collect()
    }

    /// Replaces the tracked entries with previously exported ones (the
    /// inverse of [`Quarantine::export_entries`]), preserving strike
    /// counts and backoff expiries across a restore.
    pub fn restore_entries(&mut self, entries: Vec<(EventId, QuarantineEntry)>) {
        self.entries = entries
            .into_iter()
            .map(|(event, e)| {
                (
                    event,
                    Entry {
                        faults: e.faults,
                        guard_misses: e.guard_misses,
                        strikes: e.strikes,
                        until_ns: e.until_ns,
                    },
                )
            })
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats_with_faults(event: EventId, n: u64) -> RuntimeStats {
        let mut s = RuntimeStats::default();
        s.faults_by_event.insert(event, n);
        s
    }

    fn stats_with_misses(event: EventId, n: u64) -> RuntimeStats {
        let mut s = RuntimeStats::default();
        s.guard_misses_by_event.insert(event, n);
        s
    }

    fn config() -> QuarantineConfig {
        QuarantineConfig {
            fault_threshold: 3,
            churn_threshold: 8,
            base_backoff_ns: 1_000,
            max_backoff_ns: 16_000,
        }
    }

    #[test]
    fn faults_below_threshold_do_not_quarantine() {
        let e = EventId(0);
        let mut q = Quarantine::new(config());
        assert!(q.observe(&stats_with_faults(e, 3), 0).is_empty());
        assert!(!q.is_quarantined(e, 0));
    }

    #[test]
    fn crossing_threshold_quarantines_with_base_backoff() {
        let e = EventId(0);
        let mut q = Quarantine::new(config());
        assert_eq!(q.observe(&stats_with_faults(e, 4), 100), vec![e]);
        assert!(q.is_quarantined(e, 100));
        assert_eq!(q.quarantined_until(e), Some(1_100));
        // Eligible again exactly at expiry, not one tick before.
        assert!(q.is_quarantined(e, 1_099));
        assert!(!q.is_quarantined(e, 1_100));
    }

    #[test]
    fn faults_accumulate_across_dirty_epochs() {
        let e = EventId(0);
        let mut q = Quarantine::new(config());
        assert!(q.observe(&stats_with_faults(e, 2), 0).is_empty());
        assert_eq!(q.observe(&stats_with_faults(e, 2), 10), vec![e]);
    }

    #[test]
    fn clean_epoch_resets_accumulators() {
        let e = EventId(0);
        let mut q = Quarantine::new(config());
        q.observe(&stats_with_misses(e, 8), 0); // at threshold, not over
        assert_eq!(q.counters(e).1, 8);
        // Clean epoch (no entry for e): counter forgiven.
        q.observe(&RuntimeStats::default(), 10);
        assert_eq!(q.counters(e), (0, 0));
        // Another 8 misses alone no longer quarantine.
        assert!(q.observe(&stats_with_misses(e, 8), 20).is_empty());
    }

    #[test]
    fn backoff_doubles_per_strike_and_caps() {
        let e = EventId(0);
        let mut q = Quarantine::new(config());
        let mut now = 0u64;
        let mut windows = Vec::new();
        for _ in 0..7 {
            assert_eq!(q.observe(&stats_with_faults(e, 4), now), vec![e]);
            let until = q.quarantined_until(e).unwrap();
            windows.push(until - now);
            now = until; // expiry: eligible again, fault again
        }
        assert_eq!(
            windows,
            vec![1_000, 2_000, 4_000, 8_000, 16_000, 16_000, 16_000]
        );
        assert_eq!(q.strikes(e), 7);
    }

    #[test]
    fn faults_during_quarantine_do_not_extend_it() {
        let e = EventId(0);
        let mut q = Quarantine::new(config());
        q.observe(&stats_with_faults(e, 4), 0);
        let until = q.quarantined_until(e).unwrap();
        // Still quarantined: further faults accumulate but do not re-arm.
        assert!(q.observe(&stats_with_faults(e, 40), 10).is_empty());
        assert_eq!(q.quarantined_until(e), Some(until));
    }

    #[test]
    fn export_restore_preserves_strikes_and_backoff() {
        let e = EventId(0);
        let mut q = Quarantine::new(config());
        q.observe(&stats_with_faults(e, 4), 0);
        q.observe(&stats_with_faults(e, 2), 10); // accumulating mid-window
        let entries = q.export_entries();
        let mut r = Quarantine::new(config());
        r.restore_entries(entries.clone());
        assert_eq!(r.export_entries(), entries, "round trip is exact");
        assert_eq!(r.strikes(e), q.strikes(e));
        assert_eq!(r.quarantined_until(e), q.quarantined_until(e));
        assert_eq!(r.counters(e), q.counters(e));
        // A repeat offense after restore doubles from the carried strike.
        let until = r.quarantined_until(e).unwrap();
        assert_eq!(r.observe(&stats_with_faults(e, 4), until), vec![e]);
        assert_eq!(r.quarantined_until(e), Some(until + 2_000));
    }

    #[test]
    fn events_are_tracked_independently() {
        let (a, b) = (EventId(1), EventId(2));
        let mut q = Quarantine::new(config());
        let mut s = stats_with_faults(a, 4);
        s.guard_misses_by_event.insert(b, 2);
        assert_eq!(q.observe(&s, 0), vec![a]);
        assert!(q.is_quarantined(a, 0));
        assert!(!q.is_quarantined(b, 0));
    }
}
