//! The offline optimization loop as one call.
//!
//! Every consumer repeats the same dance: build an instrumented runtime,
//! drive a representative workload, build the [`Profile`], call
//! [`optimize`], then deploy a fresh runtime over the extended module with
//! the same bindings and natives plus the compiled chains. This module
//! packages that loop (§3.1's "executed enough times to develop an adequate
//! profile" workflow).

use crate::heal::SelfHealer;
use crate::quarantine::QuarantineConfig;
use crate::{optimize, Optimization, OptimizeOptions};
use pdo_events::{Runtime, RuntimeConfig, RuntimeError, TraceConfig};
use pdo_ir::{EventId, FuncId, Module};
use pdo_profile::Profile;
use std::fmt;

/// Workflow failure.
#[derive(Debug)]
pub enum WorkflowError {
    /// Building or driving a runtime failed.
    Runtime(RuntimeError),
}

impl fmt::Display for WorkflowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkflowError::Runtime(e) => write!(f, "workflow runtime failure: {e}"),
        }
    }
}

impl std::error::Error for WorkflowError {}

impl From<RuntimeError> for WorkflowError {
    fn from(e: RuntimeError) -> Self {
        WorkflowError::Runtime(e)
    }
}

/// The product of [`profile_and_optimize`]: a deployed, specialized runtime
/// plus the artifacts that produced it.
pub struct Deployed {
    /// A fresh runtime over the extended module — bindings applied, natives
    /// installed, chains live.
    pub runtime: Runtime,
    /// The optimization (module, chains, report) for inspection or for
    /// deploying further runtimes.
    pub optimization: Optimization,
    /// The profile the optimization was derived from.
    pub profile: Profile,
}

impl fmt::Debug for Deployed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Deployed")
            .field("runtime", &self.runtime)
            .field("report", &self.optimization.report)
            .finish()
    }
}

impl Deployed {
    /// A [`SelfHealer`] for this deployment: captures the chains and the
    /// current (guard-valid) binding state so the re-optimization loop can
    /// quarantine faulting chains and re-install them after backoff.
    pub fn self_healer(&self, config: QuarantineConfig) -> SelfHealer {
        SelfHealer::new(config, &self.optimization, self.runtime.registry())
    }
}

/// Runs the complete offline loop.
///
/// * `bindings` — the `(event, handler, order)` plan, applied identically
///   to the instrumented and the deployed runtime (identical plans yield
///   identical binding versions, which is what validates the guards).
/// * `install_natives` — called on **each** runtime to bind native
///   implementations; capture state via `Rc<RefCell<…>>` as usual.
/// * `drive` — the representative workload, executed once on the
///   instrumented runtime with full tracing enabled.
///
/// # Errors
///
/// Propagates binding, native-installation, and workload failures.
pub fn profile_and_optimize(
    module: &Module,
    bindings: &[(EventId, FuncId, i32)],
    config: RuntimeConfig,
    opts: &OptimizeOptions,
    mut install_natives: impl FnMut(&mut Runtime) -> Result<(), RuntimeError>,
    drive: impl FnOnce(&mut Runtime) -> Result<(), RuntimeError>,
) -> Result<Deployed, WorkflowError> {
    // Phase 1: instrumented run.
    let mut instrumented = Runtime::with_config(module.clone(), config);
    for &(e, f, o) in bindings {
        instrumented.bind(e, f, o)?;
    }
    install_natives(&mut instrumented)?;
    instrumented.set_trace_config(TraceConfig::full());
    drive(&mut instrumented)?;
    let profile = Profile::from_trace(&instrumented.take_trace(), opts.threshold);

    // Phase 2: optimize against the instrumented registry state.
    let optimization = optimize(module, instrumented.registry(), &profile, opts);

    // Phase 3: deploy.
    let mut runtime = Runtime::with_config(optimization.module.clone(), config);
    for &(e, f, o) in bindings {
        runtime.bind(e, f, o)?;
    }
    install_natives(&mut runtime)?;
    optimization.install_chains(&mut runtime);

    Ok(Deployed {
        runtime,
        optimization,
        profile,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdo_ir::{BinOp, FunctionBuilder, RaiseMode, Value};
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn one_call_workflow_produces_a_specialized_runtime() {
        let mut m = Module::new();
        let e = m.add_event("E");
        let g = m.add_global("n", Value::Int(0));
        let n_obs = m.add_native("observe");
        let mut b = FunctionBuilder::new("h", 0);
        let v = b.load_global(g);
        let one = b.const_int(1);
        let s = b.bin(BinOp::Add, v, one);
        b.store_global(g, s);
        let _ = b.call_native(n_obs, &[s]);
        b.ret(None);
        let h = m.add_function(b.finish());

        let observed = Rc::new(RefCell::new(0i64));
        let obs = Rc::clone(&observed);
        let deployed = profile_and_optimize(
            &m,
            &[(e, h, 0)],
            RuntimeConfig::default(),
            &OptimizeOptions::new(10),
            move |rt| {
                let inner = Rc::clone(&obs);
                rt.bind_native_by_name("observe", move |args| {
                    *inner.borrow_mut() = args[0].as_int().unwrap_or(0);
                    Ok(Value::Unit)
                })
            },
            |rt| {
                for _ in 0..20 {
                    rt.raise(e, RaiseMode::Sync, &[])?;
                }
                Ok(())
            },
        )
        .expect("workflow");

        assert_eq!(deployed.optimization.report.events.len(), 1);
        let mut rt = deployed.runtime;
        rt.raise(e, RaiseMode::Sync, &[]).unwrap();
        assert_eq!(rt.global(g), &Value::Int(1));
        assert_eq!(rt.cost.fastpath_hits, 1);
        assert_eq!(*observed.borrow(), 1, "deployed natives are live");
    }

    #[test]
    fn workflow_surfaces_drive_errors() {
        let mut m = Module::new();
        let e = m.add_event("E");
        let err = profile_and_optimize(
            &m,
            &[],
            RuntimeConfig::default(),
            &OptimizeOptions::new(1),
            |_| Ok(()),
            |rt| rt.raise(e, RaiseMode::Timed, &[]), // missing delay
        )
        .unwrap_err();
        assert!(matches!(err, WorkflowError::Runtime(_)));
        assert!(err.to_string().contains("delay"));
    }
}
