//! Optimization reports: what was merged, subsumed, guarded, and how code
//! size changed (the paper's §4.2 code-size measurement).

use crate::merge::MergeSkip;
use pdo_ir::{EventId, FuncId, Module};
use std::fmt;

/// Per-event outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventReport {
    /// The optimized event.
    pub event: EventId,
    /// Its super-handler.
    pub func: FuncId,
    /// Handlers merged into the super-handler.
    pub merged_handlers: usize,
    /// Synchronous raises subsumed into the body.
    pub subsumed_raises: usize,
    /// Instruction count of the original handler bodies (summed).
    pub instrs_original: usize,
    /// Instruction count of the optimized super-handler.
    pub instrs_optimized: usize,
}

/// Whole-run outcome.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OptReport {
    /// Successful per-event reports.
    pub events: Vec<EventReport>,
    /// Events skipped, with reasons (as display strings for serialization).
    pub skipped: Vec<(EventId, String)>,
    /// Module instruction count before optimization.
    pub module_instrs_before: usize,
    /// Module instruction count after (original + super-handlers).
    pub module_instrs_after: usize,
}

impl OptReport {
    /// Code-size growth in percent — the analogue of the paper's
    /// `objdump -d program | wc -l` comparison (§4.2 reports +1.3% for the
    /// video player and +1.1% for SecComm).
    pub fn code_growth_percent(&self) -> f64 {
        if self.module_instrs_before == 0 {
            return 0.0;
        }
        (self.module_instrs_after as f64 - self.module_instrs_before as f64) * 100.0
            / self.module_instrs_before as f64
    }

    /// Total handlers merged across all events.
    pub fn total_merged(&self) -> usize {
        self.events.iter().map(|e| e.merged_handlers).sum()
    }

    /// Total raises subsumed across all events.
    pub fn total_subsumed(&self) -> usize {
        self.events.iter().map(|e| e.subsumed_raises).sum()
    }

    /// Records a skip with its reason.
    pub fn skip(&mut self, event: EventId, reason: MergeSkip) {
        self.skipped.push((event, reason.to_string()));
    }

    /// Renders a human-readable summary, resolving names via `module`.
    pub fn render(&self, module: &Module) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "optimized {} event(s); merged {} handler(s); subsumed {} raise(s)",
            self.events.len(),
            self.total_merged(),
            self.total_subsumed()
        );
        for e in &self.events {
            let _ = writeln!(
                out,
                "  {:<20} {} handlers, {} subsumed, {} -> {} instrs",
                module.event_name(e.event),
                e.merged_handlers,
                e.subsumed_raises,
                e.instrs_original,
                e.instrs_optimized
            );
        }
        for (ev, why) in &self.skipped {
            let _ = writeln!(out, "  {:<20} skipped: {}", module.event_name(*ev), why);
        }
        let _ = writeln!(
            out,
            "code size: {} -> {} instrs ({:+.1}%)",
            self.module_instrs_before,
            self.module_instrs_after,
            self.code_growth_percent()
        );
        out
    }
}

impl fmt::Display for OptReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} events optimized, {} skipped, code {:+.1}%",
            self.events.len(),
            self.skipped.len(),
            self.code_growth_percent()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn growth_percentage() {
        let r = OptReport {
            module_instrs_before: 1000,
            module_instrs_after: 1013,
            ..Default::default()
        };
        assert!((r.code_growth_percent() - 1.3).abs() < 1e-9);
        let empty = OptReport::default();
        assert_eq!(empty.code_growth_percent(), 0.0);
    }

    #[test]
    fn totals_sum_events() {
        let r = OptReport {
            events: vec![
                EventReport {
                    event: EventId(0),
                    func: FuncId(0),
                    merged_handlers: 3,
                    subsumed_raises: 1,
                    instrs_original: 30,
                    instrs_optimized: 20,
                },
                EventReport {
                    event: EventId(1),
                    func: FuncId(1),
                    merged_handlers: 2,
                    subsumed_raises: 0,
                    instrs_original: 10,
                    instrs_optimized: 9,
                },
            ],
            ..Default::default()
        };
        assert_eq!(r.total_merged(), 5);
        assert_eq!(r.total_subsumed(), 1);
    }

    #[test]
    fn render_includes_names_and_skips() {
        let mut m = Module::new();
        m.add_event("Hot");
        m.add_event("Cold");
        let mut r = OptReport::default();
        r.events.push(EventReport {
            event: EventId(0),
            func: FuncId(0),
            merged_handlers: 2,
            subsumed_raises: 0,
            instrs_original: 12,
            instrs_optimized: 8,
        });
        r.skip(EventId(1), MergeSkip::UnstableSequence);
        let text = r.render(&m);
        assert!(text.contains("Hot"));
        assert!(text.contains("Cold"));
        assert!(text.contains("unstable"));
    }
}
