//! Textual disassembly of modules and functions.
//!
//! The format round-trips through [`crate::parse`]: `parse(print(m)) == m`
//! up to register numbering (the printer emits registers verbatim, so the
//! round-trip is exact). Symbol references use sigils: `@function`,
//! `%event`, `$global`, `!native`.

use crate::func::{Function, Module};
use crate::ids::{EventId, FuncId, GlobalId, NativeId};
use crate::instr::{Instr, Terminator};
use crate::value::Value;
use std::fmt;
use std::fmt::Write as _;

/// Escapes a value as assembler text.
pub fn value_text(v: &Value) -> String {
    match v {
        Value::Unit => "unit".to_string(),
        Value::Int(i) => format!("int {i}"),
        Value::Bool(b) => format!("bool {b}"),
        Value::Bytes(b) => {
            let mut s = String::from("bytes ");
            if b.is_empty() {
                s.push('-');
            } else {
                for byte in b.iter() {
                    let _ = write!(s, "{byte:02x}");
                }
            }
            s
        }
        Value::Str(v) => format!("str {v:?}"),
    }
}

/// Resolves symbol names when a module is available, raw ids otherwise.
struct Symbols<'m>(Option<&'m Module>);

impl<'m> Symbols<'m> {
    fn func(&self, id: FuncId) -> String {
        match self.0.and_then(|m| m.functions.get(id.index())) {
            Some(f) => format!("@{}", f.name),
            None => format!("@{}", id.0),
        }
    }
    fn event(&self, id: EventId) -> String {
        match self.0.and_then(|m| m.events.get(id.index())) {
            Some(e) => format!("%{}", e.name),
            None => format!("%{}", id.0),
        }
    }
    fn global(&self, id: GlobalId) -> String {
        match self.0.and_then(|m| m.globals.get(id.index())) {
            Some(g) => format!("${}", g.name),
            None => format!("${}", id.0),
        }
    }
    fn native(&self, id: NativeId) -> String {
        match self.0.and_then(|m| m.natives.get(id.index())) {
            Some(n) => format!("!{}", n.name),
            None => format!("!{}", id.0),
        }
    }
}

fn regs_text(regs: &[crate::ids::Reg]) -> String {
    regs.iter()
        .map(|r| r.to_string())
        .collect::<Vec<_>>()
        .join(", ")
}

fn instr_text(i: &Instr, sym: &Symbols<'_>) -> String {
    match i {
        Instr::Const { dst, value } => format!("{dst} = const {}", value_text(value)),
        Instr::Mov { dst, src } => format!("{dst} = mov {src}"),
        Instr::Bin { op, dst, lhs, rhs } => {
            format!("{dst} = {} {lhs}, {rhs}", op.mnemonic())
        }
        Instr::Un { op, dst, src } => format!("{dst} = {} {src}", op.mnemonic()),
        Instr::LoadGlobal { dst, global } => format!("{dst} = load {}", sym.global(*global)),
        Instr::StoreGlobal { global, src } => format!("store {}, {src}", sym.global(*global)),
        Instr::Lock { global } => format!("lock {}", sym.global(*global)),
        Instr::Unlock { global } => format!("unlock {}", sym.global(*global)),
        Instr::Call { dst, func, args } => {
            format!("{dst} = call {}({})", sym.func(*func), regs_text(args))
        }
        Instr::CallNative { dst, native, args } => {
            format!(
                "{dst} = native {}({})",
                sym.native(*native),
                regs_text(args)
            )
        }
        Instr::Raise { event, mode, args } => format!(
            "raise {} {}({})",
            mode.mnemonic(),
            sym.event(*event),
            regs_text(args)
        ),
        Instr::BytesNew { dst, len } => format!("{dst} = bnew {len}"),
        Instr::BytesLen { dst, bytes } => format!("{dst} = blen {bytes}"),
        Instr::BytesGet { dst, bytes, index } => format!("{dst} = bget {bytes}, {index}"),
        Instr::BytesSet {
            bytes,
            index,
            value,
        } => format!("bset {bytes}, {index}, {value}"),
        Instr::BytesConcat { dst, lhs, rhs } => format!("{dst} = bcat {lhs}, {rhs}"),
        Instr::BytesSlice {
            dst,
            bytes,
            start,
            end,
        } => format!("{dst} = bslice {bytes}, {start}, {end}"),
        // Superinstructions: the `.i` suffix marks an immediate operand.
        Instr::BinImm { op, dst, lhs, imm } => {
            format!("{dst} = {}.i {lhs}, {}", op.mnemonic(), value_text(imm))
        }
        Instr::GlobalFold { op, global, src } => {
            format!("gfold {} {}, {src}", op.mnemonic(), sym.global(*global))
        }
        Instr::GlobalFoldImm { op, global, imm } => format!(
            "gfold.i {} {}, {}",
            op.mnemonic(),
            sym.global(*global),
            value_text(imm)
        ),
        Instr::LockedStore { global, src } => format!("lstore {}, {src}", sym.global(*global)),
        Instr::LockedFoldImm { op, global, imm } => format!(
            "lfold.i {} {}, {}",
            op.mnemonic(),
            sym.global(*global),
            value_text(imm)
        ),
    }
}

fn term_text(t: &Terminator) -> String {
    match t {
        Terminator::Jump(b) => format!("jump {b}"),
        Terminator::Branch {
            cond,
            then_blk,
            else_blk,
        } => format!("br {cond}, {then_blk}, {else_blk}"),
        Terminator::Ret(Some(r)) => format!("ret {r}"),
        Terminator::Ret(None) => "ret".to_string(),
    }
}

/// Renders a function. If `module` is provided, symbol references print as
/// names; otherwise as raw ids.
pub fn print_function(f: &Function, module: Option<&Module>) -> String {
    let sym = Symbols(module);
    let mut out = String::new();
    let _ = writeln!(out, "func @{}({}) {{", f.name, f.params);
    for (bid, block) in f.iter_blocks() {
        let _ = writeln!(out, "{bid}:");
        for instr in &block.instrs {
            let _ = writeln!(out, "  {}", instr_text(instr, &sym));
        }
        let _ = writeln!(out, "  {}", term_text(&block.term));
    }
    out.push_str("}\n");
    out
}

/// Renders a whole module: declarations first, then every function.
pub fn print_module(m: &Module) -> String {
    let mut out = String::new();
    for e in &m.events {
        let _ = writeln!(out, "event {}", e.name);
    }
    for g in &m.globals {
        let _ = writeln!(out, "global {} = {}", g.name, value_text(&g.init));
    }
    for n in &m.natives {
        let _ = writeln!(out, "native {}", n.name);
    }
    if !(m.events.is_empty() && m.globals.is_empty() && m.natives.is_empty()) {
        out.push('\n');
    }
    for f in &m.functions {
        out.push_str(&print_function(f, Some(m)));
        out.push('\n');
    }
    out
}

impl fmt::Display for Module {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&print_module(self))
    }
}

impl fmt::Display for Function {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&print_function(self, None))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::instr::{BinOp, RaiseMode};

    #[test]
    fn prints_symbols_with_module() {
        let mut m = Module::new();
        let e = m.add_event("Ping");
        let g = m.add_global("seq", Value::Int(0));
        let n = m.add_native("work");
        let mut b = FunctionBuilder::new("h", 1);
        let v = b.load_global(g);
        let s = b.bin(BinOp::Add, v, b.param(0));
        b.store_global(g, s);
        let _ = b.call_native(n, &[s]);
        b.raise(e, RaiseMode::Sync, &[s]);
        b.ret(None);
        m.add_function(b.finish());

        let text = print_module(&m);
        assert!(text.contains("event Ping"));
        assert!(text.contains("global seq = int 0"));
        assert!(text.contains("native work"));
        assert!(text.contains("raise sync %Ping(r2)"));
        assert!(text.contains("r1 = load $seq"));
        assert!(text.contains("= native !work(r2)"));
    }

    #[test]
    fn prints_raw_ids_without_module() {
        let mut b = FunctionBuilder::new("h", 0);
        let r = b.call(FuncId(3), &[]);
        b.ret(Some(r));
        let f = b.finish();
        let text = print_function(&f, None);
        assert!(text.contains("call @3()"), "got: {text}");
    }

    #[test]
    fn value_text_forms() {
        assert_eq!(value_text(&Value::Unit), "unit");
        assert_eq!(value_text(&Value::Int(-3)), "int -3");
        assert_eq!(value_text(&Value::Bool(true)), "bool true");
        assert_eq!(value_text(&Value::bytes(vec![0xAB, 0x01])), "bytes ab01");
        assert_eq!(value_text(&Value::bytes(vec![])), "bytes -");
        assert_eq!(value_text(&Value::str("hi")), "str \"hi\"");
    }
}
