//! Typed indices used throughout the IR.
//!
//! Every entity (register, basic block, function, event, global, native) is
//! referenced by a small newtype index ([C-NEWTYPE]); this keeps the IR
//! compact and makes it impossible to confuse, say, an event id with a
//! function id at compile time.

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $repr:ty, $prefix:expr) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash,
        )]
        pub struct $name(pub $repr);

        impl $name {
            /// Returns the raw index.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Creates an id from a raw index.
            ///
            /// # Panics
            ///
            /// Panics if `index` does not fit in the id's representation.
            #[inline]
            pub fn from_index(index: usize) -> Self {
                Self(<$repr>::try_from(index).expect("id index out of range"))
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$repr> for $name {
            fn from(raw: $repr) -> Self {
                Self(raw)
            }
        }
    };
}

id_type!(
    /// A virtual register within one function. Parameters occupy `r0..rN`.
    Reg,
    u16,
    "r"
);
id_type!(
    /// A basic block within one function. Block 0 is the entry block.
    BlockId,
    u32,
    "b"
);
id_type!(
    /// A function in a [`crate::Module`].
    FuncId,
    u32,
    "f"
);
id_type!(
    /// An event declared in a [`crate::Module`]. Bindings from events to
    /// handler functions live in the event runtime, not in the IR.
    EventId,
    u32,
    "e"
);
id_type!(
    /// A mutable global cell (program state shared between handlers).
    GlobalId,
    u32,
    "g"
);
id_type!(
    /// A native (Rust) function slot. The IR only declares the slot; the
    /// event runtime binds the actual closure.
    NativeId,
    u32,
    "n"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_index() {
        let r = Reg::from_index(7);
        assert_eq!(r.index(), 7);
        assert_eq!(r, Reg(7));
    }

    #[test]
    fn display_uses_prefix() {
        assert_eq!(Reg(3).to_string(), "r3");
        assert_eq!(BlockId(0).to_string(), "b0");
        assert_eq!(FuncId(1).to_string(), "f1");
        assert_eq!(EventId(2).to_string(), "e2");
        assert_eq!(GlobalId(4).to_string(), "g4");
        assert_eq!(NativeId(5).to_string(), "n5");
    }

    #[test]
    #[should_panic(expected = "id index out of range")]
    fn from_index_overflow_panics() {
        let _ = Reg::from_index(usize::from(u16::MAX) + 1);
    }

    #[test]
    fn ordering_follows_raw() {
        assert!(Reg(1) < Reg(2));
        assert!(BlockId(0) < BlockId(10));
    }
}
