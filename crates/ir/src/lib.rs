//! # pdo-ir — handler IR for profile-directed event optimization
//!
//! This crate defines the small register-based intermediate representation in
//! which event *handlers* are expressed, together with an interpreter, a
//! verifier, a textual assembler/disassembler, and a builder API.
//!
//! The IR is the substitution this reproduction makes for the PLDI 2002
//! paper's C sources: the original work hand-specialized C handler code after
//! profiling; here handlers are IR functions that the `pdo-passes` and
//! `pdo` crates can merge, inline, and optimize automatically. Payload work
//! (cryptography, codec work, I/O) stays in native Rust and is invoked from
//! the IR through a [`NativeId`] table, exactly as the paper's handlers call
//! into library code.
//!
//! ## Quick tour
//!
//! ```
//! use pdo_ir::{Module, FunctionBuilder, Value, BinOp};
//! use pdo_ir::interp::{BasicEnv, call};
//!
//! let mut module = Module::new();
//! let mut b = FunctionBuilder::new("add1", 1);
//! let one = b.const_value(Value::Int(1));
//! let out = b.bin(BinOp::Add, b.param(0), one);
//! b.ret(Some(out));
//! let f = module.add_function(b.finish());
//!
//! let mut env = BasicEnv::new(&module);
//! let r = call(&module, &mut env, f, &[Value::Int(41)]).unwrap();
//! assert_eq!(r, Value::Int(42));
//! ```
//!
//! The interpreter is parameterized over an [`interp::Env`] so that the event
//! runtime (crate `pdo-events`) can service [`Instr::Raise`] instructions by
//! recursively dispatching bound handlers, while unit tests can use the
//! self-contained [`interp::BasicEnv`].

pub mod builder;
pub mod cost;
pub mod display;
pub mod func;
pub mod ids;
pub mod instr;
pub mod interp;
pub mod parse;
pub mod value;
pub mod verify;

pub use builder::FunctionBuilder;
pub use cost::{CostCounter, Opcode, OpcodeProfile, OPCODE_COUNT};
pub use func::{Block, EventDecl, Function, GlobalDecl, Module, NativeDecl};
pub use ids::{BlockId, EventId, FuncId, GlobalId, NativeId, Reg};
pub use instr::{BinOp, Instr, RaiseMode, Terminator, UnOp};
pub use interp::{Env, ExecError};
pub use value::Value;
pub use verify::{verify_function, verify_module, VerifyError};
