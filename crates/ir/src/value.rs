//! Runtime values manipulated by handler code.

use std::fmt;
use std::sync::Arc;

/// A dynamically-typed runtime value.
///
/// Values are cheap to clone: byte buffers and strings are reference-counted.
/// Byte buffers use copy-on-write semantics (see [`Value::bytes_mut`]) so a
/// handler mutating a packet does not disturb other holders of the buffer.
#[derive(Debug, Clone, Default)]
pub enum Value {
    /// The unit value, produced by instructions without a meaningful result.
    #[default]
    Unit,
    /// A 64-bit signed integer.
    Int(i64),
    /// A boolean.
    Bool(bool),
    /// A shared byte buffer (packet payloads, keys, frames).
    Bytes(Arc<Vec<u8>>),
    /// A shared immutable string (names, diagnostic payloads).
    Str(Arc<str>),
}

impl Value {
    /// Builds a byte-buffer value from anything convertible to `Vec<u8>`.
    pub fn bytes(data: impl Into<Vec<u8>>) -> Self {
        Value::Bytes(Arc::new(data.into()))
    }

    /// Builds a string value.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Returns the integer payload, if this is an [`Value::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the boolean payload, if this is a [`Value::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns a view of the byte payload, if this is a [`Value::Bytes`].
    pub fn as_bytes(&self) -> Option<&[u8]> {
        match self {
            Value::Bytes(b) => Some(b.as_slice()),
            _ => None,
        }
    }

    /// Returns the string payload, if this is a [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Copy-on-write mutable access to a byte buffer.
    ///
    /// Returns `None` for non-byte values. If the buffer is shared, it is
    /// cloned first so the mutation is local to this value.
    pub fn bytes_mut(&mut self) -> Option<&mut Vec<u8>> {
        match self {
            Value::Bytes(b) => Some(Arc::make_mut(b)),
            _ => None,
        }
    }

    /// A short name for the value's type, used in error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Unit => "unit",
            Value::Int(_) => "int",
            Value::Bool(_) => "bool",
            Value::Bytes(_) => "bytes",
            Value::Str(_) => "str",
        }
    }

    /// True if the value is "truthy": used by conditional branches.
    /// Only booleans are accepted as branch conditions; this helper exists
    /// for diagnostics and tests.
    pub fn is_truthy(&self) -> bool {
        matches!(self, Value::Bool(true))
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Unit, Value::Unit) => true,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Bytes(a), Value::Bytes(b)) => a == b,
            (Value::Str(a), Value::Str(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        std::mem::discriminant(self).hash(state);
        match self {
            Value::Unit => {}
            Value::Int(i) => i.hash(state),
            Value::Bool(b) => b.hash(state),
            Value::Bytes(b) => b.hash(state),
            Value::Str(s) => s.hash(state),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<Vec<u8>> for Value {
    fn from(v: Vec<u8>) -> Self {
        Value::Bytes(Arc::new(v))
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Unit => write!(f, "unit"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Bytes(b) => {
                write!(f, "bytes[")?;
                for (i, byte) in b.iter().take(8).enumerate() {
                    if i > 0 {
                        write!(f, " ")?;
                    }
                    write!(f, "{byte:02x}")?;
                }
                if b.len() > 8 {
                    write!(f, " ..{}", b.len())?;
                }
                write!(f, "]")
            }
            Value::Str(s) => write!(f, "{s:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(5).as_int(), Some(5));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::bytes(vec![1, 2]).as_bytes(), Some(&[1u8, 2][..]));
        assert_eq!(Value::str("hi").as_str(), Some("hi"));
        assert_eq!(Value::Unit.as_int(), None);
    }

    #[test]
    fn bytes_copy_on_write() {
        let original = Value::bytes(vec![1, 2, 3]);
        let mut copy = original.clone();
        copy.bytes_mut().unwrap()[0] = 9;
        assert_eq!(original.as_bytes().unwrap(), &[1, 2, 3]);
        assert_eq!(copy.as_bytes().unwrap(), &[9, 2, 3]);
    }

    #[test]
    fn equality_is_structural() {
        assert_eq!(Value::bytes(vec![1]), Value::bytes(vec![1]));
        assert_ne!(Value::Int(1), Value::Bool(true));
        assert_eq!(Value::Unit, Value::Unit);
    }

    #[test]
    fn display_truncates_long_bytes() {
        let v = Value::bytes(vec![0u8; 20]);
        let s = v.to_string();
        assert!(s.contains("..20"), "display was {s}");
    }

    #[test]
    fn truthiness() {
        assert!(Value::Bool(true).is_truthy());
        assert!(!Value::Bool(false).is_truthy());
        assert!(!Value::Int(1).is_truthy());
    }
}
