//! The IR interpreter.
//!
//! Execution is parameterized over an [`Env`] that supplies global state,
//! native functions, and — crucially — the semantics of the `raise`
//! instruction. The event runtime in `pdo-events` implements [`Env`] so a
//! synchronous raise recursively dispatches bound handlers; the
//! self-contained [`BasicEnv`] here records raises for inspection, which is
//! what unit tests and the optimizer's equivalence checks need.

use crate::cost::{CostCounter, OpcodeProfile};
use crate::func::Module;
use crate::ids::{EventId, FuncId, GlobalId, NativeId};
use crate::instr::{EvalError, Instr, RaiseMode, Terminator};
use crate::value::Value;
use std::fmt;
use std::sync::Arc;

/// Maximum depth of nested IR `call` instructions within one entry call.
pub const MAX_CALL_DEPTH: usize = 256;

/// Execution failure.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// Arithmetic failure (type mismatch, division by zero).
    Eval(EvalError),
    /// A `call` referenced a function id outside the module.
    UnknownFunction(FuncId),
    /// A call passed the wrong number of arguments.
    BadArgCount {
        /// Function that was called.
        func: String,
        /// Parameters the function declares.
        expected: u16,
        /// Arguments the call site passed.
        got: usize,
    },
    /// A branch condition was not a boolean.
    BranchOnNonBool(String),
    /// A bytes instruction received a non-bytes or non-int operand.
    BytesTypeError(&'static str),
    /// Byte index/slice out of bounds.
    OutOfBounds {
        /// Offending index (or slice end).
        index: i64,
        /// Buffer length.
        len: usize,
    },
    /// A negative length/index where a non-negative value was required.
    NegativeSize(i64),
    /// The instruction budget was exhausted (guards against non-termination
    /// in generated code).
    OutOfFuel,
    /// Too many nested IR calls.
    DepthExceeded,
    /// A global id outside the environment's global store.
    GlobalOutOfRange(GlobalId),
    /// A native slot with no bound implementation.
    UnboundNative(NativeId),
    /// A native implementation failed.
    Native(String),
    /// The environment rejected a raise (e.g. unknown event).
    Raise(String),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Eval(e) => write!(f, "{e}"),
            ExecError::UnknownFunction(id) => write!(f, "unknown function {id}"),
            ExecError::BadArgCount {
                func,
                expected,
                got,
            } => write!(
                f,
                "function `{func}` expects {expected} arguments, got {got}"
            ),
            ExecError::BranchOnNonBool(t) => write!(f, "branch condition has type {t}"),
            ExecError::BytesTypeError(op) => write!(f, "type error in bytes operation `{op}`"),
            ExecError::OutOfBounds { index, len } => {
                write!(f, "byte index {index} out of bounds for length {len}")
            }
            ExecError::NegativeSize(n) => write!(f, "negative size or index {n}"),
            ExecError::OutOfFuel => write!(f, "instruction budget exhausted"),
            ExecError::DepthExceeded => write!(f, "call depth exceeded"),
            ExecError::GlobalOutOfRange(g) => write!(f, "global {g} out of range"),
            ExecError::UnboundNative(n) => write!(f, "native slot {n} has no implementation"),
            ExecError::Native(msg) => write!(f, "native call failed: {msg}"),
            ExecError::Raise(msg) => write!(f, "raise failed: {msg}"),
        }
    }
}

impl std::error::Error for ExecError {}

impl From<EvalError> for ExecError {
    fn from(e: EvalError) -> Self {
        ExecError::Eval(e)
    }
}

/// The execution environment: global state, natives, raise semantics, and
/// cost accounting.
pub trait Env {
    /// Reads a global cell.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::GlobalOutOfRange`] for unknown globals.
    fn load_global(&mut self, global: GlobalId) -> Result<Value, ExecError>;

    /// Writes a global cell.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::GlobalOutOfRange`] for unknown globals.
    fn store_global(&mut self, global: GlobalId, value: Value) -> Result<(), ExecError>;

    /// Acquires the state lock guarding `global`.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::GlobalOutOfRange`] for unknown globals.
    fn lock(&mut self, global: GlobalId) -> Result<(), ExecError>;

    /// Releases the state lock guarding `global`.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::GlobalOutOfRange`] for unknown globals.
    fn unlock(&mut self, global: GlobalId) -> Result<(), ExecError>;

    /// Invokes a native function slot.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::UnboundNative`] for empty slots and
    /// [`ExecError::Native`] when the implementation fails.
    fn call_native(&mut self, native: NativeId, args: &[Value]) -> Result<Value, ExecError>;

    /// Services a `raise` instruction.
    ///
    /// # Errors
    ///
    /// Implementations return [`ExecError::Raise`] for unknown events or
    /// propagate handler failures.
    fn raise(
        &mut self,
        module: &Module,
        event: EventId,
        mode: RaiseMode,
        args: &[Value],
    ) -> Result<(), ExecError>;

    /// The cost counters to charge execution to.
    fn cost(&mut self) -> &mut CostCounter;

    /// Remaining instruction budget, if the environment enforces one.
    /// Implementations returning `Some` have the budget decremented once per
    /// executed instruction; execution fails with [`ExecError::OutOfFuel`]
    /// when it reaches zero.
    fn fuel(&mut self) -> Option<&mut u64> {
        None
    }

    /// The opcode/adjacent-pair frequency profile to record into, if any.
    ///
    /// When `Some`, the interpreter records every executed instruction's
    /// [`crate::cost::Opcode`] tag (and the pair it forms with its
    /// predecessor in the same straight-line run). The default `None`
    /// monomorphizes the recording away entirely, so environments that never
    /// profile pay nothing.
    fn opcode_profile(&mut self) -> Option<&mut OpcodeProfile> {
        None
    }
}

/// Calls IR function `func` with `args` under environment `env`.
///
/// This is the single entry point the event runtime uses to run handlers.
///
/// # Errors
///
/// Propagates any [`ExecError`] raised during execution.
pub fn call<E: Env + ?Sized>(
    module: &Module,
    env: &mut E,
    func: FuncId,
    args: &[Value],
) -> Result<Value, ExecError> {
    call_at_depth(module, env, func, args, 0)
}

fn call_at_depth<E: Env + ?Sized>(
    module: &Module,
    env: &mut E,
    func: FuncId,
    args: &[Value],
    depth: usize,
) -> Result<Value, ExecError> {
    if depth > MAX_CALL_DEPTH {
        return Err(ExecError::DepthExceeded);
    }
    let f = module
        .functions
        .get(func.index())
        .ok_or(ExecError::UnknownFunction(func))?;
    if args.len() != usize::from(f.params) {
        return Err(ExecError::BadArgCount {
            func: f.name.clone(),
            expected: f.params,
            got: args.len(),
        });
    }
    let mut regs: Vec<Value> = vec![Value::Unit; usize::from(f.reg_count)];
    regs[..args.len()].clone_from_slice(args);

    // A fresh function body starts a fresh pair chain: pairs never span a
    // call boundary the fusion pass could not rewrite.
    if let Some(p) = env.opcode_profile() {
        p.break_chain();
    }

    let mut block = 0usize;
    loop {
        let b = &f.blocks[block];
        for instr in &b.instrs {
            charge(env)?;
            if let Some(p) = env.opcode_profile() {
                p.record(instr.opcode());
            }
            // Direct calls recurse from this frame rather than through
            // `step`, keeping `step`'s many-armed frame (every arm's locals
            // are allocated up front in unoptimized builds) off the
            // recursion path.
            if let Instr::Call { dst, func, args } = instr {
                env.cost().calls += 1;
                let argv: Vec<Value> = args.iter().map(|r| regs[r.index()].clone()).collect();
                regs[dst.index()] = call_at_depth(module, env, *func, &argv, depth + 1)?;
            } else {
                step(module, env, &mut regs, instr, depth)?;
            }
            // Nested execution (callee bodies, sync-dispatched handlers)
            // recorded in between; don't pair across the return.
            if matches!(
                instr,
                Instr::Call { .. } | Instr::CallNative { .. } | Instr::Raise { .. }
            ) {
                if let Some(p) = env.opcode_profile() {
                    p.break_chain();
                }
            }
        }
        charge(env)?;
        if let Some(p) = env.opcode_profile() {
            p.break_chain();
        }
        match &b.term {
            Terminator::Jump(t) => block = t.index(),
            Terminator::Branch {
                cond,
                then_blk,
                else_blk,
            } => {
                let c = &regs[cond.index()];
                match c {
                    Value::Bool(true) => block = then_blk.index(),
                    Value::Bool(false) => block = else_blk.index(),
                    other => return Err(ExecError::BranchOnNonBool(other.type_name().into())),
                }
            }
            Terminator::Ret(v) => {
                return Ok(match v {
                    Some(r) => regs[r.index()].clone(),
                    None => Value::Unit,
                });
            }
        }
    }
}

#[inline]
fn charge<E: Env + ?Sized>(env: &mut E) -> Result<(), ExecError> {
    env.cost().instrs += 1;
    if let Some(fuel) = env.fuel() {
        if *fuel == 0 {
            return Err(out_of_fuel());
        }
        *fuel -= 1;
    }
    Ok(())
}

// Error construction lives behind `#[cold]` helpers so the hot dispatch arms
// stay branch-predictable and small.
#[cold]
#[inline(never)]
fn out_of_fuel() -> ExecError {
    ExecError::OutOfFuel
}

#[cold]
#[inline(never)]
fn bytes_type_error(op: &'static str) -> ExecError {
    ExecError::BytesTypeError(op)
}

#[cold]
#[inline(never)]
fn out_of_bounds(index: i64, len: usize) -> ExecError {
    ExecError::OutOfBounds { index, len }
}

#[cold]
#[inline(never)]
fn negative_size(n: i64) -> ExecError {
    ExecError::NegativeSize(n)
}

fn index_of(v: &Value, len: usize, op: &'static str) -> Result<usize, ExecError> {
    let i = match v.as_int() {
        Some(i) => i,
        None => return Err(bytes_type_error(op)),
    };
    if i < 0 {
        return Err(negative_size(i));
    }
    let i = i as usize;
    if i >= len {
        return Err(out_of_bounds(i as i64, len));
    }
    Ok(i)
}

fn step<E: Env + ?Sized>(
    module: &Module,
    env: &mut E,
    regs: &mut [Value],
    instr: &Instr,
    depth: usize,
) -> Result<(), ExecError> {
    // Arms are ordered by measured opcode frequency on the video/SecComm/X
    // inner loops (const/bin/load/store and the fused forms dominate);
    // rare and failure-prone arms sit at the bottom with their error
    // construction split into `#[cold]` helpers.
    match instr {
        Instr::Const { dst, value } => regs[dst.index()] = value.clone(),
        Instr::Bin { op, dst, lhs, rhs } => {
            regs[dst.index()] = op.eval(&regs[lhs.index()], &regs[rhs.index()])?;
        }
        // Fused Const+Bin. The interpreter loop pre-charged the `Const`
        // constituent; the immediate rides in the instruction, so the fused
        // form skips one dispatch and all constant register traffic.
        Instr::BinImm { op, dst, lhs, imm } => {
            charge(env)?; // Bin
            regs[dst.index()] = op.eval(&regs[lhs.index()], imm)?;
        }
        Instr::Mov { dst, src } => regs[dst.index()] = regs[src.index()].clone(),
        Instr::LoadGlobal { dst, global } => {
            regs[dst.index()] = env.load_global(*global)?;
        }
        Instr::StoreGlobal { global, src } => {
            let v = regs[src.index()].clone();
            env.store_global(*global, v)?;
        }
        // Fused read-modify-write and critical-section forms live in their
        // own functions (below) so their temporaries don't enlarge this
        // frame — `step` sits on the recursive `Call` path, where debug
        // builds allocate every arm's locals up front.
        Instr::LockedFoldImm { op, global, imm } => {
            step_locked_fold_imm(env, *op, *global, imm)?;
        }
        Instr::GlobalFoldImm { op, global, imm } => {
            step_global_fold_imm(env, *op, *global, imm)?;
        }
        Instr::GlobalFold { op, global, src } => {
            step_global_fold(env, *op, *global, &regs[src.index()])?;
        }
        Instr::LockedStore { global, src } => {
            step_locked_store(env, *global, &regs[src.index()])?;
        }
        Instr::Un { op, dst, src } => {
            regs[dst.index()] = op.eval(&regs[src.index()])?;
        }
        Instr::Lock { global } => {
            env.cost().lock_ops += 1;
            env.lock(*global)?;
        }
        Instr::Unlock { global } => {
            env.cost().lock_ops += 1;
            env.unlock(*global)?;
        }
        Instr::Call { dst, func, args } => {
            env.cost().calls += 1;
            let argv: Vec<Value> = args.iter().map(|r| regs[r.index()].clone()).collect();
            regs[dst.index()] = call_at_depth(module, env, *func, &argv, depth + 1)?;
        }
        Instr::CallNative { dst, native, args } => {
            env.cost().native_calls += 1;
            let argv: Vec<Value> = args.iter().map(|r| regs[r.index()].clone()).collect();
            regs[dst.index()] = env.call_native(*native, &argv)?;
        }
        Instr::Raise { event, mode, args } => {
            match mode {
                RaiseMode::Sync => env.cost().raises_sync += 1,
                RaiseMode::Async | RaiseMode::Timed => env.cost().raises_async += 1,
            }
            let argv: Vec<Value> = args.iter().map(|r| regs[r.index()].clone()).collect();
            env.raise(module, *event, *mode, &argv)?;
        }
        Instr::BytesNew { dst, len } => {
            let n = regs[len.index()]
                .as_int()
                .ok_or_else(|| bytes_type_error("bnew"))?;
            if n < 0 {
                return Err(negative_size(n));
            }
            regs[dst.index()] = Value::Bytes(Arc::new(vec![0u8; n as usize]));
        }
        Instr::BytesLen { dst, bytes } => {
            let b = regs[bytes.index()]
                .as_bytes()
                .ok_or_else(|| bytes_type_error("blen"))?;
            regs[dst.index()] = Value::Int(b.len() as i64);
        }
        Instr::BytesGet { dst, bytes, index } => {
            let b = regs[bytes.index()]
                .as_bytes()
                .ok_or_else(|| bytes_type_error("bget"))?;
            let i = index_of(&regs[index.index()], b.len(), "bget")?;
            regs[dst.index()] = Value::Int(i64::from(b[i]));
        }
        Instr::BytesSet {
            bytes,
            index,
            value,
        } => {
            let v = regs[value.index()]
                .as_int()
                .ok_or_else(|| bytes_type_error("bset"))?;
            let idx = regs[index.index()].clone();
            let buf = regs[bytes.index()]
                .bytes_mut()
                .ok_or_else(|| bytes_type_error("bset"))?;
            let i = index_of(&idx, buf.len(), "bset")?;
            buf[i] = v as u8;
        }
        Instr::BytesConcat { dst, lhs, rhs } => {
            let a = regs[lhs.index()]
                .as_bytes()
                .ok_or_else(|| bytes_type_error("bcat"))?;
            let b = regs[rhs.index()]
                .as_bytes()
                .ok_or_else(|| bytes_type_error("bcat"))?;
            let mut out = Vec::with_capacity(a.len() + b.len());
            out.extend_from_slice(a);
            out.extend_from_slice(b);
            regs[dst.index()] = Value::Bytes(Arc::new(out));
        }
        Instr::BytesSlice {
            dst,
            bytes,
            start,
            end,
        } => {
            let b = regs[bytes.index()]
                .as_bytes()
                .ok_or_else(|| bytes_type_error("bslice"))?;
            let s = regs[start.index()]
                .as_int()
                .ok_or_else(|| bytes_type_error("bslice"))?;
            let e = regs[end.index()]
                .as_int()
                .ok_or_else(|| bytes_type_error("bslice"))?;
            if s < 0 || e < s {
                return Err(negative_size(s.min(e)));
            }
            if e as usize > b.len() {
                return Err(out_of_bounds(e, b.len()));
            }
            regs[dst.index()] = Value::Bytes(Arc::new(b[s as usize..e as usize].to_vec()));
        }
    }
    Ok(())
}

// Fused fast-path handlers. Each constituent of a superinstruction is
// charged as if it executed individually, so fuel exhaustion and faults
// interleave with effects exactly as before fusion (e.g. a mid-sequence
// OutOfFuel in `LockedFoldImm` leaves the lock held, just as the unfused
// program would). The first constituent's charge is paid by the interpreter
// loop before `step` is entered.
//
// The hot path pays the remaining constituents' charges in ONE batch,
// which is observationally exact as long as fuel cannot run out in the
// middle of the sequence: if a non-fuel fault fires mid-sequence, the cold
// refund path returns the charges of the constituents that never executed,
// restoring precisely the cost/fuel state the unfused sequence would show
// at that fault point. When fuel IS low enough to exhaust mid-sequence,
// the handlers fall back to a per-constituent replay that reproduces the
// exact exhaustion point and partial effects.

/// Pays `n` constituents' charges at once. Returns `false` (paying
/// nothing) when fuel could run out mid-sequence, in which case the caller
/// must replay charges per-constituent.
#[inline]
fn try_batch_charge<E: Env + ?Sized>(env: &mut E, n: u64) -> bool {
    if let Some(fuel) = env.fuel() {
        if *fuel < n {
            return false;
        }
        *fuel -= n;
    }
    env.cost().instrs += n;
    true
}

/// Returns the charges of the `n` constituents that never executed after a
/// mid-sequence fault on the batched fast path.
#[cold]
#[inline(never)]
fn refund_charges<E: Env + ?Sized>(env: &mut E, n: u64) {
    env.cost().instrs -= n;
    if let Some(fuel) = env.fuel() {
        *fuel += n;
    }
}

/// Fused `Lock`+`LoadGlobal`+`Const`+`Bin`+`StoreGlobal`+`Unlock`: the
/// locked counter-bump pattern that dominates the video/SecComm inner loops.
#[inline]
fn step_locked_fold_imm<E: Env + ?Sized>(
    env: &mut E,
    op: crate::instr::BinOp,
    global: GlobalId,
    imm: &Value,
) -> Result<(), ExecError> {
    if !try_batch_charge(env, 5) {
        return locked_fold_imm_exact(env, op, global, imm);
    }
    env.cost().lock_ops += 1;
    if let Err(e) = env.lock(global) {
        refund_charges(env, 5); // Load..Unlock never ran
        return Err(e);
    }
    let lhs = match env.load_global(global) {
        Ok(v) => v,
        Err(e) => {
            refund_charges(env, 4); // Const..Unlock never ran
            return Err(e);
        }
    };
    let v = match op.eval(&lhs, imm) {
        Ok(v) => v,
        Err(e) => {
            refund_charges(env, 2); // Store, Unlock never ran
            return Err(e.into());
        }
    };
    if let Err(e) = env.store_global(global, v) {
        refund_charges(env, 1); // Unlock never ran
        return Err(e);
    }
    env.cost().lock_ops += 1;
    env.unlock(global)
}

/// Exact per-constituent replay of [`step_locked_fold_imm`], used when
/// fuel may exhaust mid-sequence.
#[cold]
#[inline(never)]
fn locked_fold_imm_exact<E: Env + ?Sized>(
    env: &mut E,
    op: crate::instr::BinOp,
    global: GlobalId,
    imm: &Value,
) -> Result<(), ExecError> {
    env.cost().lock_ops += 1; // Lock (pre-charged by the loop)
    env.lock(global)?;
    charge(env)?; // Load
    let lhs = env.load_global(global)?;
    charge(env)?; // Const
    charge(env)?; // Bin
    let v = op.eval(&lhs, imm)?;
    charge(env)?; // Store
    env.store_global(global, v)?;
    charge(env)?; // Unlock
    env.cost().lock_ops += 1;
    env.unlock(global)
}

/// Fused `LoadGlobal`+`Const`+`Bin`+`StoreGlobal` read-modify-write.
#[inline]
fn step_global_fold_imm<E: Env + ?Sized>(
    env: &mut E,
    op: crate::instr::BinOp,
    global: GlobalId,
    imm: &Value,
) -> Result<(), ExecError> {
    if !try_batch_charge(env, 3) {
        return global_fold_imm_exact(env, op, global, imm);
    }
    let lhs = match env.load_global(global) {
        Ok(v) => v,
        Err(e) => {
            refund_charges(env, 3); // Const, Bin, Store never ran
            return Err(e);
        }
    };
    let v = match op.eval(&lhs, imm) {
        Ok(v) => v,
        Err(e) => {
            refund_charges(env, 1); // Store never ran
            return Err(e.into());
        }
    };
    env.store_global(global, v)
}

/// Exact per-constituent replay of [`step_global_fold_imm`].
#[cold]
#[inline(never)]
fn global_fold_imm_exact<E: Env + ?Sized>(
    env: &mut E,
    op: crate::instr::BinOp,
    global: GlobalId,
    imm: &Value,
) -> Result<(), ExecError> {
    let lhs = env.load_global(global)?; // Load (pre-charged)
    charge(env)?; // Const
    charge(env)?; // Bin
    let v = op.eval(&lhs, imm)?;
    charge(env)?; // Store
    env.store_global(global, v)
}

/// Fused `LoadGlobal`+`Bin`+`StoreGlobal` with a register operand.
#[inline]
fn step_global_fold<E: Env + ?Sized>(
    env: &mut E,
    op: crate::instr::BinOp,
    global: GlobalId,
    rhs: &Value,
) -> Result<(), ExecError> {
    if !try_batch_charge(env, 2) {
        return global_fold_exact(env, op, global, rhs);
    }
    let lhs = match env.load_global(global) {
        Ok(v) => v,
        Err(e) => {
            refund_charges(env, 2); // Bin, Store never ran
            return Err(e);
        }
    };
    let v = match op.eval(&lhs, rhs) {
        Ok(v) => v,
        Err(e) => {
            refund_charges(env, 1); // Store never ran
            return Err(e.into());
        }
    };
    env.store_global(global, v)
}

/// Exact per-constituent replay of [`step_global_fold`].
#[cold]
#[inline(never)]
fn global_fold_exact<E: Env + ?Sized>(
    env: &mut E,
    op: crate::instr::BinOp,
    global: GlobalId,
    rhs: &Value,
) -> Result<(), ExecError> {
    let lhs = env.load_global(global)?; // Load (pre-charged)
    charge(env)?; // Bin
    let v = op.eval(&lhs, rhs)?;
    charge(env)?; // Store
    env.store_global(global, v)
}

/// Fused `Lock`+`StoreGlobal`+`Unlock` single-store critical section.
#[inline]
fn step_locked_store<E: Env + ?Sized>(
    env: &mut E,
    global: GlobalId,
    src: &Value,
) -> Result<(), ExecError> {
    if !try_batch_charge(env, 2) {
        return locked_store_exact(env, global, src);
    }
    env.cost().lock_ops += 1;
    if let Err(e) = env.lock(global) {
        refund_charges(env, 2); // Store, Unlock never ran
        return Err(e);
    }
    if let Err(e) = env.store_global(global, src.clone()) {
        refund_charges(env, 1); // Unlock never ran
        return Err(e);
    }
    env.cost().lock_ops += 1;
    env.unlock(global)
}

/// Exact per-constituent replay of [`step_locked_store`].
#[cold]
#[inline(never)]
fn locked_store_exact<E: Env + ?Sized>(
    env: &mut E,
    global: GlobalId,
    src: &Value,
) -> Result<(), ExecError> {
    env.cost().lock_ops += 1; // Lock (pre-charged)
    env.lock(global)?;
    charge(env)?; // Store
    env.store_global(global, src.clone())?;
    charge(env)?; // Unlock
    env.cost().lock_ops += 1;
    env.unlock(global)
}

/// A boxed native implementation.
pub type NativeFn = Box<dyn FnMut(&[Value]) -> Result<Value, String> + Send>;

/// A self-contained [`Env`] for tests and standalone execution.
///
/// Globals are initialized from the module's declarations; raises are
/// *recorded* (not dispatched) in [`BasicEnv::raised`] so callers can assert
/// on them; locks are counted for balance checking.
pub struct BasicEnv {
    globals: Vec<Value>,
    lock_depths: Vec<u32>,
    natives: Vec<Option<NativeFn>>,
    /// Every raise executed, in order.
    pub raised: Vec<(EventId, RaiseMode, Vec<Value>)>,
    /// Cost counters charged by the interpreter.
    pub cost: CostCounter,
    /// Optional instruction budget.
    pub fuel: Option<u64>,
    /// Optional opcode/pair frequency profile (`None` = profiling off).
    pub profile: Option<Box<OpcodeProfile>>,
}

impl fmt::Debug for BasicEnv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BasicEnv")
            .field("globals", &self.globals)
            .field("raised", &self.raised.len())
            .field("cost", &self.cost)
            .finish()
    }
}

impl BasicEnv {
    /// Creates an environment whose globals mirror `module`'s declarations
    /// and whose native slots are all unbound.
    pub fn new(module: &Module) -> Self {
        BasicEnv {
            globals: module.globals.iter().map(|g| g.init.clone()).collect(),
            lock_depths: vec![0; module.globals.len()],
            natives: module.natives.iter().map(|_| None).collect(),
            raised: Vec::new(),
            cost: CostCounter::new(),
            fuel: None,
            profile: None,
        }
    }

    /// Turns opcode/pair profiling on (fresh counters).
    pub fn enable_profiling(&mut self) {
        self.profile = Some(Box::new(OpcodeProfile::new()));
    }

    /// Binds a native implementation to a slot.
    ///
    /// # Panics
    ///
    /// Panics if the slot id is out of range for the module this environment
    /// was built from.
    pub fn bind_native(
        &mut self,
        native: NativeId,
        f: impl FnMut(&[Value]) -> Result<Value, String> + Send + 'static,
    ) {
        self.natives[native.index()] = Some(Box::new(f));
    }

    /// Current value of a global.
    pub fn global(&self, g: GlobalId) -> &Value {
        &self.globals[g.index()]
    }

    /// Overwrites a global (test setup).
    pub fn set_global(&mut self, g: GlobalId, v: Value) {
        self.globals[g.index()] = v;
    }

    /// True when every lock acquired has been released.
    pub fn locks_balanced(&self) -> bool {
        self.lock_depths.iter().all(|&d| d == 0)
    }
}

impl Env for BasicEnv {
    fn load_global(&mut self, global: GlobalId) -> Result<Value, ExecError> {
        self.globals
            .get(global.index())
            .cloned()
            .ok_or(ExecError::GlobalOutOfRange(global))
    }

    fn store_global(&mut self, global: GlobalId, value: Value) -> Result<(), ExecError> {
        match self.globals.get_mut(global.index()) {
            Some(slot) => {
                *slot = value;
                Ok(())
            }
            None => Err(ExecError::GlobalOutOfRange(global)),
        }
    }

    fn lock(&mut self, global: GlobalId) -> Result<(), ExecError> {
        match self.lock_depths.get_mut(global.index()) {
            Some(d) => {
                *d += 1;
                Ok(())
            }
            None => Err(ExecError::GlobalOutOfRange(global)),
        }
    }

    fn unlock(&mut self, global: GlobalId) -> Result<(), ExecError> {
        match self.lock_depths.get_mut(global.index()) {
            Some(d) => {
                *d = d.saturating_sub(1);
                Ok(())
            }
            None => Err(ExecError::GlobalOutOfRange(global)),
        }
    }

    fn call_native(&mut self, native: NativeId, args: &[Value]) -> Result<Value, ExecError> {
        match self.natives.get_mut(native.index()) {
            Some(Some(f)) => f(args).map_err(ExecError::Native),
            Some(None) | None => Err(ExecError::UnboundNative(native)),
        }
    }

    fn raise(
        &mut self,
        _module: &Module,
        event: EventId,
        mode: RaiseMode,
        args: &[Value],
    ) -> Result<(), ExecError> {
        self.raised.push((event, mode, args.to_vec()));
        Ok(())
    }

    fn cost(&mut self) -> &mut CostCounter {
        &mut self.cost
    }

    fn fuel(&mut self) -> Option<&mut u64> {
        self.fuel.as_mut()
    }

    fn opcode_profile(&mut self) -> Option<&mut OpcodeProfile> {
        self.profile.as_deref_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::cost::Opcode;
    use crate::instr::BinOp;

    fn run(module: &Module, name: &str, args: &[Value]) -> Result<Value, ExecError> {
        let mut env = BasicEnv::new(module);
        let f = module.function_by_name(name).unwrap();
        call(module, &mut env, f, args)
    }

    #[test]
    fn arithmetic_and_return() {
        let mut m = Module::new();
        let mut b = FunctionBuilder::new("f", 2);
        let s = b.bin(BinOp::Add, b.param(0), b.param(1));
        let two = b.const_int(2);
        let p = b.bin(BinOp::Mul, s, two);
        b.ret(Some(p));
        m.add_function(b.finish());
        assert_eq!(
            run(&m, "f", &[Value::Int(3), Value::Int(4)]).unwrap(),
            Value::Int(14)
        );
    }

    #[test]
    fn branch_and_loop() {
        // sum 0..n via a loop.
        let mut m = Module::new();
        let mut b = FunctionBuilder::new("sum", 1);
        let head = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        let acc = b.const_int(0);
        let i = b.const_int(0);
        b.jump(head);

        b.switch_to(head);
        let done = b.bin(BinOp::Ge, i, b.param(0));
        b.branch(done, exit, body);

        b.switch_to(body);
        let acc2 = b.bin(BinOp::Add, acc, i);
        b.push(Instr::Mov {
            dst: acc,
            src: acc2,
        });
        let one = b.const_int(1);
        let i2 = b.bin(BinOp::Add, i, one);
        b.push(Instr::Mov { dst: i, src: i2 });
        b.jump(head);

        b.switch_to(exit);
        b.ret(Some(acc));
        m.add_function(b.finish());

        assert_eq!(run(&m, "sum", &[Value::Int(5)]).unwrap(), Value::Int(10));
        assert_eq!(run(&m, "sum", &[Value::Int(0)]).unwrap(), Value::Int(0));
    }

    #[test]
    fn globals_persist_within_env() {
        let mut m = Module::new();
        let g = m.add_global("acc", Value::Int(100));
        let mut b = FunctionBuilder::new("bump", 0);
        b.lock(g);
        let v = b.load_global(g);
        let one = b.const_int(1);
        let v2 = b.bin(BinOp::Add, v, one);
        b.store_global(g, v2);
        b.unlock(g);
        b.ret(Some(v2));
        let f = m.add_function(b.finish());

        let mut env = BasicEnv::new(&m);
        assert_eq!(call(&m, &mut env, f, &[]).unwrap(), Value::Int(101));
        assert_eq!(call(&m, &mut env, f, &[]).unwrap(), Value::Int(102));
        assert_eq!(env.global(g), &Value::Int(102));
        assert!(env.locks_balanced());
        assert_eq!(env.cost.lock_ops, 4);
    }

    #[test]
    fn nested_direct_calls() {
        let mut m = Module::new();
        let mut inner = FunctionBuilder::new("inner", 1);
        let one = inner.const_int(1);
        let r = inner.bin(BinOp::Add, inner.param(0), one);
        inner.ret(Some(r));
        let inner_id = m.add_function(inner.finish());

        let mut outer = FunctionBuilder::new("outer", 1);
        let c1 = outer.call(inner_id, &[outer.param(0)]);
        let c2 = outer.call(inner_id, &[c1]);
        outer.ret(Some(c2));
        m.add_function(outer.finish());

        assert_eq!(run(&m, "outer", &[Value::Int(10)]).unwrap(), Value::Int(12));
    }

    #[test]
    fn raise_recorded_by_basic_env() {
        let mut m = Module::new();
        let e = m.add_event("Ping");
        let mut b = FunctionBuilder::new("f", 1);
        b.raise(e, RaiseMode::Sync, &[b.param(0)]);
        b.raise(e, RaiseMode::Async, &[]);
        b.ret(None);
        let f = m.add_function(b.finish());

        let mut env = BasicEnv::new(&m);
        call(&m, &mut env, f, &[Value::Int(7)]).unwrap();
        assert_eq!(env.raised.len(), 2);
        assert_eq!(env.raised[0], (e, RaiseMode::Sync, vec![Value::Int(7)]));
        assert_eq!(env.raised[1], (e, RaiseMode::Async, vec![]));
        assert_eq!(env.cost.raises_sync, 1);
        assert_eq!(env.cost.raises_async, 1);
    }

    #[test]
    fn native_calls() {
        let mut m = Module::new();
        let n = m.add_native("triple");
        let mut b = FunctionBuilder::new("f", 1);
        let r = b.call_native(n, &[b.param(0)]);
        b.ret(Some(r));
        let f = m.add_function(b.finish());

        let mut env = BasicEnv::new(&m);
        env.bind_native(n, |args| {
            Ok(Value::Int(args[0].as_int().ok_or("not int")? * 3))
        });
        assert_eq!(
            call(&m, &mut env, f, &[Value::Int(4)]).unwrap(),
            Value::Int(12)
        );

        let mut unbound = BasicEnv::new(&m);
        assert_eq!(
            call(&m, &mut unbound, f, &[Value::Int(4)]),
            Err(ExecError::UnboundNative(n))
        );
    }

    #[test]
    fn bytes_operations() {
        let mut m = Module::new();
        let mut b = FunctionBuilder::new("f", 0);
        let four = b.const_int(4);
        let buf = b.bytes_new(four);
        let zero = b.const_int(0);
        let val = b.const_int(0xAB);
        b.bytes_set(buf, zero, val);
        let got = b.bytes_get(buf, zero);
        let len = b.bytes_len(buf);
        let sum = b.bin(BinOp::Add, got, len);
        b.ret(Some(sum));
        m.add_function(b.finish());
        assert_eq!(run(&m, "f", &[]).unwrap(), Value::Int(0xAB + 4));
    }

    #[test]
    fn bytes_concat_and_slice() {
        let mut m = Module::new();
        let mut b = FunctionBuilder::new("f", 2);
        let cat = b.bytes_concat(b.param(0), b.param(1));
        let one = b.const_int(1);
        let three = b.const_int(3);
        let mid = b.bytes_slice(cat, one, three);
        b.ret(Some(mid));
        m.add_function(b.finish());
        let r = run(
            &m,
            "f",
            &[Value::bytes(vec![1, 2]), Value::bytes(vec![3, 4])],
        )
        .unwrap();
        assert_eq!(r, Value::bytes(vec![2, 3]));
    }

    #[test]
    fn bytes_out_of_bounds_faults() {
        let mut m = Module::new();
        let mut b = FunctionBuilder::new("f", 1);
        let two = b.const_int(2);
        let buf = b.bytes_new(two);
        let _ = b.bytes_get(buf, b.param(0));
        b.ret(None);
        m.add_function(b.finish());
        assert_eq!(
            run(&m, "f", &[Value::Int(5)]),
            Err(ExecError::OutOfBounds { index: 5, len: 2 })
        );
        assert_eq!(
            run(&m, "f", &[Value::Int(-1)]),
            Err(ExecError::NegativeSize(-1))
        );
    }

    #[test]
    fn fuel_limits_infinite_loops() {
        let mut m = Module::new();
        let mut b = FunctionBuilder::new("spin", 0);
        b.jump(BlockId(0));
        m.add_function(b.finish());
        let f = m.function_by_name("spin").unwrap();
        let mut env = BasicEnv::new(&m);
        env.fuel = Some(1000);
        assert_eq!(call(&m, &mut env, f, &[]), Err(ExecError::OutOfFuel));
    }

    use crate::ids::BlockId;

    #[test]
    fn arg_count_checked() {
        let mut m = Module::new();
        let mut b = FunctionBuilder::new("f", 2);
        b.ret(None);
        let f = m.add_function(b.finish());
        let mut env = BasicEnv::new(&m);
        let err = call(&m, &mut env, f, &[Value::Int(1)]).unwrap_err();
        assert!(matches!(
            err,
            ExecError::BadArgCount {
                expected: 2,
                got: 1,
                ..
            }
        ));
    }

    #[test]
    fn branch_on_non_bool_faults() {
        let mut m = Module::new();
        let mut b = FunctionBuilder::new("f", 1);
        let t = b.new_block();
        let e = b.new_block();
        b.branch(b.param(0), t, e);
        b.switch_to(t);
        b.ret(None);
        b.switch_to(e);
        b.ret(None);
        m.add_function(b.finish());
        assert!(matches!(
            run(&m, "f", &[Value::Int(1)]),
            Err(ExecError::BranchOnNonBool(_))
        ));
    }

    #[test]
    fn recursion_depth_limited() {
        let mut m = Module::new();
        // Reserve id 0 for the recursive function we are about to add.
        let mut b = FunctionBuilder::new("rec", 0);
        let r = b.call(FuncId(0), &[]);
        b.ret(Some(r));
        let f = m.add_function(b.finish());
        let mut env = BasicEnv::new(&m);
        assert_eq!(call(&m, &mut env, f, &[]), Err(ExecError::DepthExceeded));
    }

    #[test]
    fn instruction_cost_charged() {
        let mut m = Module::new();
        let mut b = FunctionBuilder::new("f", 0);
        let _ = b.const_int(1);
        let _ = b.const_int(2);
        b.ret(None);
        let f = m.add_function(b.finish());
        let mut env = BasicEnv::new(&m);
        call(&m, &mut env, f, &[]).unwrap();
        // 2 consts + 1 terminator.
        assert_eq!(env.cost.instrs, 3);
    }

    use crate::ids::{GlobalId as G, Reg};

    /// The unfused locked counter bump and its module-level twin with every
    /// body replaced by one `LockedFoldImm`.
    fn bump_modules() -> (Module, Module, FuncId) {
        let mut m = Module::new();
        let g = m.add_global("acc", Value::Int(0));
        let mut b = FunctionBuilder::new("bump", 0);
        b.lock(g);
        let v = b.load_global(g);
        let k = b.const_int(3);
        let s = b.bin(BinOp::Add, v, k);
        b.store_global(g, s);
        b.unlock(g);
        b.ret(None);
        let f = m.add_function(b.finish());

        let mut fused = m.clone();
        fused.functions[f.index()].blocks[0].instrs = vec![Instr::LockedFoldImm {
            op: BinOp::Add,
            global: g,
            imm: Value::Int(3),
        }];
        (m, fused, f)
    }

    #[test]
    fn fused_cost_equals_sum_of_constituents() {
        // Satellite: fuel/budget semantics are unchanged by fusion. The
        // fused run must charge exactly the same instrs and lock_ops as the
        // six-instruction sequence it replaces.
        let (plain, fused, f) = bump_modules();
        let mut e1 = BasicEnv::new(&plain);
        call(&plain, &mut e1, f, &[]).unwrap();
        let mut e2 = BasicEnv::new(&fused);
        call(&fused, &mut e2, f, &[]).unwrap();
        assert_eq!(e1.cost, e2.cost);
        assert_eq!(e1.cost.instrs, 7); // 6 instrs + terminator
        assert_eq!(e1.cost.lock_ops, 2);
        assert_eq!(e1.global(G(0)), e2.global(G(0)));
        assert_eq!(
            Instr::LockedFoldImm {
                op: BinOp::Add,
                global: G(0),
                imm: Value::Int(3)
            }
            .charge_units(),
            6
        );
    }

    #[test]
    fn fused_fuel_exhaustion_matches_unfused() {
        // Run both forms at every fuel level and require identical outcomes
        // AND identical partial effects (lock depth, global value).
        let (plain, fused, f) = bump_modules();
        for fuel in 0..10u64 {
            let mut e1 = BasicEnv::new(&plain);
            e1.fuel = Some(fuel);
            let r1 = call(&plain, &mut e1, f, &[]);
            let mut e2 = BasicEnv::new(&fused);
            e2.fuel = Some(fuel);
            let r2 = call(&fused, &mut e2, f, &[]);
            assert_eq!(r1, r2, "fuel={fuel}");
            assert_eq!(e1.cost, e2.cost, "fuel={fuel}");
            assert_eq!(e1.global(G(0)), e2.global(G(0)), "fuel={fuel}");
            assert_eq!(e1.locks_balanced(), e2.locks_balanced(), "fuel={fuel}");
        }
    }

    #[test]
    fn bin_imm_semantics_and_faults() {
        let mut m = Module::new();
        let mut b = FunctionBuilder::new("f", 1);
        b.ret(Some(b.param(0)));
        let f = m.add_function(b.finish());
        m.functions[f.index()].reg_count = 2;
        m.functions[f.index()].blocks[0].instrs = vec![Instr::BinImm {
            op: BinOp::Div,
            dst: Reg(1),
            lhs: Reg(0),
            imm: Value::Int(2),
        }];
        m.functions[f.index()].blocks[0].term = Terminator::Ret(Some(Reg(1)));
        let mut env = BasicEnv::new(&m);
        assert_eq!(
            call(&m, &mut env, f, &[Value::Int(9)]).unwrap(),
            Value::Int(4)
        );
        // instrs: fused BinImm charges 2 (Const + Bin) + terminator.
        assert_eq!(env.cost.instrs, 3);

        // Faults surface exactly like the unfused Bin.
        m.functions[f.index()].blocks[0].instrs = vec![Instr::BinImm {
            op: BinOp::Div,
            dst: Reg(1),
            lhs: Reg(0),
            imm: Value::Int(0),
        }];
        let mut env = BasicEnv::new(&m);
        assert_eq!(
            call(&m, &mut env, f, &[Value::Int(9)]),
            Err(ExecError::Eval(EvalError::DivisionByZero))
        );
    }

    #[test]
    fn global_fold_variants_semantics() {
        let mut m = Module::new();
        let g = m.add_global("acc", Value::Int(10));
        let mut b = FunctionBuilder::new("f", 1);
        b.ret(None);
        let f = m.add_function(b.finish());
        m.functions[f.index()].blocks[0].instrs = vec![
            Instr::GlobalFold {
                op: BinOp::Add,
                global: g,
                src: Reg(0),
            },
            Instr::GlobalFoldImm {
                op: BinOp::Mul,
                global: g,
                imm: Value::Int(31),
            },
            Instr::LockedStore {
                global: g,
                src: Reg(0),
            },
        ];
        let mut env = BasicEnv::new(&m);
        call(&m, &mut env, f, &[Value::Int(5)]).unwrap();
        // GlobalFold: 10+5=15; GlobalFoldImm: 15*31=465; LockedStore: 5.
        assert_eq!(env.global(g), &Value::Int(5));
        assert!(env.locks_balanced());
        assert_eq!(env.cost.lock_ops, 2);
        // 3 + 4 + 3 constituent charges + terminator.
        assert_eq!(env.cost.instrs, 11);
    }

    #[test]
    fn profile_records_opcodes_and_pairs() {
        let (plain, fused, f) = bump_modules();
        let mut env = BasicEnv::new(&plain);
        env.enable_profiling();
        call(&plain, &mut env, f, &[]).unwrap();
        let p = env.profile.as_ref().unwrap();
        assert_eq!(p.count(Opcode::Lock), 1);
        assert_eq!(p.count(Opcode::LoadGlobal), 1);
        assert_eq!(p.pair_count(Opcode::Lock, Opcode::LoadGlobal), 1);
        assert_eq!(p.pair_count(Opcode::Const, Opcode::Bin), 1);
        assert_eq!(p.total(), 6);
        assert_eq!(p.fused_total(), 0);

        let mut env = BasicEnv::new(&fused);
        env.enable_profiling();
        call(&fused, &mut env, f, &[]).unwrap();
        let p = env.profile.as_ref().unwrap();
        assert_eq!(p.count(Opcode::LockedFoldImm), 1);
        assert_eq!(p.fused_total(), 1);
    }

    #[test]
    fn profile_pairs_do_not_span_calls() {
        let mut m = Module::new();
        let mut inner = FunctionBuilder::new("inner", 0);
        let _ = inner.const_int(1);
        inner.ret(None);
        let inner_id = m.add_function(inner.finish());
        let mut outer = FunctionBuilder::new("outer", 0);
        let _ = outer.call(inner_id, &[]);
        let _ = outer.const_int(2);
        outer.ret(None);
        let f = m.add_function(outer.finish());

        let mut env = BasicEnv::new(&m);
        env.enable_profiling();
        call(&m, &mut env, f, &[]).unwrap();
        let p = env.profile.as_ref().unwrap();
        // Neither (Call, inner's Const) nor (inner's Const, outer's Const)
        // may be paired across the call boundary.
        assert_eq!(p.pair_count(Opcode::Call, Opcode::Const), 0);
        assert_eq!(p.pair_count(Opcode::Const, Opcode::Const), 0);
        assert_eq!(p.count(Opcode::Const), 2);
        assert_eq!(p.count(Opcode::Call), 1);
    }
}
