//! Structural verification of functions and modules.
//!
//! The optimizer runs the verifier after every transformation in debug
//! builds; it catches dangling block references, out-of-range registers,
//! and references to undeclared symbols.

use crate::func::{Function, Module};
use crate::ids::{BlockId, FuncId, Reg};
use crate::instr::{Instr, Terminator};
use std::fmt;

/// A structural defect found by verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// The function has no blocks.
    EmptyFunction { func: String },
    /// A register index is >= `reg_count`.
    RegisterOutOfRange {
        func: String,
        block: BlockId,
        reg: Reg,
    },
    /// A terminator targets a block that does not exist.
    BadBlockTarget {
        func: String,
        block: BlockId,
        target: BlockId,
    },
    /// `params` exceeds `reg_count`.
    ParamsExceedRegs { func: String },
    /// A call references a function id outside the module.
    UnknownFunction { func: String, callee: FuncId },
    /// A reference to an undeclared event.
    UnknownEvent {
        func: String,
        event: crate::ids::EventId,
    },
    /// A reference to an undeclared global.
    UnknownGlobal {
        func: String,
        global: crate::ids::GlobalId,
    },
    /// A reference to an undeclared native slot.
    UnknownNative {
        func: String,
        native: crate::ids::NativeId,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::EmptyFunction { func } => write!(f, "function `{func}` has no blocks"),
            VerifyError::RegisterOutOfRange { func, block, reg } => {
                write!(f, "function `{func}` {block}: register {reg} out of range")
            }
            VerifyError::BadBlockTarget {
                func,
                block,
                target,
            } => write!(
                f,
                "function `{func}` {block}: jump target {target} does not exist"
            ),
            VerifyError::ParamsExceedRegs { func } => {
                write!(f, "function `{func}`: params exceed register count")
            }
            VerifyError::UnknownFunction { func, callee } => {
                write!(f, "function `{func}` calls unknown function {callee}")
            }
            VerifyError::UnknownEvent { func, event } => {
                write!(f, "function `{func}` raises unknown event {event}")
            }
            VerifyError::UnknownGlobal { func, global } => {
                write!(f, "function `{func}` references unknown global {global}")
            }
            VerifyError::UnknownNative { func, native } => {
                write!(f, "function `{func}` calls unknown native {native}")
            }
        }
    }
}

impl std::error::Error for VerifyError {}

/// Verifies one function in isolation (no module-level symbol checks).
///
/// # Errors
///
/// Returns the first defect found.
pub fn verify_function(f: &Function) -> Result<(), VerifyError> {
    if f.blocks.is_empty() {
        return Err(VerifyError::EmptyFunction {
            func: f.name.clone(),
        });
    }
    if f.params > f.reg_count {
        return Err(VerifyError::ParamsExceedRegs {
            func: f.name.clone(),
        });
    }
    for (bid, block) in f.iter_blocks() {
        let check_reg = |r: Reg| -> Result<(), VerifyError> {
            if r.0 >= f.reg_count {
                Err(VerifyError::RegisterOutOfRange {
                    func: f.name.clone(),
                    block: bid,
                    reg: r,
                })
            } else {
                Ok(())
            }
        };
        for instr in &block.instrs {
            if let Some(d) = instr.def() {
                check_reg(d)?;
            }
            let mut bad = None;
            instr.for_each_use(|r| {
                if bad.is_none() && r.0 >= f.reg_count {
                    bad = Some(r);
                }
            });
            if let Some(r) = bad {
                return Err(VerifyError::RegisterOutOfRange {
                    func: f.name.clone(),
                    block: bid,
                    reg: r,
                });
            }
        }
        match &block.term {
            Terminator::Ret(Some(r)) => check_reg(*r)?,
            Terminator::Ret(None) => {}
            Terminator::Branch { cond, .. } => check_reg(*cond)?,
            Terminator::Jump(_) => {}
        }
        let mut bad_target = None;
        block.term.for_each_successor(|t| {
            if bad_target.is_none() && t.index() >= f.blocks.len() {
                bad_target = Some(t);
            }
        });
        if let Some(target) = bad_target {
            return Err(VerifyError::BadBlockTarget {
                func: f.name.clone(),
                block: bid,
                target,
            });
        }
    }
    Ok(())
}

/// Verifies every function in a module, including symbol references.
///
/// # Errors
///
/// Returns the first defect found.
pub fn verify_module(m: &Module) -> Result<(), VerifyError> {
    for f in &m.functions {
        verify_function(f)?;
        for block in &f.blocks {
            for instr in &block.instrs {
                match instr {
                    Instr::Call { func, .. } if func.index() >= m.functions.len() => {
                        return Err(VerifyError::UnknownFunction {
                            func: f.name.clone(),
                            callee: *func,
                        });
                    }
                    Instr::Raise { event, .. } if event.index() >= m.events.len() => {
                        return Err(VerifyError::UnknownEvent {
                            func: f.name.clone(),
                            event: *event,
                        });
                    }
                    Instr::LoadGlobal { global, .. }
                    | Instr::StoreGlobal { global, .. }
                    | Instr::Lock { global }
                    | Instr::Unlock { global }
                    | Instr::GlobalFold { global, .. }
                    | Instr::GlobalFoldImm { global, .. }
                    | Instr::LockedStore { global, .. }
                    | Instr::LockedFoldImm { global, .. }
                        if global.index() >= m.globals.len() =>
                    {
                        return Err(VerifyError::UnknownGlobal {
                            func: f.name.clone(),
                            global: *global,
                        });
                    }
                    Instr::CallNative { native, .. } if native.index() >= m.natives.len() => {
                        return Err(VerifyError::UnknownNative {
                            func: f.name.clone(),
                            native: *native,
                        });
                    }
                    _ => {}
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::func::Block;
    use crate::instr::{BinOp, RaiseMode};
    use crate::value::Value;

    #[test]
    fn valid_function_passes() {
        let mut b = FunctionBuilder::new("f", 1);
        let one = b.const_int(1);
        let r = b.bin(BinOp::Add, b.param(0), one);
        b.ret(Some(r));
        assert_eq!(verify_function(&b.finish()), Ok(()));
    }

    #[test]
    fn register_out_of_range_detected() {
        let f = Function {
            name: "f".into(),
            params: 0,
            reg_count: 1,
            blocks: vec![Block {
                instrs: vec![Instr::Mov {
                    dst: Reg(0),
                    src: Reg(5),
                }],
                term: Terminator::Ret(None),
            }],
        };
        assert!(matches!(
            verify_function(&f),
            Err(VerifyError::RegisterOutOfRange { reg: Reg(5), .. })
        ));
    }

    #[test]
    fn bad_block_target_detected() {
        let f = Function {
            name: "f".into(),
            params: 0,
            reg_count: 0,
            blocks: vec![Block::new(Terminator::Jump(BlockId(9)))],
        };
        assert!(matches!(
            verify_function(&f),
            Err(VerifyError::BadBlockTarget { .. })
        ));
    }

    #[test]
    fn empty_function_detected() {
        let f = Function {
            name: "f".into(),
            params: 0,
            reg_count: 0,
            blocks: vec![],
        };
        assert!(matches!(
            verify_function(&f),
            Err(VerifyError::EmptyFunction { .. })
        ));
    }

    #[test]
    fn module_symbol_checks() {
        let mut m = Module::new();
        let mut b = FunctionBuilder::new("f", 0);
        b.raise(crate::ids::EventId(3), RaiseMode::Sync, &[]);
        b.ret(None);
        m.add_function(b.finish());
        assert!(matches!(
            verify_module(&m),
            Err(VerifyError::UnknownEvent { .. })
        ));

        let mut m2 = Module::new();
        let e = m2.add_event("E");
        let g = m2.add_global("g", Value::Int(0));
        let n = m2.add_native("n");
        let mut b2 = FunctionBuilder::new("f", 0);
        let v = b2.load_global(g);
        let _ = b2.call_native(n, &[v]);
        b2.raise(e, RaiseMode::Async, &[v]);
        b2.ret(None);
        m2.add_function(b2.finish());
        assert_eq!(verify_module(&m2), Ok(()));
    }

    #[test]
    fn fused_unknown_global_detected() {
        // Every fused form that references a global must be range-checked.
        let forms = [
            Instr::GlobalFold {
                op: BinOp::Add,
                global: crate::ids::GlobalId(9),
                src: Reg(0),
            },
            Instr::GlobalFoldImm {
                op: BinOp::Add,
                global: crate::ids::GlobalId(9),
                imm: Value::Int(1),
            },
            Instr::LockedStore {
                global: crate::ids::GlobalId(9),
                src: Reg(0),
            },
            Instr::LockedFoldImm {
                op: BinOp::Add,
                global: crate::ids::GlobalId(9),
                imm: Value::Int(1),
            },
        ];
        for instr in forms {
            let mut m = Module::new();
            m.add_global("g", Value::Int(0));
            let f = Function {
                name: "f".into(),
                params: 1,
                reg_count: 1,
                blocks: vec![Block {
                    instrs: vec![instr.clone()],
                    term: Terminator::Ret(None),
                }],
            };
            m.functions.push(f);
            assert!(
                matches!(verify_module(&m), Err(VerifyError::UnknownGlobal { .. })),
                "{instr:?} escaped the global range check"
            );
        }
    }

    #[test]
    fn fused_register_out_of_range_detected() {
        // Register operands of fused forms flow through def/use checks.
        let f = Function {
            name: "f".into(),
            params: 0,
            reg_count: 1,
            blocks: vec![Block {
                instrs: vec![Instr::BinImm {
                    op: BinOp::Add,
                    dst: Reg(0),
                    lhs: Reg(7),
                    imm: Value::Int(1),
                }],
                term: Terminator::Ret(None),
            }],
        };
        assert!(matches!(
            verify_function(&f),
            Err(VerifyError::RegisterOutOfRange { reg: Reg(7), .. })
        ));
        let f = Function {
            name: "f".into(),
            params: 0,
            reg_count: 1,
            blocks: vec![Block {
                instrs: vec![Instr::LockedStore {
                    global: crate::ids::GlobalId(0),
                    src: Reg(4),
                }],
                term: Terminator::Ret(None),
            }],
        };
        assert!(matches!(
            verify_function(&f),
            Err(VerifyError::RegisterOutOfRange { reg: Reg(4), .. })
        ));
    }

    #[test]
    fn unknown_callee_detected() {
        let mut m = Module::new();
        let mut b = FunctionBuilder::new("f", 0);
        let _ = b.call(FuncId(7), &[]);
        b.ret(None);
        m.add_function(b.finish());
        assert!(matches!(
            verify_module(&m),
            Err(VerifyError::UnknownFunction { .. })
        ));
    }
}
