//! Functions, basic blocks, and modules.

use crate::ids::{BlockId, EventId, FuncId, GlobalId, NativeId, Reg};
use crate::instr::{Instr, Terminator};
use crate::value::Value;
use std::collections::HashMap;

/// A basic block: straight-line instructions ending in one [`Terminator`].
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// The instructions executed in order.
    pub instrs: Vec<Instr>,
    /// The control-flow exit of the block.
    pub term: Terminator,
}

impl Block {
    /// Creates an empty block with the given terminator.
    pub fn new(term: Terminator) -> Self {
        Block {
            instrs: Vec::new(),
            term,
        }
    }
}

/// An IR function. Parameters are passed in registers `r0..r<params>`;
/// block 0 is the entry block.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Symbolic name (unique within a module by convention, not enforced).
    pub name: String,
    /// Number of parameters; they arrive in `r0..r<params>`.
    pub params: u16,
    /// Total number of virtual registers used (including parameters).
    pub reg_count: u16,
    /// The body; `blocks[0]` is the entry.
    pub blocks: Vec<Block>,
}

impl Function {
    /// Total number of instructions across all blocks (the paper's
    /// `objdump | wc -l` code-size analogue).
    pub fn instr_count(&self) -> usize {
        self.blocks.iter().map(|b| b.instrs.len() + 1).sum()
    }

    /// Iterates over `(BlockId, &Block)` pairs.
    pub fn iter_blocks(&self) -> impl Iterator<Item = (BlockId, &Block)> {
        self.blocks
            .iter()
            .enumerate()
            .map(|(i, b)| (BlockId::from_index(i), b))
    }

    /// Allocates a fresh register.
    pub fn new_reg(&mut self) -> Reg {
        let r = Reg(self.reg_count);
        self.reg_count = self
            .reg_count
            .checked_add(1)
            .expect("register count overflow");
        r
    }

    /// Computes the predecessor lists of every block.
    pub fn predecessors(&self) -> Vec<Vec<BlockId>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for (bid, block) in self.iter_blocks() {
            block.term.for_each_successor(|s| {
                if s.index() < preds.len() {
                    preds[s.index()].push(bid);
                }
            });
        }
        preds
    }
}

/// A declared event. Bindings live in the runtime; the IR only knows names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventDecl {
    /// The event's symbolic name (e.g. `SegFromUser`).
    pub name: String,
}

/// A declared mutable global cell, with its initial value.
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalDecl {
    /// The global's symbolic name.
    pub name: String,
    /// Value before the first store.
    pub init: Value,
}

/// A declared native-function slot. The runtime binds the Rust closure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NativeDecl {
    /// The slot's symbolic name (e.g. `des_encrypt`).
    pub name: String,
}

/// A compilation unit: functions plus the symbols they reference.
///
/// A `Module` is the unit the profiler observes and the optimizer rewrites;
/// the event runtime executes one module at a time.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Module {
    /// All functions; [`FuncId`] indexes this vector.
    pub functions: Vec<Function>,
    /// All declared events; [`EventId`] indexes this vector.
    pub events: Vec<EventDecl>,
    /// All declared globals; [`GlobalId`] indexes this vector.
    pub globals: Vec<GlobalDecl>,
    /// All declared native slots; [`NativeId`] indexes this vector.
    pub natives: Vec<NativeDecl>,
}

impl Module {
    /// Creates an empty module.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a function and returns its id.
    pub fn add_function(&mut self, f: Function) -> FuncId {
        let id = FuncId::from_index(self.functions.len());
        self.functions.push(f);
        id
    }

    /// Declares an event and returns its id.
    pub fn add_event(&mut self, name: impl Into<String>) -> EventId {
        let id = EventId::from_index(self.events.len());
        self.events.push(EventDecl { name: name.into() });
        id
    }

    /// Declares a global with an initial value and returns its id.
    pub fn add_global(&mut self, name: impl Into<String>, init: Value) -> GlobalId {
        let id = GlobalId::from_index(self.globals.len());
        self.globals.push(GlobalDecl {
            name: name.into(),
            init,
        });
        id
    }

    /// Declares a native slot and returns its id.
    pub fn add_native(&mut self, name: impl Into<String>) -> NativeId {
        let id = NativeId::from_index(self.natives.len());
        self.natives.push(NativeDecl { name: name.into() });
        id
    }

    /// Returns the function with `id`.
    pub fn function(&self, id: FuncId) -> &Function {
        &self.functions[id.index()]
    }

    /// Returns a mutable reference to the function with `id`.
    pub fn function_mut(&mut self, id: FuncId) -> &mut Function {
        &mut self.functions[id.index()]
    }

    /// Looks up a function id by name (linear scan; intended for tests and
    /// program assembly, not hot paths).
    pub fn function_by_name(&self, name: &str) -> Option<FuncId> {
        self.functions
            .iter()
            .position(|f| f.name == name)
            .map(FuncId::from_index)
    }

    /// Looks up an event id by name.
    pub fn event_by_name(&self, name: &str) -> Option<EventId> {
        self.events
            .iter()
            .position(|e| e.name == name)
            .map(EventId::from_index)
    }

    /// Looks up a global id by name.
    pub fn global_by_name(&self, name: &str) -> Option<GlobalId> {
        self.globals
            .iter()
            .position(|g| g.name == name)
            .map(GlobalId::from_index)
    }

    /// Looks up a native slot id by name.
    pub fn native_by_name(&self, name: &str) -> Option<NativeId> {
        self.natives
            .iter()
            .position(|n| n.name == name)
            .map(NativeId::from_index)
    }

    /// The event's name, or a placeholder for out-of-range ids.
    pub fn event_name(&self, id: EventId) -> &str {
        self.events
            .get(id.index())
            .map(|e| e.name.as_str())
            .unwrap_or("<unknown-event>")
    }

    /// Total instruction count across all functions (code-size analogue of
    /// the paper's `objdump -d program | wc -l` measurement, §4.2).
    pub fn instr_count(&self) -> usize {
        self.functions.iter().map(Function::instr_count).sum()
    }

    /// A name → id map for all functions, for bulk lookups.
    pub fn function_index(&self) -> HashMap<&str, FuncId> {
        self.functions
            .iter()
            .enumerate()
            .map(|(i, f)| (f.name.as_str(), FuncId::from_index(i)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn module_declarations_assign_sequential_ids() {
        let mut m = Module::new();
        let e0 = m.add_event("A");
        let e1 = m.add_event("B");
        assert_eq!((e0, e1), (EventId(0), EventId(1)));
        assert_eq!(m.event_by_name("B"), Some(e1));
        assert_eq!(m.event_by_name("C"), None);
        assert_eq!(m.event_name(e0), "A");
        assert_eq!(m.event_name(EventId(99)), "<unknown-event>");
    }

    #[test]
    fn globals_and_natives() {
        let mut m = Module::new();
        let g = m.add_global("counter", Value::Int(0));
        let n = m.add_native("work");
        assert_eq!(m.global_by_name("counter"), Some(g));
        assert_eq!(m.native_by_name("work"), Some(n));
        assert_eq!(m.globals[g.index()].init, Value::Int(0));
    }

    #[test]
    fn instr_count_counts_terminators() {
        let f = Function {
            name: "f".into(),
            params: 0,
            reg_count: 1,
            blocks: vec![Block {
                instrs: vec![Instr::Const {
                    dst: Reg(0),
                    value: Value::Int(1),
                }],
                term: Terminator::Ret(Some(Reg(0))),
            }],
        };
        assert_eq!(f.instr_count(), 2);
        let mut m = Module::new();
        m.add_function(f.clone());
        m.add_function(f);
        assert_eq!(m.instr_count(), 4);
    }

    #[test]
    fn predecessors_computed() {
        let f = Function {
            name: "f".into(),
            params: 0,
            reg_count: 1,
            blocks: vec![
                Block::new(Terminator::Branch {
                    cond: Reg(0),
                    then_blk: BlockId(1),
                    else_blk: BlockId(2),
                }),
                Block::new(Terminator::Jump(BlockId(2))),
                Block::new(Terminator::Ret(None)),
            ],
        };
        let preds = f.predecessors();
        assert!(preds[0].is_empty());
        assert_eq!(preds[1], vec![BlockId(0)]);
        assert_eq!(preds[2], vec![BlockId(0), BlockId(1)]);
    }

    #[test]
    fn function_by_name_lookup() {
        let mut m = Module::new();
        let f = m.add_function(Function {
            name: "handler".into(),
            params: 1,
            reg_count: 1,
            blocks: vec![Block::new(Terminator::Ret(None))],
        });
        assert_eq!(m.function_by_name("handler"), Some(f));
        assert_eq!(m.function_index().get("handler"), Some(&f));
    }
}
