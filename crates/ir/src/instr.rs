//! Instructions and block terminators.

use crate::ids::{EventId, FuncId, GlobalId, NativeId, Reg};
use crate::value::Value;
use std::fmt;

/// Binary arithmetic / logical / comparison operators.
///
/// Arithmetic and bitwise operators apply to [`Value::Int`]; `And`/`Or` apply
/// to [`Value::Bool`]; the comparisons `Eq`/`Ne` apply to any pair of values
/// and the ordered comparisons to integers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Integer addition (wrapping).
    Add,
    /// Integer subtraction (wrapping).
    Sub,
    /// Integer multiplication (wrapping).
    Mul,
    /// Integer division. Fails on division by zero.
    Div,
    /// Integer remainder. Fails on division by zero.
    Rem,
    /// Boolean conjunction.
    And,
    /// Boolean disjunction.
    Or,
    /// Bitwise xor on integers.
    Xor,
    /// Bitwise and on integers.
    BitAnd,
    /// Bitwise or on integers.
    BitOr,
    /// Left shift (shift amount masked to 0..64).
    Shl,
    /// Arithmetic right shift (shift amount masked to 0..64).
    Shr,
    /// Structural equality on any two values.
    Eq,
    /// Structural inequality on any two values.
    Ne,
    /// Integer less-than.
    Lt,
    /// Integer less-or-equal.
    Le,
    /// Integer greater-than.
    Gt,
    /// Integer greater-or-equal.
    Ge,
}

impl BinOp {
    /// All operators, for exhaustive property tests.
    pub const ALL: [BinOp; 18] = [
        BinOp::Add,
        BinOp::Sub,
        BinOp::Mul,
        BinOp::Div,
        BinOp::Rem,
        BinOp::And,
        BinOp::Or,
        BinOp::Xor,
        BinOp::BitAnd,
        BinOp::BitOr,
        BinOp::Shl,
        BinOp::Shr,
        BinOp::Eq,
        BinOp::Ne,
        BinOp::Lt,
        BinOp::Le,
        BinOp::Gt,
        BinOp::Ge,
    ];

    /// The assembler mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::Div => "div",
            BinOp::Rem => "rem",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::BitAnd => "band",
            BinOp::BitOr => "bor",
            BinOp::Shl => "shl",
            BinOp::Shr => "shr",
            BinOp::Eq => "eq",
            BinOp::Ne => "ne",
            BinOp::Lt => "lt",
            BinOp::Le => "le",
            BinOp::Gt => "gt",
            BinOp::Ge => "ge",
        }
    }

    /// True if the operator is commutative, used by CSE value numbering.
    pub fn is_commutative(self) -> bool {
        matches!(
            self,
            BinOp::Add
                | BinOp::Mul
                | BinOp::And
                | BinOp::Or
                | BinOp::Xor
                | BinOp::BitAnd
                | BinOp::BitOr
                | BinOp::Eq
                | BinOp::Ne
        )
    }

    /// Evaluates the operator on constant operands.
    ///
    /// # Errors
    ///
    /// Returns an [`EvalError`] on type mismatch or division by zero; the
    /// interpreter converts this into an execution fault, while the constant
    /// folder simply declines to fold.
    pub fn eval(self, lhs: &Value, rhs: &Value) -> Result<Value, EvalError> {
        use BinOp::*;
        match self {
            Eq => return Ok(Value::Bool(lhs == rhs)),
            Ne => return Ok(Value::Bool(lhs != rhs)),
            And | Or => {
                let (a, b) = match (lhs, rhs) {
                    (Value::Bool(a), Value::Bool(b)) => (*a, *b),
                    _ => return Err(EvalError::TypeMismatch(self)),
                };
                return Ok(Value::Bool(if self == And { a && b } else { a || b }));
            }
            _ => {}
        }
        let (a, b) = match (lhs, rhs) {
            (Value::Int(a), Value::Int(b)) => (*a, *b),
            _ => return Err(EvalError::TypeMismatch(self)),
        };
        let v = match self {
            Add => Value::Int(a.wrapping_add(b)),
            Sub => Value::Int(a.wrapping_sub(b)),
            Mul => Value::Int(a.wrapping_mul(b)),
            Div => {
                if b == 0 {
                    return Err(EvalError::DivisionByZero);
                }
                Value::Int(a.wrapping_div(b))
            }
            Rem => {
                if b == 0 {
                    return Err(EvalError::DivisionByZero);
                }
                Value::Int(a.wrapping_rem(b))
            }
            Xor => Value::Int(a ^ b),
            BitAnd => Value::Int(a & b),
            BitOr => Value::Int(a | b),
            Shl => Value::Int(a.wrapping_shl(b as u32 & 63)),
            Shr => Value::Int(a.wrapping_shr(b as u32 & 63)),
            Lt => Value::Bool(a < b),
            Le => Value::Bool(a <= b),
            Gt => Value::Bool(a > b),
            Ge => Value::Bool(a >= b),
            Eq | Ne | And | Or => unreachable!("handled above"),
        };
        Ok(v)
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Integer negation.
    Neg,
    /// Boolean negation.
    Not,
    /// Bitwise complement on integers.
    BNot,
}

impl UnOp {
    /// All operators, for exhaustive property tests.
    pub const ALL: [UnOp; 3] = [UnOp::Neg, UnOp::Not, UnOp::BNot];

    /// The assembler mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            UnOp::Neg => "neg",
            UnOp::Not => "not",
            UnOp::BNot => "bnot",
        }
    }

    /// Evaluates the operator on a constant operand.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError::TypeMismatchUnary`] when the operand type does
    /// not match the operator.
    pub fn eval(self, v: &Value) -> Result<Value, EvalError> {
        match (self, v) {
            (UnOp::Neg, Value::Int(i)) => Ok(Value::Int(i.wrapping_neg())),
            (UnOp::Not, Value::Bool(b)) => Ok(Value::Bool(!b)),
            (UnOp::BNot, Value::Int(i)) => Ok(Value::Int(!i)),
            _ => Err(EvalError::TypeMismatchUnary(self)),
        }
    }
}

/// Failure of constant evaluation (also reused by the interpreter).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvalError {
    /// Operand types did not match a binary operator.
    TypeMismatch(BinOp),
    /// Operand type did not match a unary operator.
    TypeMismatchUnary(UnOp),
    /// Integer division or remainder by zero.
    DivisionByZero,
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::TypeMismatch(op) => {
                write!(f, "type mismatch for operator `{}`", op.mnemonic())
            }
            EvalError::TypeMismatchUnary(op) => {
                write!(f, "type mismatch for operator `{}`", op.mnemonic())
            }
            EvalError::DivisionByZero => write!(f, "division by zero"),
        }
    }
}

impl std::error::Error for EvalError {}

/// How an event is activated (paper §2.2).
///
/// Synchronous raises run all bound handlers to completion before the raiser
/// continues; asynchronous raises enqueue the event; timed raises enqueue it
/// with a virtual-clock delay.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RaiseMode {
    /// Handlers execute before the raise returns.
    Sync,
    /// Handlers execute later, from the event queue.
    Async,
    /// Handlers execute after a delay; the **first argument** of the raise is
    /// the delay in virtual nanoseconds.
    Timed,
}

impl RaiseMode {
    /// The assembler mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            RaiseMode::Sync => "sync",
            RaiseMode::Async => "async",
            RaiseMode::Timed => "timed",
        }
    }
}

impl fmt::Display for RaiseMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// One IR instruction.
///
/// All instructions read registers and (except stores, locks, and raises)
/// write a destination register.
#[derive(Debug, Clone, PartialEq)]
pub enum Instr {
    /// `dst = value`
    Const { dst: Reg, value: Value },
    /// `dst = src`
    Mov { dst: Reg, src: Reg },
    /// `dst = lhs <op> rhs`
    Bin {
        op: BinOp,
        dst: Reg,
        lhs: Reg,
        rhs: Reg,
    },
    /// `dst = <op> src`
    Un { op: UnOp, dst: Reg, src: Reg },
    /// `dst = globals[global]`
    LoadGlobal { dst: Reg, global: GlobalId },
    /// `globals[global] = src`
    StoreGlobal { global: GlobalId, src: Reg },
    /// Acquire the state lock guarding `global` (paper: "state maintenance
    /// (synchronization and locking) costs for global variables").
    Lock { global: GlobalId },
    /// Release the state lock guarding `global`.
    Unlock { global: GlobalId },
    /// Direct call of another IR function.
    Call {
        dst: Reg,
        func: FuncId,
        args: Vec<Reg>,
    },
    /// Call into a native (Rust) function slot.
    CallNative {
        dst: Reg,
        native: NativeId,
        args: Vec<Reg>,
    },
    /// Raise an event through the runtime. For [`RaiseMode::Timed`], the
    /// first argument is the delay in virtual nanoseconds.
    Raise {
        event: EventId,
        mode: RaiseMode,
        args: Vec<Reg>,
    },
    /// `dst = fresh zeroed byte buffer of length len`
    BytesNew { dst: Reg, len: Reg },
    /// `dst = len(bytes)`
    BytesLen { dst: Reg, bytes: Reg },
    /// `dst = bytes[index]` (as Int). Fails when out of bounds.
    BytesGet { dst: Reg, bytes: Reg, index: Reg },
    /// `bytes[index] = value & 0xff` (copy-on-write). Fails out of bounds.
    BytesSet { bytes: Reg, index: Reg, value: Reg },
    /// `dst = lhs ++ rhs`
    BytesConcat { dst: Reg, lhs: Reg, rhs: Reg },
    /// `dst = bytes[start..end]`. Fails when the range is invalid.
    BytesSlice {
        dst: Reg,
        bytes: Reg,
        start: Reg,
        end: Reg,
    },
    /// Superinstruction: `dst = lhs <op> imm` — a fused `Const`+`Bin` with
    /// the constant carried as an immediate operand (no register traffic).
    ///
    /// Produced by the profile-directed fusion pass; costs exactly as many
    /// abstract instructions as its two constituents.
    BinImm {
        op: BinOp,
        dst: Reg,
        lhs: Reg,
        imm: Value,
    },
    /// Superinstruction: `globals[global] = globals[global] <op> src` — a
    /// fused `LoadGlobal`+`Bin`+`StoreGlobal` read-modify-write.
    GlobalFold {
        op: BinOp,
        global: GlobalId,
        src: Reg,
    },
    /// Superinstruction: `globals[global] = globals[global] <op> imm` — a
    /// fused `LoadGlobal`+`Const`+`Bin`+`StoreGlobal` with an immediate.
    GlobalFoldImm {
        op: BinOp,
        global: GlobalId,
        imm: Value,
    },
    /// Superinstruction: `lock global; globals[global] = src; unlock global`
    /// — a fused single-store critical section.
    LockedStore { global: GlobalId, src: Reg },
    /// Superinstruction: the full locked counter-bump pattern
    /// `lock g; v = load g; c = const imm; d = v <op> c; store g, d;
    /// unlock g` collapsed into one locked read-modify-write with an
    /// immediate operand. This is the hottest sequence in the video and
    /// SecComm inner loops.
    LockedFoldImm {
        op: BinOp,
        global: GlobalId,
        imm: Value,
    },
}

impl Instr {
    /// The register written by this instruction, if any.
    pub fn def(&self) -> Option<Reg> {
        match self {
            Instr::Const { dst, .. }
            | Instr::Mov { dst, .. }
            | Instr::Bin { dst, .. }
            | Instr::Un { dst, .. }
            | Instr::LoadGlobal { dst, .. }
            | Instr::Call { dst, .. }
            | Instr::CallNative { dst, .. }
            | Instr::BytesNew { dst, .. }
            | Instr::BytesLen { dst, .. }
            | Instr::BytesGet { dst, .. }
            | Instr::BytesConcat { dst, .. }
            | Instr::BytesSlice { dst, .. }
            | Instr::BinImm { dst, .. } => Some(*dst),
            Instr::StoreGlobal { .. }
            | Instr::Lock { .. }
            | Instr::Unlock { .. }
            | Instr::Raise { .. }
            | Instr::BytesSet { .. }
            | Instr::GlobalFold { .. }
            | Instr::GlobalFoldImm { .. }
            | Instr::LockedStore { .. }
            | Instr::LockedFoldImm { .. } => None,
        }
    }

    /// Calls `f` for every register read by this instruction.
    pub fn for_each_use(&self, mut f: impl FnMut(Reg)) {
        match self {
            Instr::Const { .. }
            | Instr::LoadGlobal { .. }
            | Instr::Lock { .. }
            | Instr::Unlock { .. }
            | Instr::GlobalFoldImm { .. }
            | Instr::LockedFoldImm { .. } => {}
            Instr::Mov { src, .. } | Instr::Un { src, .. } => f(*src),
            Instr::Bin { lhs, rhs, .. } | Instr::BytesConcat { lhs, rhs, .. } => {
                f(*lhs);
                f(*rhs);
            }
            Instr::BinImm { lhs, .. } => f(*lhs),
            Instr::StoreGlobal { src, .. }
            | Instr::GlobalFold { src, .. }
            | Instr::LockedStore { src, .. } => f(*src),
            Instr::Call { args, .. }
            | Instr::CallNative { args, .. }
            | Instr::Raise { args, .. } => {
                for &a in args {
                    f(a);
                }
            }
            Instr::BytesNew { len, .. } => f(*len),
            Instr::BytesLen { bytes, .. } => f(*bytes),
            Instr::BytesGet { bytes, index, .. } => {
                f(*bytes);
                f(*index);
            }
            Instr::BytesSet {
                bytes,
                index,
                value,
            } => {
                f(*bytes);
                f(*index);
                f(*value);
            }
            Instr::BytesSlice {
                bytes, start, end, ..
            } => {
                f(*bytes);
                f(*start);
                f(*end);
            }
        }
    }

    /// Rewrites every register the instruction reads through `f`.
    pub fn map_uses(&mut self, mut f: impl FnMut(Reg) -> Reg) {
        match self {
            Instr::Const { .. }
            | Instr::LoadGlobal { .. }
            | Instr::Lock { .. }
            | Instr::Unlock { .. }
            | Instr::GlobalFoldImm { .. }
            | Instr::LockedFoldImm { .. } => {}
            Instr::Mov { src, .. } | Instr::Un { src, .. } => *src = f(*src),
            Instr::Bin { lhs, rhs, .. } | Instr::BytesConcat { lhs, rhs, .. } => {
                *lhs = f(*lhs);
                *rhs = f(*rhs);
            }
            Instr::BinImm { lhs, .. } => *lhs = f(*lhs),
            Instr::StoreGlobal { src, .. }
            | Instr::GlobalFold { src, .. }
            | Instr::LockedStore { src, .. } => *src = f(*src),
            Instr::Call { args, .. }
            | Instr::CallNative { args, .. }
            | Instr::Raise { args, .. } => {
                for a in args {
                    *a = f(*a);
                }
            }
            Instr::BytesNew { len, .. } => *len = f(*len),
            Instr::BytesLen { bytes, .. } => *bytes = f(*bytes),
            Instr::BytesGet { bytes, index, .. } => {
                *bytes = f(*bytes);
                *index = f(*index);
            }
            Instr::BytesSet {
                bytes,
                index,
                value,
            } => {
                *bytes = f(*bytes);
                *index = f(*index);
                *value = f(*value);
            }
            Instr::BytesSlice {
                bytes, start, end, ..
            } => {
                *bytes = f(*bytes);
                *start = f(*start);
                *end = f(*end);
            }
        }
    }

    /// Rewrites the destination register, if any, through `f`.
    pub fn map_def(&mut self, f: impl FnOnce(Reg) -> Reg) {
        match self {
            Instr::Const { dst, .. }
            | Instr::Mov { dst, .. }
            | Instr::Bin { dst, .. }
            | Instr::Un { dst, .. }
            | Instr::LoadGlobal { dst, .. }
            | Instr::Call { dst, .. }
            | Instr::CallNative { dst, .. }
            | Instr::BytesNew { dst, .. }
            | Instr::BytesLen { dst, .. }
            | Instr::BytesGet { dst, .. }
            | Instr::BytesConcat { dst, .. }
            | Instr::BytesSlice { dst, .. }
            | Instr::BinImm { dst, .. } => *dst = f(*dst),
            Instr::StoreGlobal { .. }
            | Instr::Lock { .. }
            | Instr::Unlock { .. }
            | Instr::Raise { .. }
            | Instr::BytesSet { .. }
            | Instr::GlobalFold { .. }
            | Instr::GlobalFoldImm { .. }
            | Instr::LockedStore { .. }
            | Instr::LockedFoldImm { .. } => {}
        }
    }

    /// True if removing this instruction (when its result is unused) changes
    /// program behaviour: stores, locks, calls, raises, and byte mutation
    /// are effectful; arithmetic that can fault (`Div`/`Rem`, byte indexing)
    /// is also treated as effectful so dead-code elimination preserves
    /// faults.
    pub fn has_side_effect(&self) -> bool {
        match self {
            Instr::StoreGlobal { .. }
            | Instr::Lock { .. }
            | Instr::Unlock { .. }
            | Instr::Call { .. }
            | Instr::CallNative { .. }
            | Instr::Raise { .. }
            | Instr::BytesSet { .. } => true,
            Instr::Bin { op, .. } | Instr::BinImm { op, .. } => {
                matches!(op, BinOp::Div | BinOp::Rem)
            }
            Instr::BytesGet { .. } | Instr::BytesSlice { .. } | Instr::BytesNew { .. } => true,
            // Fused forms that write globals or touch locks are effectful
            // regardless of operator.
            Instr::GlobalFold { .. }
            | Instr::GlobalFoldImm { .. }
            | Instr::LockedStore { .. }
            | Instr::LockedFoldImm { .. } => true,
            _ => false,
        }
    }

    /// The profile tag for this instruction.
    #[inline]
    pub fn opcode(&self) -> crate::cost::Opcode {
        use crate::cost::Opcode;
        match self {
            Instr::Const { .. } => Opcode::Const,
            Instr::Mov { .. } => Opcode::Mov,
            Instr::Bin { .. } => Opcode::Bin,
            Instr::Un { .. } => Opcode::Un,
            Instr::LoadGlobal { .. } => Opcode::LoadGlobal,
            Instr::StoreGlobal { .. } => Opcode::StoreGlobal,
            Instr::Lock { .. } => Opcode::Lock,
            Instr::Unlock { .. } => Opcode::Unlock,
            Instr::Call { .. } => Opcode::Call,
            Instr::CallNative { .. } => Opcode::CallNative,
            Instr::Raise { .. } => Opcode::Raise,
            Instr::BytesNew { .. } => Opcode::BytesNew,
            Instr::BytesLen { .. } => Opcode::BytesLen,
            Instr::BytesGet { .. } => Opcode::BytesGet,
            Instr::BytesSet { .. } => Opcode::BytesSet,
            Instr::BytesConcat { .. } => Opcode::BytesConcat,
            Instr::BytesSlice { .. } => Opcode::BytesSlice,
            Instr::BinImm { .. } => Opcode::BinImm,
            Instr::GlobalFold { .. } => Opcode::GlobalFold,
            Instr::GlobalFoldImm { .. } => Opcode::GlobalFoldImm,
            Instr::LockedStore { .. } => Opcode::LockedStore,
            Instr::LockedFoldImm { .. } => Opcode::LockedFoldImm,
        }
    }

    /// Abstract cost of this instruction in interpreter charge units: 1 for
    /// plain instructions, the constituent count for fused superinstructions
    /// (so fuel and budget semantics are unchanged by fusion).
    pub fn charge_units(&self) -> u64 {
        match self {
            Instr::BinImm { .. } => 2,        // const + bin
            Instr::GlobalFold { .. } => 3,    // load + bin + store
            Instr::GlobalFoldImm { .. } => 4, // load + const + bin + store
            Instr::LockedStore { .. } => 3,   // lock + store + unlock
            Instr::LockedFoldImm { .. } => 6, // lock + load + const + bin + store + unlock
            _ => 1,
        }
    }
}

/// A basic-block terminator.
#[derive(Debug, Clone, PartialEq)]
pub enum Terminator {
    /// Unconditional jump.
    Jump(crate::ids::BlockId),
    /// Conditional branch on a boolean register.
    Branch {
        cond: Reg,
        then_blk: crate::ids::BlockId,
        else_blk: crate::ids::BlockId,
    },
    /// Return from the function, optionally with a value.
    Ret(Option<Reg>),
}

impl Terminator {
    /// Calls `f` for each successor block.
    pub fn for_each_successor(&self, mut f: impl FnMut(crate::ids::BlockId)) {
        match self {
            Terminator::Jump(b) => f(*b),
            Terminator::Branch {
                then_blk, else_blk, ..
            } => {
                f(*then_blk);
                f(*else_blk);
            }
            Terminator::Ret(_) => {}
        }
    }

    /// Rewrites each successor block through `f`.
    pub fn map_successors(
        &mut self,
        mut f: impl FnMut(crate::ids::BlockId) -> crate::ids::BlockId,
    ) {
        match self {
            Terminator::Jump(b) => *b = f(*b),
            Terminator::Branch {
                then_blk, else_blk, ..
            } => {
                *then_blk = f(*then_blk);
                *else_blk = f(*else_blk);
            }
            Terminator::Ret(_) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binop_eval_arithmetic() {
        assert_eq!(
            BinOp::Add.eval(&Value::Int(2), &Value::Int(3)).unwrap(),
            Value::Int(5)
        );
        assert_eq!(
            BinOp::Mul.eval(&Value::Int(-4), &Value::Int(3)).unwrap(),
            Value::Int(-12)
        );
        assert_eq!(
            BinOp::Div.eval(&Value::Int(7), &Value::Int(2)).unwrap(),
            Value::Int(3)
        );
    }

    #[test]
    fn binop_eval_division_by_zero() {
        assert_eq!(
            BinOp::Div.eval(&Value::Int(1), &Value::Int(0)),
            Err(EvalError::DivisionByZero)
        );
        assert_eq!(
            BinOp::Rem.eval(&Value::Int(1), &Value::Int(0)),
            Err(EvalError::DivisionByZero)
        );
    }

    #[test]
    fn binop_eval_comparisons() {
        assert_eq!(
            BinOp::Lt.eval(&Value::Int(1), &Value::Int(2)).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            BinOp::Eq.eval(&Value::str("a"), &Value::str("a")).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            BinOp::Ne.eval(&Value::Unit, &Value::Int(0)).unwrap(),
            Value::Bool(true)
        );
    }

    #[test]
    fn binop_eval_type_mismatch() {
        assert!(BinOp::Add.eval(&Value::Bool(true), &Value::Int(1)).is_err());
        assert!(BinOp::And.eval(&Value::Int(1), &Value::Int(1)).is_err());
    }

    #[test]
    fn binop_wrapping_overflow() {
        assert_eq!(
            BinOp::Add
                .eval(&Value::Int(i64::MAX), &Value::Int(1))
                .unwrap(),
            Value::Int(i64::MIN)
        );
        // i64::MIN / -1 overflows with a plain `/`; wrapping_div must not panic.
        assert_eq!(
            BinOp::Div
                .eval(&Value::Int(i64::MIN), &Value::Int(-1))
                .unwrap(),
            Value::Int(i64::MIN)
        );
    }

    #[test]
    fn binop_shift_masks_amount() {
        assert_eq!(
            BinOp::Shl.eval(&Value::Int(1), &Value::Int(64)).unwrap(),
            Value::Int(1)
        );
    }

    #[test]
    fn unop_eval() {
        assert_eq!(UnOp::Neg.eval(&Value::Int(5)).unwrap(), Value::Int(-5));
        assert_eq!(
            UnOp::Not.eval(&Value::Bool(false)).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(UnOp::BNot.eval(&Value::Int(0)).unwrap(), Value::Int(-1));
        assert!(UnOp::Not.eval(&Value::Int(0)).is_err());
    }

    #[test]
    fn def_and_uses() {
        let i = Instr::Bin {
            op: BinOp::Add,
            dst: Reg(2),
            lhs: Reg(0),
            rhs: Reg(1),
        };
        assert_eq!(i.def(), Some(Reg(2)));
        let mut uses = vec![];
        i.for_each_use(|r| uses.push(r));
        assert_eq!(uses, vec![Reg(0), Reg(1)]);
    }

    #[test]
    fn map_uses_rewrites() {
        let mut i = Instr::Raise {
            event: EventId(0),
            mode: RaiseMode::Sync,
            args: vec![Reg(1), Reg(2)],
        };
        i.map_uses(|r| Reg(r.0 + 10));
        match i {
            Instr::Raise { args, .. } => assert_eq!(args, vec![Reg(11), Reg(12)]),
            _ => unreachable!(),
        }
    }

    #[test]
    fn side_effects_classification() {
        assert!(Instr::Lock {
            global: GlobalId(0)
        }
        .has_side_effect());
        assert!(!Instr::Mov {
            dst: Reg(0),
            src: Reg(1)
        }
        .has_side_effect());
        assert!(Instr::Bin {
            op: BinOp::Div,
            dst: Reg(0),
            lhs: Reg(1),
            rhs: Reg(2)
        }
        .has_side_effect());
        assert!(!Instr::Bin {
            op: BinOp::Add,
            dst: Reg(0),
            lhs: Reg(1),
            rhs: Reg(2)
        }
        .has_side_effect());
    }

    #[test]
    fn terminator_successors() {
        let mut succs = vec![];
        Terminator::Branch {
            cond: Reg(0),
            then_blk: crate::ids::BlockId(1),
            else_blk: crate::ids::BlockId(2),
        }
        .for_each_successor(|b| succs.push(b));
        assert_eq!(succs.len(), 2);
        let mut none = vec![];
        Terminator::Ret(None).for_each_successor(|b| none.push(b));
        assert!(none.is_empty());
    }
}
