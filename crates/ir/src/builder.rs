//! A convenience builder for constructing IR functions.

use crate::func::{Block, Function};
use crate::ids::{BlockId, EventId, FuncId, GlobalId, NativeId, Reg};
use crate::instr::{BinOp, Instr, RaiseMode, Terminator, UnOp};
use crate::value::Value;

/// Incrementally builds a [`Function`].
///
/// The builder starts with the entry block selected. Instructions are
/// appended to the *current* block; new blocks are created with
/// [`FunctionBuilder::new_block`] and selected with
/// [`FunctionBuilder::switch_to`]. Blocks that never receive a terminator
/// default to `ret` (no value) when [`FunctionBuilder::finish`] is called.
///
/// ```
/// use pdo_ir::{FunctionBuilder, Value, BinOp};
/// let mut b = FunctionBuilder::new("double", 1);
/// let two = b.const_value(Value::Int(2));
/// let out = b.bin(BinOp::Mul, b.param(0), two);
/// b.ret(Some(out));
/// let f = b.finish();
/// assert_eq!(f.params, 1);
/// ```
#[derive(Debug)]
pub struct FunctionBuilder {
    name: String,
    params: u16,
    reg_count: u16,
    blocks: Vec<(Vec<Instr>, Option<Terminator>)>,
    current: usize,
}

impl FunctionBuilder {
    /// Starts a function with `params` parameters (available as
    /// `b.param(0..params)`).
    pub fn new(name: impl Into<String>, params: u16) -> Self {
        FunctionBuilder {
            name: name.into(),
            params,
            reg_count: params,
            blocks: vec![(Vec::new(), None)],
            current: 0,
        }
    }

    /// The `i`-th parameter register.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn param(&self, i: u16) -> Reg {
        assert!(i < self.params, "parameter index {i} out of range");
        Reg(i)
    }

    /// Allocates a fresh register.
    pub fn new_reg(&mut self) -> Reg {
        let r = Reg(self.reg_count);
        self.reg_count = self.reg_count.checked_add(1).expect("too many registers");
        r
    }

    /// Creates a new, empty block and returns its id (does not select it).
    pub fn new_block(&mut self) -> BlockId {
        self.blocks.push((Vec::new(), None));
        BlockId::from_index(self.blocks.len() - 1)
    }

    /// Selects which block subsequent instructions are appended to.
    pub fn switch_to(&mut self, block: BlockId) {
        assert!(block.index() < self.blocks.len(), "unknown block {block}");
        self.current = block.index();
    }

    /// The currently selected block.
    pub fn current_block(&self) -> BlockId {
        BlockId::from_index(self.current)
    }

    /// Appends a raw instruction to the current block.
    pub fn push(&mut self, instr: Instr) {
        assert!(
            self.blocks[self.current].1.is_none(),
            "block {} already terminated",
            self.current
        );
        self.blocks[self.current].0.push(instr);
    }

    /// `dst = value`; returns `dst`.
    pub fn const_value(&mut self, value: Value) -> Reg {
        let dst = self.new_reg();
        self.push(Instr::Const { dst, value });
        dst
    }

    /// Shorthand for an integer constant.
    pub fn const_int(&mut self, v: i64) -> Reg {
        self.const_value(Value::Int(v))
    }

    /// Shorthand for a boolean constant.
    pub fn const_bool(&mut self, v: bool) -> Reg {
        self.const_value(Value::Bool(v))
    }

    /// `dst = src`; returns `dst`.
    pub fn mov(&mut self, src: Reg) -> Reg {
        let dst = self.new_reg();
        self.push(Instr::Mov { dst, src });
        dst
    }

    /// `dst = lhs <op> rhs`; returns `dst`.
    pub fn bin(&mut self, op: BinOp, lhs: Reg, rhs: Reg) -> Reg {
        let dst = self.new_reg();
        self.push(Instr::Bin { op, dst, lhs, rhs });
        dst
    }

    /// `dst = <op> src`; returns `dst`.
    pub fn un(&mut self, op: UnOp, src: Reg) -> Reg {
        let dst = self.new_reg();
        self.push(Instr::Un { op, dst, src });
        dst
    }

    /// `dst = globals[g]`; returns `dst`.
    pub fn load_global(&mut self, global: GlobalId) -> Reg {
        let dst = self.new_reg();
        self.push(Instr::LoadGlobal { dst, global });
        dst
    }

    /// `globals[g] = src`.
    pub fn store_global(&mut self, global: GlobalId, src: Reg) {
        self.push(Instr::StoreGlobal { global, src });
    }

    /// Acquire the state lock for `global`.
    pub fn lock(&mut self, global: GlobalId) {
        self.push(Instr::Lock { global });
    }

    /// Release the state lock for `global`.
    pub fn unlock(&mut self, global: GlobalId) {
        self.push(Instr::Unlock { global });
    }

    /// Direct call; returns the result register.
    pub fn call(&mut self, func: FuncId, args: &[Reg]) -> Reg {
        let dst = self.new_reg();
        self.push(Instr::Call {
            dst,
            func,
            args: args.to_vec(),
        });
        dst
    }

    /// Native call; returns the result register.
    pub fn call_native(&mut self, native: NativeId, args: &[Reg]) -> Reg {
        let dst = self.new_reg();
        self.push(Instr::CallNative {
            dst,
            native,
            args: args.to_vec(),
        });
        dst
    }

    /// Raise an event.
    pub fn raise(&mut self, event: EventId, mode: RaiseMode, args: &[Reg]) {
        self.push(Instr::Raise {
            event,
            mode,
            args: args.to_vec(),
        });
    }

    /// `dst = zeroed bytes of length len`; returns `dst`.
    pub fn bytes_new(&mut self, len: Reg) -> Reg {
        let dst = self.new_reg();
        self.push(Instr::BytesNew { dst, len });
        dst
    }

    /// `dst = len(bytes)`; returns `dst`.
    pub fn bytes_len(&mut self, bytes: Reg) -> Reg {
        let dst = self.new_reg();
        self.push(Instr::BytesLen { dst, bytes });
        dst
    }

    /// `dst = bytes[index]`; returns `dst`.
    pub fn bytes_get(&mut self, bytes: Reg, index: Reg) -> Reg {
        let dst = self.new_reg();
        self.push(Instr::BytesGet { dst, bytes, index });
        dst
    }

    /// `bytes[index] = value`.
    pub fn bytes_set(&mut self, bytes: Reg, index: Reg, value: Reg) {
        self.push(Instr::BytesSet {
            bytes,
            index,
            value,
        });
    }

    /// `dst = lhs ++ rhs`; returns `dst`.
    pub fn bytes_concat(&mut self, lhs: Reg, rhs: Reg) -> Reg {
        let dst = self.new_reg();
        self.push(Instr::BytesConcat { dst, lhs, rhs });
        dst
    }

    /// `dst = bytes[start..end]`; returns `dst`.
    pub fn bytes_slice(&mut self, bytes: Reg, start: Reg, end: Reg) -> Reg {
        let dst = self.new_reg();
        self.push(Instr::BytesSlice {
            dst,
            bytes,
            start,
            end,
        });
        dst
    }

    /// Terminates the current block with an unconditional jump.
    pub fn jump(&mut self, target: BlockId) {
        self.terminate(Terminator::Jump(target));
    }

    /// Terminates the current block with a conditional branch.
    pub fn branch(&mut self, cond: Reg, then_blk: BlockId, else_blk: BlockId) {
        self.terminate(Terminator::Branch {
            cond,
            then_blk,
            else_blk,
        });
    }

    /// Terminates the current block with a return.
    pub fn ret(&mut self, value: Option<Reg>) {
        self.terminate(Terminator::Ret(value));
    }

    fn terminate(&mut self, term: Terminator) {
        assert!(
            self.blocks[self.current].1.is_none(),
            "block {} already terminated",
            self.current
        );
        self.blocks[self.current].1 = Some(term);
    }

    /// Finalizes the function. Unterminated blocks become `ret` (no value).
    pub fn finish(self) -> Function {
        Function {
            name: self.name,
            params: self.params,
            reg_count: self.reg_count.max(self.params),
            blocks: self
                .blocks
                .into_iter()
                .map(|(instrs, term)| Block {
                    instrs,
                    term: term.unwrap_or(Terminator::Ret(None)),
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn straight_line_build() {
        let mut b = FunctionBuilder::new("f", 2);
        let s = b.bin(BinOp::Add, b.param(0), b.param(1));
        b.ret(Some(s));
        let f = b.finish();
        assert_eq!(f.blocks.len(), 1);
        assert_eq!(f.reg_count, 3);
        assert_eq!(f.blocks[0].term, Terminator::Ret(Some(Reg(2))));
    }

    #[test]
    fn multi_block_build() {
        let mut b = FunctionBuilder::new("f", 1);
        let t = b.new_block();
        let e = b.new_block();
        b.branch(b.param(0), t, e);
        b.switch_to(t);
        let one = b.const_int(1);
        b.ret(Some(one));
        b.switch_to(e);
        let zero = b.const_int(0);
        b.ret(Some(zero));
        let f = b.finish();
        assert_eq!(f.blocks.len(), 3);
    }

    #[test]
    fn unterminated_block_defaults_to_ret() {
        let b = FunctionBuilder::new("f", 0);
        let f = b.finish();
        assert_eq!(f.blocks[0].term, Terminator::Ret(None));
    }

    #[test]
    #[should_panic(expected = "already terminated")]
    fn pushing_after_terminator_panics() {
        let mut b = FunctionBuilder::new("f", 0);
        b.ret(None);
        b.const_int(1);
    }

    #[test]
    #[should_panic(expected = "parameter index")]
    fn param_out_of_range_panics() {
        let b = FunctionBuilder::new("f", 1);
        let _ = b.param(1);
    }
}
