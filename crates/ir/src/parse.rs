//! Assembler: parses the textual form produced by [`crate::display`].
//!
//! The grammar is line-oriented. Declarations (`event`, `global`, `native`)
//! must precede function bodies; symbol references (`@func`, `%event`,
//! `$global`, `!native`) may refer to any declaration in the module,
//! including functions defined later (two-pass resolution).

use crate::func::{Block, Function, Module};
use crate::ids::{BlockId, FuncId, Reg};
use crate::instr::{BinOp, Instr, RaiseMode, Terminator, UnOp};
use crate::value::Value;
use std::collections::HashMap;
use std::fmt;

/// A parse failure with its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based source line.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError {
        line,
        message: message.into(),
    })
}

/// Parses a full module from assembler text.
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first syntactic or resolution
/// problem encountered.
pub fn parse_module(text: &str) -> Result<Module, ParseError> {
    let lines: Vec<(usize, &str)> = text
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, strip_comment(l).trim()))
        .filter(|(_, l)| !l.is_empty())
        .collect();

    // Pass 1: collect declarations and function names.
    let mut module = Module::new();
    let mut func_names: HashMap<String, FuncId> = HashMap::new();
    {
        let mut next_func = 0usize;
        for &(ln, line) in &lines {
            if let Some(rest) = line.strip_prefix("func @") {
                let name = rest
                    .split('(')
                    .next()
                    .ok_or_else(|| ParseError {
                        line: ln,
                        message: "malformed func header".into(),
                    })?
                    .trim();
                if func_names
                    .insert(name.to_string(), FuncId::from_index(next_func))
                    .is_some()
                {
                    return err(ln, format!("duplicate function `{name}`"));
                }
                next_func += 1;
            } else if let Some(rest) = line.strip_prefix("event ") {
                module.add_event(rest.trim());
            } else if let Some(rest) = line.strip_prefix("global ") {
                let (name, init) = rest.split_once('=').ok_or_else(|| ParseError {
                    line: ln,
                    message: "global needs `= <value>`".into(),
                })?;
                let value = parse_value(init.trim(), ln)?;
                module.add_global(name.trim(), value);
            } else if let Some(rest) = line.strip_prefix("native ") {
                module.add_native(rest.trim());
            }
        }
    }

    // Pass 2: parse function bodies.
    let mut i = 0;
    while i < lines.len() {
        let (ln, line) = lines[i];
        if line.starts_with("event ") || line.starts_with("global ") || line.starts_with("native ")
        {
            i += 1;
            continue;
        }
        if let Some(rest) = line.strip_prefix("func @") {
            let open = rest.find('(').ok_or_else(|| ParseError {
                line: ln,
                message: "func header missing `(`".into(),
            })?;
            let name = rest[..open].trim().to_string();
            let close = rest.find(')').ok_or_else(|| ParseError {
                line: ln,
                message: "func header missing `)`".into(),
            })?;
            let params: u16 = rest[open + 1..close]
                .trim()
                .parse()
                .map_err(|_| ParseError {
                    line: ln,
                    message: "bad parameter count".into(),
                })?;
            if !rest[close + 1..].trim().starts_with('{') {
                return err(ln, "func header missing `{`");
            }
            let (func, consumed) =
                parse_function_body(&lines[i + 1..], name, params, &module, &func_names)?;
            module.add_function(func);
            i += consumed + 1;
        } else {
            return err(ln, format!("unexpected top-level line: `{line}`"));
        }
    }
    Ok(module)
}

fn strip_comment(l: &str) -> &str {
    match l.find(';') {
        Some(p) => &l[..p],
        None => l,
    }
}

fn parse_value(text: &str, ln: usize) -> Result<Value, ParseError> {
    let text = text.trim();
    if text == "unit" {
        return Ok(Value::Unit);
    }
    if let Some(rest) = text.strip_prefix("int ") {
        return rest
            .trim()
            .parse::<i64>()
            .map(Value::Int)
            .map_err(|_| ParseError {
                line: ln,
                message: format!("bad int `{rest}`"),
            });
    }
    if let Some(rest) = text.strip_prefix("bool ") {
        return match rest.trim() {
            "true" => Ok(Value::Bool(true)),
            "false" => Ok(Value::Bool(false)),
            other => err(ln, format!("bad bool `{other}`")),
        };
    }
    if let Some(rest) = text.strip_prefix("bytes ") {
        let rest = rest.trim();
        if rest == "-" {
            return Ok(Value::bytes(Vec::new()));
        }
        if rest.len() % 2 != 0 {
            return err(ln, "bytes literal must have an even number of hex digits");
        }
        let mut out = Vec::with_capacity(rest.len() / 2);
        for chunk in rest.as_bytes().chunks(2) {
            let s = std::str::from_utf8(chunk).expect("hex digits are ascii");
            let byte = u8::from_str_radix(s, 16).map_err(|_| ParseError {
                line: ln,
                message: format!("bad hex byte `{s}`"),
            })?;
            out.push(byte);
        }
        return Ok(Value::bytes(out));
    }
    if let Some(rest) = text.strip_prefix("str ") {
        let rest = rest.trim();
        if rest.len() >= 2 && rest.starts_with('"') && rest.ends_with('"') {
            // Minimal unescaping: the printer only emits Rust debug escapes
            // for quotes and backslashes in our symbol-free strings.
            let inner = &rest[1..rest.len() - 1];
            let unescaped = inner.replace("\\\"", "\"").replace("\\\\", "\\");
            return Ok(Value::str(unescaped));
        }
        return err(ln, "str literal must be quoted");
    }
    err(ln, format!("unknown value `{text}`"))
}

struct FuncCtx<'m> {
    module: &'m Module,
    funcs: &'m HashMap<String, FuncId>,
}

impl FuncCtx<'_> {
    fn resolve_func(&self, tok: &str, ln: usize) -> Result<FuncId, ParseError> {
        let name = tok.strip_prefix('@').unwrap_or(tok);
        if let Some(&id) = self.funcs.get(name) {
            return Ok(id);
        }
        if let Ok(raw) = name.parse::<u32>() {
            return Ok(FuncId(raw));
        }
        err(ln, format!("unknown function `{name}`"))
    }

    fn resolve_event(&self, tok: &str, ln: usize) -> Result<crate::ids::EventId, ParseError> {
        let name = tok.strip_prefix('%').unwrap_or(tok);
        if let Some(id) = self.module.event_by_name(name) {
            return Ok(id);
        }
        if let Ok(raw) = name.parse::<u32>() {
            return Ok(crate::ids::EventId(raw));
        }
        err(ln, format!("unknown event `{name}`"))
    }

    fn resolve_global(&self, tok: &str, ln: usize) -> Result<crate::ids::GlobalId, ParseError> {
        let name = tok.strip_prefix('$').unwrap_or(tok);
        if let Some(id) = self.module.global_by_name(name) {
            return Ok(id);
        }
        if let Ok(raw) = name.parse::<u32>() {
            return Ok(crate::ids::GlobalId(raw));
        }
        err(ln, format!("unknown global `{name}`"))
    }

    fn resolve_native(&self, tok: &str, ln: usize) -> Result<crate::ids::NativeId, ParseError> {
        let name = tok.strip_prefix('!').unwrap_or(tok);
        if let Some(id) = self.module.native_by_name(name) {
            return Ok(id);
        }
        if let Ok(raw) = name.parse::<u32>() {
            return Ok(crate::ids::NativeId(raw));
        }
        err(ln, format!("unknown native `{name}`"))
    }
}

fn parse_reg(tok: &str, ln: usize) -> Result<Reg, ParseError> {
    let digits = tok.strip_prefix('r').ok_or_else(|| ParseError {
        line: ln,
        message: format!("expected register, found `{tok}`"),
    })?;
    digits.parse::<u16>().map(Reg).map_err(|_| ParseError {
        line: ln,
        message: format!("bad register `{tok}`"),
    })
}

fn parse_block_id(tok: &str, ln: usize) -> Result<BlockId, ParseError> {
    let digits = tok.strip_prefix('b').ok_or_else(|| ParseError {
        line: ln,
        message: format!("expected block, found `{tok}`"),
    })?;
    digits.parse::<u32>().map(BlockId).map_err(|_| ParseError {
        line: ln,
        message: format!("bad block `{tok}`"),
    })
}

/// Splits `name(r1, r2)` into (`name`, ["r1","r2"]).
fn parse_call_syntax(text: &str, ln: usize) -> Result<(&str, Vec<&str>), ParseError> {
    let open = text.find('(').ok_or_else(|| ParseError {
        line: ln,
        message: "missing `(`".into(),
    })?;
    let close = text.rfind(')').ok_or_else(|| ParseError {
        line: ln,
        message: "missing `)`".into(),
    })?;
    let callee = text[..open].trim();
    let inner = text[open + 1..close].trim();
    let args = if inner.is_empty() {
        Vec::new()
    } else {
        inner.split(',').map(str::trim).collect()
    };
    Ok((callee, args))
}

fn parse_arg_regs(args: &[&str], ln: usize) -> Result<Vec<Reg>, ParseError> {
    args.iter().map(|a| parse_reg(a, ln)).collect()
}

fn parse_bin_op(tok: &str, ln: usize) -> Result<BinOp, ParseError> {
    BinOp::ALL
        .iter()
        .copied()
        .find(|o| o.mnemonic() == tok)
        .ok_or_else(|| ParseError {
            line: ln,
            message: format!("unknown operator `{tok}`"),
        })
}

/// Splits `<op> $g, <tail>` — the shared shape of the `gfold`/`lfold`
/// superinstruction forms (the tail is a register or a value literal, which
/// may itself contain no comma before the first one).
fn split_fold(rest: &str, ln: usize, form: &str) -> Result<(BinOp, String, String), ParseError> {
    let (op_tok, rest) = rest.split_once(' ').ok_or_else(|| ParseError {
        line: ln,
        message: format!("`{form}` needs `<op> $global, <operand>`"),
    })?;
    let op = parse_bin_op(op_tok.trim(), ln)?;
    let (g_tok, tail) = rest.split_once(',').ok_or_else(|| ParseError {
        line: ln,
        message: format!("`{form}` needs `<op> $global, <operand>`"),
    })?;
    Ok((op, g_tok.trim().to_string(), tail.trim().to_string()))
}

#[allow(clippy::too_many_lines)]
fn parse_function_body(
    lines: &[(usize, &str)],
    name: String,
    params: u16,
    module: &Module,
    funcs: &HashMap<String, FuncId>,
) -> Result<(Function, usize), ParseError> {
    let ctx = FuncCtx { module, funcs };
    let mut blocks: Vec<Block> = Vec::new();
    let mut block_ids: Vec<BlockId> = Vec::new();
    let mut current: Option<(BlockId, Vec<Instr>, Option<Terminator>)> = None;
    let mut max_reg: i64 = i64::from(params) - 1;
    let mut consumed;

    let track = |r: Reg, max_reg: &mut i64| {
        *max_reg = (*max_reg).max(i64::from(r.0));
        r
    };

    for (idx, &(ln, line)) in lines.iter().enumerate() {
        consumed = idx + 1;
        if line == "}" {
            if let Some((bid, instrs, term)) = current.take() {
                block_ids.push(bid);
                blocks.push(Block {
                    instrs,
                    term: term.ok_or_else(|| ParseError {
                        line: ln,
                        message: format!("block {bid} missing terminator"),
                    })?,
                });
            }
            if blocks.is_empty() {
                return err(ln, "function has no blocks");
            }
            // Verify blocks were declared densely in order b0, b1, ...
            for (i, bid) in block_ids.iter().enumerate() {
                if bid.index() != i {
                    return err(
                        ln,
                        format!("blocks must be declared in order; found {bid} at position {i}"),
                    );
                }
            }
            let f = Function {
                name,
                params,
                reg_count: u16::try_from(max_reg + 1).map_err(|_| ParseError {
                    line: ln,
                    message: "too many registers".into(),
                })?,
                blocks,
            };
            return Ok((f, consumed));
        }
        if let Some(label) = line.strip_suffix(':') {
            if let Some((bid, instrs, term)) = current.take() {
                block_ids.push(bid);
                blocks.push(Block {
                    instrs,
                    term: term.ok_or_else(|| ParseError {
                        line: ln,
                        message: format!("block {bid} missing terminator"),
                    })?,
                });
            }
            current = Some((parse_block_id(label.trim(), ln)?, Vec::new(), None));
            continue;
        }
        let (_, instrs, term) = current.as_mut().ok_or_else(|| ParseError {
            line: ln,
            message: "instruction outside a block".into(),
        })?;
        if term.is_some() {
            return err(ln, "instruction after terminator");
        }

        // Terminators.
        if line == "ret" {
            *term = Some(Terminator::Ret(None));
            continue;
        }
        if let Some(rest) = line.strip_prefix("ret ") {
            *term = Some(Terminator::Ret(Some(track(
                parse_reg(rest.trim(), ln)?,
                &mut max_reg,
            ))));
            continue;
        }
        if let Some(rest) = line.strip_prefix("jump ") {
            *term = Some(Terminator::Jump(parse_block_id(rest.trim(), ln)?));
            continue;
        }
        if let Some(rest) = line.strip_prefix("br ") {
            let parts: Vec<&str> = rest.split(',').map(str::trim).collect();
            if parts.len() != 3 {
                return err(ln, "br needs `cond, then, else`");
            }
            *term = Some(Terminator::Branch {
                cond: track(parse_reg(parts[0], ln)?, &mut max_reg),
                then_blk: parse_block_id(parts[1], ln)?,
                else_blk: parse_block_id(parts[2], ln)?,
            });
            continue;
        }

        // Effect-only instructions.
        if let Some(rest) = line.strip_prefix("store ") {
            let parts: Vec<&str> = rest.split(',').map(str::trim).collect();
            if parts.len() != 2 {
                return err(ln, "store needs `$global, reg`");
            }
            instrs.push(Instr::StoreGlobal {
                global: ctx.resolve_global(parts[0], ln)?,
                src: track(parse_reg(parts[1], ln)?, &mut max_reg),
            });
            continue;
        }
        if let Some(rest) = line.strip_prefix("lock ") {
            instrs.push(Instr::Lock {
                global: ctx.resolve_global(rest.trim(), ln)?,
            });
            continue;
        }
        if let Some(rest) = line.strip_prefix("unlock ") {
            instrs.push(Instr::Unlock {
                global: ctx.resolve_global(rest.trim(), ln)?,
            });
            continue;
        }
        if let Some(rest) = line.strip_prefix("raise ") {
            let (mode_tok, call) = rest.split_once(' ').ok_or_else(|| ParseError {
                line: ln,
                message: "raise needs `<mode> %event(args)`".into(),
            })?;
            let mode = match mode_tok {
                "sync" => RaiseMode::Sync,
                "async" => RaiseMode::Async,
                "timed" => RaiseMode::Timed,
                other => return err(ln, format!("bad raise mode `{other}`")),
            };
            let (callee, args) = parse_call_syntax(call, ln)?;
            let args = parse_arg_regs(&args, ln)?;
            for &a in &args {
                track(a, &mut max_reg);
            }
            instrs.push(Instr::Raise {
                event: ctx.resolve_event(callee, ln)?,
                mode,
                args,
            });
            continue;
        }
        if let Some(rest) = line.strip_prefix("bset ") {
            let parts: Vec<&str> = rest.split(',').map(str::trim).collect();
            if parts.len() != 3 {
                return err(ln, "bset needs `bytes, index, value`");
            }
            instrs.push(Instr::BytesSet {
                bytes: track(parse_reg(parts[0], ln)?, &mut max_reg),
                index: track(parse_reg(parts[1], ln)?, &mut max_reg),
                value: track(parse_reg(parts[2], ln)?, &mut max_reg),
            });
            continue;
        }

        // Superinstructions (effect-only forms). `gfold.i` must be checked
        // before `gfold`; the prefixes are otherwise unambiguous.
        if let Some(rest) = line.strip_prefix("gfold.i ") {
            let (op, g, tail) = split_fold(rest, ln, "gfold.i")?;
            instrs.push(Instr::GlobalFoldImm {
                op,
                global: ctx.resolve_global(&g, ln)?,
                imm: parse_value(&tail, ln)?,
            });
            continue;
        }
        if let Some(rest) = line.strip_prefix("gfold ") {
            let (op, g, tail) = split_fold(rest, ln, "gfold")?;
            instrs.push(Instr::GlobalFold {
                op,
                global: ctx.resolve_global(&g, ln)?,
                src: track(parse_reg(&tail, ln)?, &mut max_reg),
            });
            continue;
        }
        if let Some(rest) = line.strip_prefix("lfold.i ") {
            let (op, g, tail) = split_fold(rest, ln, "lfold.i")?;
            instrs.push(Instr::LockedFoldImm {
                op,
                global: ctx.resolve_global(&g, ln)?,
                imm: parse_value(&tail, ln)?,
            });
            continue;
        }
        if let Some(rest) = line.strip_prefix("lstore ") {
            let parts: Vec<&str> = rest.split(',').map(str::trim).collect();
            if parts.len() != 2 {
                return err(ln, "lstore needs `$global, reg`");
            }
            instrs.push(Instr::LockedStore {
                global: ctx.resolve_global(parts[0], ln)?,
                src: track(parse_reg(parts[1], ln)?, &mut max_reg),
            });
            continue;
        }

        // `dst = op ...` forms.
        let (dst_tok, rhs) = line.split_once('=').ok_or_else(|| ParseError {
            line: ln,
            message: format!("unrecognized instruction `{line}`"),
        })?;
        let dst = track(parse_reg(dst_tok.trim(), ln)?, &mut max_reg);
        let rhs = rhs.trim();
        let (op, rest) = rhs
            .split_once(' ')
            .map_or((rhs, ""), |(op, rest)| (op, rest.trim()));
        // `call`/`native` parse their own argument syntax below.
        let operands: Vec<&str> = if rest.is_empty() || matches!(op, "call" | "native") {
            Vec::new()
        } else {
            rest.split(',').map(str::trim).collect()
        };

        let need = |n: usize| -> Result<(), ParseError> {
            if operands.len() == n {
                Ok(())
            } else {
                err(ln, format!("`{op}` needs {n} operand(s)"))
            }
        };

        let instr = match op {
            "const" => Instr::Const {
                dst,
                value: parse_value(rest, ln)?,
            },
            "mov" => {
                need(1)?;
                Instr::Mov {
                    dst,
                    src: track(parse_reg(operands[0], ln)?, &mut max_reg),
                }
            }
            "load" => {
                need(1)?;
                Instr::LoadGlobal {
                    dst,
                    global: ctx.resolve_global(operands[0], ln)?,
                }
            }
            "call" => {
                let (callee, args) = parse_call_syntax(rest, ln)?;
                let args = parse_arg_regs(&args, ln)?;
                for &a in &args {
                    track(a, &mut max_reg);
                }
                Instr::Call {
                    dst,
                    func: ctx.resolve_func(callee, ln)?,
                    args,
                }
            }
            "native" => {
                let (callee, args) = parse_call_syntax(rest, ln)?;
                let args = parse_arg_regs(&args, ln)?;
                for &a in &args {
                    track(a, &mut max_reg);
                }
                Instr::CallNative {
                    dst,
                    native: ctx.resolve_native(callee, ln)?,
                    args,
                }
            }
            "bnew" => {
                need(1)?;
                Instr::BytesNew {
                    dst,
                    len: track(parse_reg(operands[0], ln)?, &mut max_reg),
                }
            }
            "blen" => {
                need(1)?;
                Instr::BytesLen {
                    dst,
                    bytes: track(parse_reg(operands[0], ln)?, &mut max_reg),
                }
            }
            "bget" => {
                need(2)?;
                Instr::BytesGet {
                    dst,
                    bytes: track(parse_reg(operands[0], ln)?, &mut max_reg),
                    index: track(parse_reg(operands[1], ln)?, &mut max_reg),
                }
            }
            "bcat" => {
                need(2)?;
                Instr::BytesConcat {
                    dst,
                    lhs: track(parse_reg(operands[0], ln)?, &mut max_reg),
                    rhs: track(parse_reg(operands[1], ln)?, &mut max_reg),
                }
            }
            "bslice" => {
                need(3)?;
                Instr::BytesSlice {
                    dst,
                    bytes: track(parse_reg(operands[0], ln)?, &mut max_reg),
                    start: track(parse_reg(operands[1], ln)?, &mut max_reg),
                    end: track(parse_reg(operands[2], ln)?, &mut max_reg),
                }
            }
            mnemonic => {
                if let Some(base) = mnemonic.strip_suffix(".i") {
                    // `dst = <op>.i lhs, <value>`: fused Const+Bin with an
                    // immediate. The immediate is everything after the first
                    // comma (value literals contain no leading comma).
                    let op = parse_bin_op(base, ln)?;
                    let (lhs_tok, imm_tok) = rest.split_once(',').ok_or_else(|| ParseError {
                        line: ln,
                        message: format!("`{mnemonic}` needs `reg, <value>`"),
                    })?;
                    Instr::BinImm {
                        op,
                        dst,
                        lhs: track(parse_reg(lhs_tok.trim(), ln)?, &mut max_reg),
                        imm: parse_value(imm_tok.trim(), ln)?,
                    }
                } else if let Some(bin) = BinOp::ALL.iter().find(|o| o.mnemonic() == mnemonic) {
                    need(2)?;
                    Instr::Bin {
                        op: *bin,
                        dst,
                        lhs: track(parse_reg(operands[0], ln)?, &mut max_reg),
                        rhs: track(parse_reg(operands[1], ln)?, &mut max_reg),
                    }
                } else if let Some(un) = UnOp::ALL.iter().find(|o| o.mnemonic() == mnemonic) {
                    need(1)?;
                    Instr::Un {
                        op: *un,
                        dst,
                        src: track(parse_reg(operands[0], ln)?, &mut max_reg),
                    }
                } else {
                    return err(ln, format!("unknown mnemonic `{mnemonic}`"));
                }
            }
        };
        instrs.push(instr);
    }
    err(
        lines.last().map(|&(ln, _)| ln).unwrap_or(0),
        "unterminated function body (missing `}`)",
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::display::print_module;

    #[test]
    fn parse_simple_function() {
        let m = parse_module(
            "func @f(2) {\n\
             b0:\n\
               r2 = add r0, r1\n\
               ret r2\n\
             }\n",
        )
        .unwrap();
        assert_eq!(m.functions.len(), 1);
        assert_eq!(m.functions[0].params, 2);
        assert_eq!(m.functions[0].reg_count, 3);
    }

    #[test]
    fn parse_declarations_and_symbols() {
        let text = "event Ping\n\
                    global seq = int 7\n\
                    native work\n\
                    func @h(1) {\n\
                    b0:\n\
                      lock $seq\n\
                      r1 = load $seq\n\
                      r2 = add r1, r0\n\
                      store $seq, r2\n\
                      unlock $seq\n\
                      r3 = native !work(r2)\n\
                      raise sync %Ping(r3)\n\
                      ret\n\
                    }\n";
        let m = parse_module(text).unwrap();
        assert_eq!(m.events.len(), 1);
        assert_eq!(m.globals[0].init, Value::Int(7));
        let f = &m.functions[0];
        assert_eq!(f.blocks[0].instrs.len(), 7);
    }

    #[test]
    fn roundtrip_through_printer() {
        let text = "event A\n\
                    event B\n\
                    global st = bytes 0102\n\
                    native enc\n\
                    func @main(1) {\n\
                    b0:\n\
                      r1 = const int 10\n\
                      r2 = lt r0, r1\n\
                      br r2, b1, b2\n\
                    b1:\n\
                      r3 = call @helper(r0)\n\
                      raise async %B(r3)\n\
                      ret r3\n\
                    b2:\n\
                      r4 = const str \"big\"\n\
                      ret\n\
                    }\n\
                    func @helper(1) {\n\
                    b0:\n\
                      r1 = native !enc(r0)\n\
                      raise timed %A(r1, r0)\n\
                      ret r1\n\
                    }\n";
        let m1 = parse_module(text).unwrap();
        let printed = print_module(&m1);
        let m2 = parse_module(&printed).unwrap();
        assert_eq!(m1, m2, "printed form was:\n{printed}");
    }

    #[test]
    fn forward_function_references_resolve() {
        let text = "func @a(0) {\n\
                    b0:\n\
                      r0 = call @b()\n\
                      ret r0\n\
                    }\n\
                    func @b(0) {\n\
                    b0:\n\
                      r0 = const int 1\n\
                      ret r0\n\
                    }\n";
        let m = parse_module(text).unwrap();
        match &m.functions[0].blocks[0].instrs[0] {
            Instr::Call { func, .. } => assert_eq!(*func, FuncId(1)),
            other => panic!("unexpected instr {other:?}"),
        }
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let m = parse_module(
            "; a comment\n\
             \n\
             func @f(0) { ; trailing\n\
             b0:\n\
               ret ; done\n\
             }\n",
        )
        .unwrap();
        assert_eq!(m.functions.len(), 1);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse_module("func @f(0) {\nb0:\n  r0 = bogus r1\n  ret\n}\n").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("bogus"));
    }

    #[test]
    fn missing_terminator_rejected() {
        let e = parse_module("func @f(0) {\nb0:\n  r0 = const int 1\n}\n").unwrap_err();
        assert!(e.message.contains("terminator"), "{e}");
    }

    #[test]
    fn out_of_order_blocks_rejected() {
        let e = parse_module("func @f(0) {\nb1:\n  ret\n}\n").unwrap_err();
        assert!(e.message.contains("order"), "{e}");
    }

    #[test]
    fn superinstructions_roundtrip() {
        // Every fused form, each with a distinct operator and operand shape.
        let text = "global acc = int 0\n\
                    func @f(1) {\n\
                    b0:\n\
                      r1 = add.i r0, int 5\n\
                      r2 = mul.i r1, int -3\n\
                      gfold add $acc, r2\n\
                      gfold.i mul $acc, int 31\n\
                      lstore $acc, r1\n\
                      lfold.i add $acc, int 1\n\
                      ret\n\
                    }\n";
        let m1 = parse_module(text).unwrap();
        let f = &m1.functions[0];
        assert!(matches!(f.blocks[0].instrs[0], Instr::BinImm { .. }));
        assert!(matches!(f.blocks[0].instrs[2], Instr::GlobalFold { .. }));
        assert!(matches!(f.blocks[0].instrs[3], Instr::GlobalFoldImm { .. }));
        assert!(matches!(f.blocks[0].instrs[4], Instr::LockedStore { .. }));
        assert!(matches!(f.blocks[0].instrs[5], Instr::LockedFoldImm { .. }));
        let printed = print_module(&m1);
        let m2 = parse_module(&printed).unwrap();
        assert_eq!(m1, m2, "printed form was:\n{printed}");
    }

    #[test]
    fn superinstructions_roundtrip_all_value_kinds() {
        // Immediates of every value kind survive the printer.
        let text = "global g = int 0\n\
                    func @f(1) {\n\
                    b0:\n\
                      r1 = eq.i r0, bool true\n\
                      r2 = ne.i r0, bytes ab01\n\
                      r3 = eq.i r0, str \"x\"\n\
                      r4 = eq.i r0, unit\n\
                      lfold.i xor $g, int 255\n\
                      ret\n\
                    }\n";
        let m1 = parse_module(text).unwrap();
        let m2 = parse_module(&print_module(&m1)).unwrap();
        assert_eq!(m1, m2);
    }

    #[test]
    fn malformed_superinstructions_rejected() {
        // Unknown operator in a fold.
        let e =
            parse_module("global g = int 0\nfunc @f(0) {\nb0:\n  gfold bogus $g, r0\n  ret\n}\n")
                .unwrap_err();
        assert!(e.message.contains("bogus"), "{e}");
        // Missing comma.
        let e = parse_module("global g = int 0\nfunc @f(0) {\nb0:\n  lfold.i add $g\n  ret\n}\n")
            .unwrap_err();
        assert!(e.message.contains("lfold.i"), "{e}");
        // `.i` suffix on a non-binop mnemonic.
        let e =
            parse_module("func @f(0) {\nb0:\n  r0 = bogus.i r0, int 1\n  ret\n}\n").unwrap_err();
        assert!(e.message.contains("bogus"), "{e}");
    }

    #[test]
    fn bytes_and_str_values() {
        let m = parse_module(
            "global b = bytes -\n\
             global c = bytes ff00\n\
             global s = str \"hi\"\n",
        )
        .unwrap();
        assert_eq!(m.globals[0].init, Value::bytes(vec![]));
        assert_eq!(m.globals[1].init, Value::bytes(vec![0xff, 0x00]));
        assert_eq!(m.globals[2].init, Value::str("hi"));
    }
}
