//! Abstract cost accounting.
//!
//! The paper attributes event overhead to four sources: indirect handler
//! calls, argument marshaling, state maintenance (locking), and redundant
//! work across handlers. The interpreter and the event runtime increment
//! these counters so tests and the report harness can attribute savings to
//! each source deterministically (wall-clock benches measure the same paths
//! with Criterion).

use std::fmt;
use std::ops::{Add, AddAssign};

/// Deterministic execution cost counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CostCounter {
    /// IR instructions executed (including terminators).
    pub instrs: u64,
    /// Direct IR-to-IR calls.
    pub calls: u64,
    /// Native (Rust) calls.
    pub native_calls: u64,
    /// Handler invocations made *indirectly* through the registry.
    pub indirect_calls: u64,
    /// Handler invocations made through a specialized direct path.
    pub direct_handler_calls: u64,
    /// Events raised synchronously.
    pub raises_sync: u64,
    /// Events raised asynchronously (incl. timed).
    pub raises_async: u64,
    /// Registry lookups performed by the generic dispatch path.
    pub registry_lookups: u64,
    /// Argument values marshaled (cloned/boxed) by generic dispatch.
    pub marshaled_values: u64,
    /// Lock/unlock operations executed.
    pub lock_ops: u64,
    /// Specialized fast-path dispatches taken.
    pub fastpath_hits: u64,
    /// Specialized dispatches that failed their guard and fell back.
    pub fastpath_misses: u64,
}

impl CostCounter {
    /// A zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resets every counter to zero.
    pub fn reset(&mut self) {
        *self = Self::default();
    }

    /// A single scalar summary used by tests comparing "work done":
    /// instruction count plus dispatch and marshaling overheads, weighted
    /// roughly like their real relative costs.
    pub fn weighted_total(&self) -> u64 {
        self.instrs
            + 2 * self.calls
            + 2 * self.native_calls
            + 8 * self.indirect_calls
            + 2 * self.direct_handler_calls
            + 6 * self.registry_lookups
            + 3 * self.marshaled_values
            + 10 * self.lock_ops
            + 4 * self.raises_sync
            + 4 * self.raises_async
    }

    /// Overhead attributable purely to event plumbing (everything except
    /// the instructions of handler bodies themselves).
    pub fn dispatch_overhead(&self) -> u64 {
        8 * self.indirect_calls
            + 6 * self.registry_lookups
            + 3 * self.marshaled_values
            + 4 * self.raises_sync
            + 4 * self.raises_async
    }
}

impl Add for CostCounter {
    type Output = CostCounter;

    fn add(mut self, rhs: CostCounter) -> CostCounter {
        self += rhs;
        self
    }
}

impl AddAssign for CostCounter {
    fn add_assign(&mut self, rhs: CostCounter) {
        self.instrs += rhs.instrs;
        self.calls += rhs.calls;
        self.native_calls += rhs.native_calls;
        self.indirect_calls += rhs.indirect_calls;
        self.direct_handler_calls += rhs.direct_handler_calls;
        self.raises_sync += rhs.raises_sync;
        self.raises_async += rhs.raises_async;
        self.registry_lookups += rhs.registry_lookups;
        self.marshaled_values += rhs.marshaled_values;
        self.lock_ops += rhs.lock_ops;
        self.fastpath_hits += rhs.fastpath_hits;
        self.fastpath_misses += rhs.fastpath_misses;
    }
}

impl fmt::Display for CostCounter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "instrs={} calls={} natives={} indirect={} direct={} sync={} async={} \
             lookups={} marshaled={} locks={} fast-hit={} fast-miss={}",
            self.instrs,
            self.calls,
            self.native_calls,
            self.indirect_calls,
            self.direct_handler_calls,
            self.raises_sync,
            self.raises_async,
            self.registry_lookups,
            self.marshaled_values,
            self.lock_ops,
            self.fastpath_hits,
            self.fastpath_misses,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_accumulates() {
        let a = CostCounter {
            instrs: 10,
            lock_ops: 2,
            ..Default::default()
        };
        let b = CostCounter {
            instrs: 5,
            marshaled_values: 3,
            ..Default::default()
        };
        let c = a + b;
        assert_eq!(c.instrs, 15);
        assert_eq!(c.lock_ops, 2);
        assert_eq!(c.marshaled_values, 3);
    }

    #[test]
    fn weighted_total_monotone_in_overhead() {
        let lean = CostCounter {
            instrs: 100,
            ..Default::default()
        };
        let heavy = CostCounter {
            instrs: 100,
            indirect_calls: 10,
            marshaled_values: 20,
            ..Default::default()
        };
        assert!(heavy.weighted_total() > lean.weighted_total());
        assert_eq!(lean.dispatch_overhead(), 0);
    }

    #[test]
    fn reset_zeroes() {
        let mut c = CostCounter {
            instrs: 1,
            ..Default::default()
        };
        c.reset();
        assert_eq!(c, CostCounter::default());
    }
}
