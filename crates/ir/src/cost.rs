//! Abstract cost accounting.
//!
//! The paper attributes event overhead to four sources: indirect handler
//! calls, argument marshaling, state maintenance (locking), and redundant
//! work across handlers. The interpreter and the event runtime increment
//! these counters so tests and the report harness can attribute savings to
//! each source deterministically (wall-clock benches measure the same paths
//! with Criterion).

use std::fmt;
use std::ops::{Add, AddAssign};

/// Deterministic execution cost counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CostCounter {
    /// IR instructions executed (including terminators).
    pub instrs: u64,
    /// Direct IR-to-IR calls.
    pub calls: u64,
    /// Native (Rust) calls.
    pub native_calls: u64,
    /// Handler invocations made *indirectly* through the registry.
    pub indirect_calls: u64,
    /// Handler invocations made through a specialized direct path.
    pub direct_handler_calls: u64,
    /// Events raised synchronously.
    pub raises_sync: u64,
    /// Events raised asynchronously (incl. timed).
    pub raises_async: u64,
    /// Registry lookups performed by the generic dispatch path.
    pub registry_lookups: u64,
    /// Argument values marshaled (cloned/boxed) by generic dispatch.
    pub marshaled_values: u64,
    /// Lock/unlock operations executed.
    pub lock_ops: u64,
    /// Specialized fast-path dispatches taken.
    pub fastpath_hits: u64,
    /// Specialized dispatches that failed their guard and fell back.
    pub fastpath_misses: u64,
}

impl CostCounter {
    /// A zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resets every counter to zero.
    pub fn reset(&mut self) {
        *self = Self::default();
    }

    /// A single scalar summary used by tests comparing "work done":
    /// instruction count plus dispatch and marshaling overheads, weighted
    /// roughly like their real relative costs.
    pub fn weighted_total(&self) -> u64 {
        self.instrs
            + 2 * self.calls
            + 2 * self.native_calls
            + 8 * self.indirect_calls
            + 2 * self.direct_handler_calls
            + 6 * self.registry_lookups
            + 3 * self.marshaled_values
            + 10 * self.lock_ops
            + 4 * self.raises_sync
            + 4 * self.raises_async
    }

    /// Overhead attributable purely to event plumbing (everything except
    /// the instructions of handler bodies themselves).
    pub fn dispatch_overhead(&self) -> u64 {
        8 * self.indirect_calls
            + 6 * self.registry_lookups
            + 3 * self.marshaled_values
            + 4 * self.raises_sync
            + 4 * self.raises_async
    }
}

impl Add for CostCounter {
    type Output = CostCounter;

    fn add(mut self, rhs: CostCounter) -> CostCounter {
        self += rhs;
        self
    }
}

impl AddAssign for CostCounter {
    fn add_assign(&mut self, rhs: CostCounter) {
        self.instrs += rhs.instrs;
        self.calls += rhs.calls;
        self.native_calls += rhs.native_calls;
        self.indirect_calls += rhs.indirect_calls;
        self.direct_handler_calls += rhs.direct_handler_calls;
        self.raises_sync += rhs.raises_sync;
        self.raises_async += rhs.raises_async;
        self.registry_lookups += rhs.registry_lookups;
        self.marshaled_values += rhs.marshaled_values;
        self.lock_ops += rhs.lock_ops;
        self.fastpath_hits += rhs.fastpath_hits;
        self.fastpath_misses += rhs.fastpath_misses;
    }
}

impl fmt::Display for CostCounter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "instrs={} calls={} natives={} indirect={} direct={} sync={} async={} \
             lookups={} marshaled={} locks={} fast-hit={} fast-miss={}",
            self.instrs,
            self.calls,
            self.native_calls,
            self.indirect_calls,
            self.direct_handler_calls,
            self.raises_sync,
            self.raises_async,
            self.registry_lookups,
            self.marshaled_values,
            self.lock_ops,
            self.fastpath_hits,
            self.fastpath_misses,
        )
    }
}

/// Compact opcode tags for the interpreter's frequency profile, one per
/// [`crate::Instr`] variant (including the fused superinstruction forms).
///
/// The adjacent-pair matrix indexed by these tags is what the fusion pass
/// consumes: the paper's profile→optimize loop applied to the execution
/// engine itself, following the bytecode-profiling playbook of metered VMs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Opcode {
    /// `Instr::Const`
    Const,
    /// `Instr::Mov`
    Mov,
    /// `Instr::Bin`
    Bin,
    /// `Instr::Un`
    Un,
    /// `Instr::LoadGlobal`
    LoadGlobal,
    /// `Instr::StoreGlobal`
    StoreGlobal,
    /// `Instr::Lock`
    Lock,
    /// `Instr::Unlock`
    Unlock,
    /// `Instr::Call`
    Call,
    /// `Instr::CallNative`
    CallNative,
    /// `Instr::Raise`
    Raise,
    /// `Instr::BytesNew`
    BytesNew,
    /// `Instr::BytesLen`
    BytesLen,
    /// `Instr::BytesGet`
    BytesGet,
    /// `Instr::BytesSet`
    BytesSet,
    /// `Instr::BytesConcat`
    BytesConcat,
    /// `Instr::BytesSlice`
    BytesSlice,
    /// `Instr::BinImm` (fused `Const`+`Bin`)
    BinImm,
    /// `Instr::GlobalFold` (fused `LoadGlobal`+`Bin`+`StoreGlobal`)
    GlobalFold,
    /// `Instr::GlobalFoldImm` (fused `LoadGlobal`+`Const`+`Bin`+`StoreGlobal`)
    GlobalFoldImm,
    /// `Instr::LockedStore` (fused `Lock`+`StoreGlobal`+`Unlock`)
    LockedStore,
    /// `Instr::LockedFoldImm` (fused locked read-modify-write)
    LockedFoldImm,
}

/// Number of distinct [`Opcode`] tags (array dimension for profiles).
pub const OPCODE_COUNT: usize = 22;

impl Opcode {
    /// All opcodes, in tag order.
    pub const ALL: [Opcode; OPCODE_COUNT] = [
        Opcode::Const,
        Opcode::Mov,
        Opcode::Bin,
        Opcode::Un,
        Opcode::LoadGlobal,
        Opcode::StoreGlobal,
        Opcode::Lock,
        Opcode::Unlock,
        Opcode::Call,
        Opcode::CallNative,
        Opcode::Raise,
        Opcode::BytesNew,
        Opcode::BytesLen,
        Opcode::BytesGet,
        Opcode::BytesSet,
        Opcode::BytesConcat,
        Opcode::BytesSlice,
        Opcode::BinImm,
        Opcode::GlobalFold,
        Opcode::GlobalFoldImm,
        Opcode::LockedStore,
        Opcode::LockedFoldImm,
    ];

    /// The tag as an array index.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable lowercase name, used as the `op` label on exported metrics.
    pub fn name(self) -> &'static str {
        match self {
            Opcode::Const => "const",
            Opcode::Mov => "mov",
            Opcode::Bin => "bin",
            Opcode::Un => "un",
            Opcode::LoadGlobal => "load_global",
            Opcode::StoreGlobal => "store_global",
            Opcode::Lock => "lock",
            Opcode::Unlock => "unlock",
            Opcode::Call => "call",
            Opcode::CallNative => "call_native",
            Opcode::Raise => "raise",
            Opcode::BytesNew => "bytes_new",
            Opcode::BytesLen => "bytes_len",
            Opcode::BytesGet => "bytes_get",
            Opcode::BytesSet => "bytes_set",
            Opcode::BytesConcat => "bytes_concat",
            Opcode::BytesSlice => "bytes_slice",
            Opcode::BinImm => "bin_imm",
            Opcode::GlobalFold => "global_fold",
            Opcode::GlobalFoldImm => "global_fold_imm",
            Opcode::LockedStore => "locked_store",
            Opcode::LockedFoldImm => "locked_fold_imm",
        }
    }

    /// True for superinstruction tags produced by the fusion pass.
    pub fn is_fused(self) -> bool {
        matches!(
            self,
            Opcode::BinImm
                | Opcode::GlobalFold
                | Opcode::GlobalFoldImm
                | Opcode::LockedStore
                | Opcode::LockedFoldImm
        )
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-opcode and adjacent-pair frequency counters.
///
/// `record` is a pair of array increments — cheap enough to leave in the
/// interpreter loop behind an `Option` that monomorphizes away when the
/// environment never supplies a profile. The pair matrix only counts pairs
/// that are adjacent *within a straight-line run*: block boundaries, calls
/// into other functions, and dispatch boundaries call [`break_chain`] so a
/// pair never spans a point the fusion pass could not rewrite.
///
/// [`break_chain`]: OpcodeProfile::break_chain
#[derive(Debug, Clone)]
pub struct OpcodeProfile {
    ops: [u64; OPCODE_COUNT],
    pairs: [u64; OPCODE_COUNT * OPCODE_COUNT],
    last: Option<Opcode>,
}

impl Default for OpcodeProfile {
    fn default() -> Self {
        Self::new()
    }
}

impl OpcodeProfile {
    /// A zeroed profile.
    pub fn new() -> Self {
        Self {
            ops: [0; OPCODE_COUNT],
            pairs: [0; OPCODE_COUNT * OPCODE_COUNT],
            last: None,
        }
    }

    /// Records one executed instruction (and the pair it forms with the
    /// previous instruction in the same straight-line run).
    #[inline]
    pub fn record(&mut self, op: Opcode) {
        self.ops[op.index()] += 1;
        if let Some(prev) = self.last {
            self.pairs[prev.index() * OPCODE_COUNT + op.index()] += 1;
        }
        self.last = Some(op);
    }

    /// Ends the current straight-line run (block boundary, call, or dispatch
    /// boundary); the next recorded opcode starts a fresh pair chain.
    #[inline]
    pub fn break_chain(&mut self) {
        self.last = None;
    }

    /// Zeroes every counter.
    pub fn reset(&mut self) {
        *self = Self::new();
    }

    /// Executions of `op`.
    pub fn count(&self, op: Opcode) -> u64 {
        self.ops[op.index()]
    }

    /// Times `b` immediately followed `a` in a straight-line run.
    pub fn pair_count(&self, a: Opcode, b: Opcode) -> u64 {
        self.pairs[a.index() * OPCODE_COUNT + b.index()]
    }

    /// Total instructions recorded.
    pub fn total(&self) -> u64 {
        self.ops.iter().sum()
    }

    /// Executions of fused superinstructions.
    pub fn fused_total(&self) -> u64 {
        Opcode::ALL
            .iter()
            .filter(|op| op.is_fused())
            .map(|op| self.count(*op))
            .sum()
    }

    /// Opcodes with a nonzero count, for metric export.
    pub fn counts(&self) -> impl Iterator<Item = (Opcode, u64)> + '_ {
        Opcode::ALL
            .iter()
            .map(move |op| (*op, self.count(*op)))
            .filter(|(_, n)| *n > 0)
    }

    /// Adjacent pairs with count ≥ `min`, hottest first.
    pub fn hot_pairs(&self, min: u64) -> Vec<(Opcode, Opcode, u64)> {
        let mut out = Vec::new();
        for a in Opcode::ALL {
            for b in Opcode::ALL {
                let n = self.pair_count(a, b);
                if n >= min {
                    out.push((a, b, n));
                }
            }
        }
        out.sort_by_key(|&(_, _, n)| std::cmp::Reverse(n));
        out
    }

    /// Folds another profile into this one (pair-chain state is not merged).
    pub fn merge(&mut self, other: &OpcodeProfile) {
        for i in 0..OPCODE_COUNT {
            self.ops[i] += other.ops[i];
        }
        for i in 0..OPCODE_COUNT * OPCODE_COUNT {
            self.pairs[i] += other.pairs[i];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_accumulates() {
        let a = CostCounter {
            instrs: 10,
            lock_ops: 2,
            ..Default::default()
        };
        let b = CostCounter {
            instrs: 5,
            marshaled_values: 3,
            ..Default::default()
        };
        let c = a + b;
        assert_eq!(c.instrs, 15);
        assert_eq!(c.lock_ops, 2);
        assert_eq!(c.marshaled_values, 3);
    }

    #[test]
    fn weighted_total_monotone_in_overhead() {
        let lean = CostCounter {
            instrs: 100,
            ..Default::default()
        };
        let heavy = CostCounter {
            instrs: 100,
            indirect_calls: 10,
            marshaled_values: 20,
            ..Default::default()
        };
        assert!(heavy.weighted_total() > lean.weighted_total());
        assert_eq!(lean.dispatch_overhead(), 0);
    }

    #[test]
    fn reset_zeroes() {
        let mut c = CostCounter {
            instrs: 1,
            ..Default::default()
        };
        c.reset();
        assert_eq!(c, CostCounter::default());
    }

    #[test]
    fn opcode_tags_are_dense_and_named() {
        assert_eq!(Opcode::ALL.len(), OPCODE_COUNT);
        for (i, op) in Opcode::ALL.iter().enumerate() {
            assert_eq!(op.index(), i);
            assert!(!op.name().is_empty());
        }
        // Names are unique (they become metric label values).
        let names: std::collections::HashSet<_> = Opcode::ALL.iter().map(|o| o.name()).collect();
        assert_eq!(names.len(), OPCODE_COUNT);
    }

    #[test]
    fn profile_records_ops_and_pairs() {
        let mut p = OpcodeProfile::new();
        p.record(Opcode::Const);
        p.record(Opcode::Bin);
        p.record(Opcode::Const);
        p.record(Opcode::Bin);
        assert_eq!(p.count(Opcode::Const), 2);
        assert_eq!(p.count(Opcode::Bin), 2);
        assert_eq!(p.pair_count(Opcode::Const, Opcode::Bin), 2);
        assert_eq!(p.pair_count(Opcode::Bin, Opcode::Const), 1);
        assert_eq!(p.total(), 4);
    }

    #[test]
    fn break_chain_splits_pairs() {
        let mut p = OpcodeProfile::new();
        p.record(Opcode::Lock);
        p.break_chain();
        p.record(Opcode::StoreGlobal);
        assert_eq!(p.pair_count(Opcode::Lock, Opcode::StoreGlobal), 0);
        assert_eq!(p.total(), 2);
    }

    #[test]
    fn fused_total_counts_only_superinstructions() {
        let mut p = OpcodeProfile::new();
        p.record(Opcode::Bin);
        p.record(Opcode::BinImm);
        p.record(Opcode::LockedFoldImm);
        assert_eq!(p.fused_total(), 2);
        assert!(Opcode::BinImm.is_fused());
        assert!(!Opcode::Bin.is_fused());
    }

    #[test]
    fn hot_pairs_sorted_descending() {
        let mut p = OpcodeProfile::new();
        for _ in 0..5 {
            p.record(Opcode::Const);
            p.record(Opcode::Bin);
        }
        p.break_chain();
        p.record(Opcode::LoadGlobal);
        p.record(Opcode::Bin);
        let hot = p.hot_pairs(1);
        assert_eq!(hot[0].0, Opcode::Const);
        assert_eq!(hot[0].1, Opcode::Bin);
        assert_eq!(hot[0].2, 5);
        assert!(hot.iter().all(|(_, _, n)| *n >= 1));
    }

    #[test]
    fn merge_accumulates_profiles() {
        let mut a = OpcodeProfile::new();
        a.record(Opcode::Mov);
        a.record(Opcode::Mov);
        let mut b = OpcodeProfile::new();
        b.record(Opcode::Mov);
        b.record(Opcode::Mov);
        a.merge(&b);
        assert_eq!(a.count(Opcode::Mov), 4);
        assert_eq!(a.pair_count(Opcode::Mov, Opcode::Mov), 2);
    }
}
