//! Robustness: the assembler must never panic — any input either parses or
//! returns a `ParseError` with a line number.

use pdo_ir::parse::parse_module;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn arbitrary_text_never_panics(text in ".{0,400}") {
        let _ = parse_module(&text);
    }

    #[test]
    fn arbitrary_assembler_like_text_never_panics(
        lines in prop::collection::vec(
            prop_oneof![
                Just("func @f(1) {".to_string()),
                Just("}".to_string()),
                Just("b0:".to_string()),
                Just("b1:".to_string()),
                Just("  ret".to_string()),
                Just("  ret r0".to_string()),
                Just("  jump b0".to_string()),
                Just("  r1 = const int 5".to_string()),
                Just("  r1 = add r0, r0".to_string()),
                Just("  raise sync %E(r0)".to_string()),
                Just("event E".to_string()),
                Just("global g = int 0".to_string()),
                Just("native n".to_string()),
                "[a-z =%@!$(){}:0-9]{0,30}".prop_map(|s| format!("  {s}")),
            ],
            0..25,
        )
    ) {
        let text = lines.join("\n");
        if let Ok(m) = parse_module(&text) {
            // Whatever parses must verify or at least not crash Display.
            let _ = pdo_ir::display::print_module(&m);
        }
    }

    #[test]
    fn error_line_numbers_are_in_range(text in "[a-z @%!$(){}:=0-9\n]{0,300}") {
        if let Err(e) = parse_module(&text) {
            let line_count = text.lines().count();
            prop_assert!(e.line <= line_count.max(1));
            prop_assert!(!e.message.is_empty());
        }
    }
}
