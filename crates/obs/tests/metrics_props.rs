//! Property tests for the observability primitives: histogram bucket
//! placement, the quantile error bound, and cross-shard merge
//! associativity (histograms and whole snapshots).

use pdo_obs::{Histogram, MetricsSnapshot};
use proptest::prelude::*;

/// Log-uniform `u64` samples: a uniform word right-shifted by a uniform
/// amount, so every magnitude (and both histogram regions) is exercised.
fn samples(max_len: usize) -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec((any::<u64>(), 0usize..64), 1..max_len)
        .prop_map(|raw| raw.into_iter().map(|(v, s)| v >> s).collect())
}

fn hist_of(values: &[u64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

/// The documented contract: estimates never under-report, and
/// over-report by at most 1/8 of the true order statistic.
fn assert_bounded(true_v: u64, est: u64) {
    assert!(
        est >= true_v,
        "quantile under-estimated: true={true_v} est={est}"
    );
    assert!(
        8u128 * u128::from(est - true_v) <= u128::from(true_v),
        "quantile error bound violated: true={true_v} est={est}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every value lands in a bucket whose range contains it: recording a
    /// single sample and asking for any quantile returns that bucket's
    /// inclusive upper bound, which must sit within the error bound of
    /// the sample itself.
    #[test]
    fn bucket_placement_brackets_the_sample(raw in any::<u64>(), shift in 0usize..64) {
        let v = raw >> shift;
        let mut h = Histogram::new();
        h.record(v);
        for q in [0.01, 0.5, 1.0] {
            assert_bounded(v, h.quantile(q));
        }
        prop_assert_eq!(h.max(), v);
        prop_assert_eq!(h.count(), 1);
        // The sample's bucket brackets it: lower ≤ v, and the bucket is
        // the only non-empty one.
        let buckets: Vec<(u64, u64)> = h.nonzero_buckets().collect();
        prop_assert_eq!(buckets.len(), 1);
        prop_assert!(buckets[0].0 <= v);
        prop_assert_eq!(buckets[0].1, 1);
    }

    /// For arbitrary sample sets and quantiles, the estimate brackets the
    /// true order statistic within the documented ≤12.5% bound.
    #[test]
    fn quantile_error_is_bounded(values in samples(64), qn in 1u32..101) {
        let q = f64::from(qn) / 100.0;
        let h = hist_of(&values);
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        let true_v = sorted[rank - 1];
        assert_bounded(true_v, h.quantile(q));
    }

    /// Histogram merge is associative and commutative — per-session
    /// histograms must roll up across shards in any grouping.
    #[test]
    fn merge_is_associative_and_commutative(
        a in samples(32),
        b in samples(32),
        c in samples(32),
    ) {
        let (ha, hb, hc) = (hist_of(&a), hist_of(&b), hist_of(&c));

        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);

        let mut right_inner = hb.clone();
        right_inner.merge(&hc);
        let mut right = ha.clone();
        right.merge(&right_inner);

        prop_assert_eq!(&left, &right);

        let mut ba = hb.clone();
        ba.merge(&ha);
        let mut ab = ha.clone();
        ab.merge(&hb);
        prop_assert_eq!(ab, ba);

        // And the union histogram is what a single flat recording gives.
        let mut flat = Histogram::new();
        for v in a.iter().chain(&b).chain(&c) {
            flat.record(*v);
        }
        prop_assert_eq!(left, flat);
    }

    /// Snapshot-level merge (the cross-shard rollup) is associative too:
    /// the rendered exposition text is identical in any grouping.
    #[test]
    fn snapshot_merge_is_associative(
        a in samples(16),
        b in samples(16),
        c in samples(16),
        counts in (any::<u32>(), any::<u32>(), any::<u32>()),
    ) {
        let shard = |values: &[u64], n: u32, id: &str| {
            let mut s = MetricsSnapshot::new();
            s.counter("pdo_events_total", "events", &[("shard", id)], u64::from(n));
            s.counter("pdo_faults_total", "faults", &[], u64::from(n % 7));
            s.histogram("pdo_lat_ns", "latency", &[("path", "fast")], &hist_of(values));
            s
        };
        let (sa, sb, sc) = (
            shard(&a, counts.0, "0"),
            shard(&b, counts.1, "1"),
            shard(&c, counts.2, "2"),
        );

        let mut left = sa.clone();
        left.merge(&sb);
        left.merge(&sc);

        let mut right_inner = sb.clone();
        right_inner.merge(&sc);
        let mut right = sa.clone();
        right.merge(&right_inner);

        prop_assert_eq!(left.render(), right.render());
        prop_assert_eq!(
            left.counter_value("pdo_faults_total", &[]),
            Some(u64::from(counts.0 % 7) + u64::from(counts.1 % 7) + u64::from(counts.2 % 7))
        );
    }
}
