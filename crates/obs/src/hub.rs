//! The shared observability handle a runtime (and the layers stacked on
//! it) writes into.
//!
//! `ObsHub` is a cheaply-clonable `Rc` handle — the runtime, the
//! adaptive engine, and the test oracle can all hold one — wrapping the
//! per-event dispatch-latency histograms and the flight recorder. The
//! hot-path contract: when observability is off the runtime holds no hub
//! at all (a single `Option` check); when on, recording is one
//! `RefCell` borrow plus an O(1) histogram/ring write. Event ids are raw
//! `u32`s; per-event histograms live in a lazily-grown dense `Vec` so
//! the dispatch path never hashes.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use crate::hist::Histogram;
use crate::recorder::{FlightRecorder, ObsKind, ObsRecord};
use crate::snapshot::MetricsSnapshot;

/// Default flight-recorder capacity.
pub const DEFAULT_RECORDER_CAPACITY: usize = 1024;

#[derive(Debug)]
struct Inner {
    /// Per-event latency histograms, indexed by raw event id: fast
    /// (compiled chain) and slow (generic) dispatch paths.
    fast: Vec<Option<Box<Histogram>>>,
    slow: Vec<Option<Box<Histogram>>>,
    recorder: FlightRecorder,
}

#[derive(Debug)]
struct Shared {
    /// Outside the `RefCell` so the per-dispatch enabled-check is a
    /// plain load, not a borrow.
    trace_dispatch: Cell<bool>,
    inner: RefCell<Inner>,
}

/// Shared observability handle: per-event dispatch histograms plus the
/// flight recorder, behind `Rc<RefCell<…>>` (runtimes are
/// single-threaded and `!Send`).
#[derive(Debug, Clone)]
pub struct ObsHub {
    shared: Rc<Shared>,
}

impl Default for ObsHub {
    fn default() -> Self {
        ObsHub::new(DEFAULT_RECORDER_CAPACITY)
    }
}

impl ObsHub {
    /// A hub whose flight recorder retains `recorder_capacity` records.
    /// Per-dispatch tracing starts off (see [`ObsHub::set_trace_dispatch`])
    /// so the default hub costs one histogram write per dispatch and the
    /// recorder keeps only the rare, interesting records.
    pub fn new(recorder_capacity: usize) -> ObsHub {
        ObsHub {
            shared: Rc::new(Shared {
                trace_dispatch: Cell::new(false),
                inner: RefCell::new(Inner {
                    fast: Vec::new(),
                    slow: Vec::new(),
                    recorder: FlightRecorder::new(recorder_capacity),
                }),
            }),
        }
    }

    /// When true, every dispatch also appends begin/end records (and raise
    /// records) to the flight recorder — a debugging mode. When false (the
    /// default) histograms still update and rarer records (faults,
    /// reprofiles, quarantines, guard misses) always land, keeping one
    /// noisy event from evicting the interesting tail.
    pub fn set_trace_dispatch(&self, on: bool) {
        self.shared.trace_dispatch.set(on);
    }

    /// Appends one flight-recorder entry.
    #[inline]
    pub fn record(&self, at_ns: u64, kind: ObsKind) {
        self.shared.inner.borrow_mut().recorder.record(at_ns, kind);
    }

    /// Dispatch completion: updates the per-event fast/slow latency
    /// histogram and (when dispatch tracing is on) the flight recorder.
    #[inline]
    pub fn dispatch_end(&self, at_ns: u64, event: u32, fast: bool, latency_ns: u64) {
        let mut inner = self.shared.inner.borrow_mut();
        let lane = if fast {
            &mut inner.fast
        } else {
            &mut inner.slow
        };
        let idx = event as usize;
        if idx >= lane.len() {
            lane.resize_with(idx + 1, || None);
        }
        lane[idx]
            .get_or_insert_with(|| Box::new(Histogram::new()))
            .record(latency_ns);
        if self.shared.trace_dispatch.get() {
            inner.recorder.record(
                at_ns,
                ObsKind::DispatchEnd {
                    event,
                    fast,
                    latency_ns,
                },
            );
        }
    }

    /// True when per-dispatch flight-recorder tracing is on.
    #[inline]
    pub fn trace_dispatch(&self) -> bool {
        self.shared.trace_dispatch.get()
    }

    /// The last `n` flight-recorder entries, oldest first.
    pub fn tail(&self, n: usize) -> Vec<ObsRecord> {
        self.shared.inner.borrow().recorder.tail(n)
    }

    /// The last `n` flight-recorder entries rendered one per line.
    pub fn dump(&self, n: usize) -> String {
        self.shared.inner.borrow().recorder.dump(n)
    }

    /// Total flight-recorder entries ever appended.
    pub fn recorded(&self) -> u64 {
        self.shared.inner.borrow().recorder.recorded()
    }

    /// Exports the per-event dispatch-latency histograms into `snap`
    /// under `pdo_dispatch_latency_ns{event="…",path="fast|slow",…}`,
    /// with `extra` labels (e.g. `shard`) appended to every series.
    pub fn export_dispatch(&self, snap: &mut MetricsSnapshot, extra: &[(&str, &str)]) {
        let inner = self.shared.inner.borrow();
        for (lane, path) in [(&inner.fast, "fast"), (&inner.slow, "slow")] {
            for (event, h) in lane.iter().enumerate() {
                let Some(h) = h else { continue };
                let ev = event.to_string();
                let mut labels: Vec<(&str, &str)> = vec![("event", &ev), ("path", path)];
                labels.extend_from_slice(extra);
                snap.histogram(
                    "pdo_dispatch_latency_ns",
                    "Per-event dispatch latency on the virtual clock, split by fast (compiled chain) vs slow (generic) path",
                    &labels,
                    h,
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatch_end_builds_per_event_lane_histograms() {
        let hub = ObsHub::new(16);
        hub.set_trace_dispatch(true);
        hub.dispatch_end(100, 3, true, 40);
        hub.dispatch_end(200, 3, true, 60);
        hub.dispatch_end(300, 3, false, 900);
        let mut snap = MetricsSnapshot::new();
        hub.export_dispatch(&mut snap, &[("shard", "0")]);
        let fast = snap
            .histogram_value(
                "pdo_dispatch_latency_ns",
                &[("event", "3"), ("path", "fast"), ("shard", "0")],
            )
            .unwrap();
        assert_eq!(fast.count(), 2);
        assert_eq!(fast.sum(), 100);
        let slow = snap
            .histogram_value(
                "pdo_dispatch_latency_ns",
                &[("event", "3"), ("path", "slow"), ("shard", "0")],
            )
            .unwrap();
        assert_eq!(slow.count(), 1);
        assert_eq!(hub.tail(10).len(), 3);
    }

    #[test]
    fn dispatch_tracing_can_be_silenced_without_losing_histograms() {
        let hub = ObsHub::new(16);
        hub.set_trace_dispatch(false);
        hub.dispatch_end(100, 1, true, 5);
        hub.record(150, ObsKind::GuardMiss { event: 1 });
        assert_eq!(hub.recorded(), 1);
        let mut snap = MetricsSnapshot::new();
        hub.export_dispatch(&mut snap, &[]);
        assert!(snap
            .histogram_value(
                "pdo_dispatch_latency_ns",
                &[("event", "1"), ("path", "fast")]
            )
            .is_some());
    }
}
