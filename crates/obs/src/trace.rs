//! Causal trace graphs: every external stimulus mints a [`TraceId`],
//! every derived action (nested raises, timer fires, dispatches, guard
//! misses, despecializations, chain-audit decisions, wire activity)
//! records a [`Span`] with a parent edge, giving a per-trace
//! happens-before DAG that spans layers (ingress → runtime → adaptive
//! engine → wire).
//!
//! The store mirrors [`crate::ObsHub`]'s hot-path contract: a runtime
//! with no store attached pays one `Option` check; an attached-but-
//! disabled store pays one extra `Cell` load (see `BENCH_trace.json`);
//! only an enabled store borrows the ring and appends. Spans are plain
//! `Send` data so shard threads can ship them to the coordinator, while
//! the store handle itself is a single-threaded `Rc` like `ObsHub`.
//!
//! Two exporters ship with the module: [`export_chrome`] emits Chrome
//! trace-event JSON loadable in `about:tracing`/Perfetto, and
//! [`export_lines`]/[`parse_lines`] round-trip a line-oriented dump the
//! chaos oracle and the offline `trace_report` analyzer consume.
//! [`critical_path`] and [`attribute`] turn a span set into a latency
//! story: fast-lane vs slow-lane vs wire vs scheduler wait.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::fmt;
use std::rc::Rc;

/// Default span-ring capacity for a [`TraceStore`].
pub const DEFAULT_TRACE_CAPACITY: usize = 4096;

/// Identifies one causal trace: minted at the external stimulus and
/// carried by every span derived from it, across layers and threads.
/// The high 16 bits carry the minting store's tag so ids from different
/// shards (and the ingress front door) never collide.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceId(pub u64);

/// Identifies one span within the process; same tag partitioning as
/// [`TraceId`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(pub u64);

/// The causal context a layer hands to the next one: which trace we are
/// in and which span is the parent of whatever happens next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceCtx {
    /// The trace every derived span joins.
    pub trace: TraceId,
    /// The span that causally precedes the next recorded span.
    pub parent: SpanId,
}

/// How a traced dispatch was reached.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchSrc {
    /// Synchronous raise: dispatched inline, no queue wait.
    Sync,
    /// Popped from the async run queue.
    Queue,
    /// Fired from the timer heap.
    Timer,
}

/// The adaptive-engine decision a [`SpanKind::ChainAudit`] span records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuditAction {
    /// A specialized chain was installed for the event.
    Install,
    /// A previously installed chain was dropped (not reproduced by the
    /// new profile).
    Drop,
    /// The runtime despecialized the chain (containment path).
    Despecialize,
    /// The self-healer quarantined the event's chain.
    Quarantine,
    /// A reprofile ran; the `why` field carries the evidence summary.
    Reprofile,
}

/// What a span describes. Each variant belongs to one layer — see
/// [`SpanKind::layer`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpanKind {
    /// An external request admitted by the ingress front door; the root
    /// of a wire-originated trace.
    Ingress {
        /// Request discriminator (`open`, `raise`, `query`, `close`).
        request: String,
        /// Ingress connection id the request arrived on.
        conn: u64,
    },
    /// A *queued* raise observed by the runtime — the enqueue half of
    /// the async/timer happens-before edge ([`SpanKind::Dispatch`] is
    /// the dequeue half). Synchronous raises record no raise span: the
    /// dispatch span represents both, keeping the hot path at one ring
    /// write per dispatch.
    Raise {
        /// Raw event id.
        event: u32,
        /// `queue` or `timer`.
        mode: DispatchSrc,
    },
    /// One handler-chain dispatch.
    Dispatch {
        /// Raw event id.
        event: u32,
        /// True when the specialized fast lane served the dispatch.
        fast: bool,
        /// How the dispatch was reached.
        src: DispatchSrc,
        /// Virtual-clock nanoseconds spent queued before dispatch began
        /// (zero for sync dispatches).
        queued_ns: u64,
    },
    /// A specialized chain's guard failed and dispatch fell back to the
    /// generic path.
    GuardMiss {
        /// Raw event id.
        event: u32,
    },
    /// The runtime removed a specialized chain (containment).
    Despecialize {
        /// Raw event id.
        event: u32,
    },
    /// An adaptive-engine decision, with the profile evidence that
    /// triggered it — the auditable "why" record.
    ChainAudit {
        /// Raw event id the decision concerns; `None` for a
        /// reprofile-level summary.
        event: Option<u32>,
        /// Which decision was taken.
        action: AuditAction,
        /// Human-readable evidence (`fresh=…`, `threshold=…`, …).
        why: String,
    },
    /// Aggregate wire activity attributable to this trace: CTP segments
    /// / retransmits or SecComm frames moved while the protocol engine
    /// ran.
    Wire {
        /// `ctp` or `seccomm`.
        proto: String,
        /// Frames/segments moved.
        frames: u64,
        /// Retransmissions among them (CTP only).
        retransmits: u64,
    },
}

impl SpanKind {
    /// The layer this span belongs to: `ingress`, `runtime`, `adapt`,
    /// or `wire`.
    pub fn layer(&self) -> &'static str {
        match self {
            SpanKind::Ingress { .. } => "ingress",
            SpanKind::Raise { .. }
            | SpanKind::Dispatch { .. }
            | SpanKind::GuardMiss { .. }
            | SpanKind::Despecialize { .. } => "runtime",
            SpanKind::ChainAudit { .. } => "adapt",
            SpanKind::Wire { .. } => "wire",
        }
    }

    /// Short display name used by both exporters.
    pub fn name(&self) -> &'static str {
        match self {
            SpanKind::Ingress { .. } => "ingress",
            SpanKind::Raise { .. } => "raise",
            SpanKind::Dispatch { .. } => "dispatch",
            SpanKind::GuardMiss { .. } => "guard_miss",
            SpanKind::Despecialize { .. } => "despecialize",
            SpanKind::ChainAudit { .. } => "audit",
            SpanKind::Wire { .. } => "wire",
        }
    }
}

impl fmt::Display for DispatchSrc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DispatchSrc::Sync => "sync",
            DispatchSrc::Queue => "queue",
            DispatchSrc::Timer => "timer",
        })
    }
}

impl fmt::Display for AuditAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AuditAction::Install => "install",
            AuditAction::Drop => "drop",
            AuditAction::Despecialize => "despecialize",
            AuditAction::Quarantine => "quarantine",
            AuditAction::Reprofile => "reprofile",
        })
    }
}

/// One node of a trace's happens-before DAG. Plain `Send` data: shard
/// threads record spans locally and ship clones to the coordinator for
/// a wire-level `TraceDump`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// This span's id.
    pub id: SpanId,
    /// The trace it belongs to.
    pub trace: TraceId,
    /// The causally preceding span, if any (roots have none).
    pub parent: Option<SpanId>,
    /// Virtual-clock start, nanoseconds.
    pub start_ns: u64,
    /// Virtual-clock end, nanoseconds (`== start_ns` for instant spans).
    pub end_ns: u64,
    /// What happened.
    pub kind: SpanKind,
}

impl Span {
    /// Span duration on the virtual clock.
    pub fn dur_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

#[derive(Debug)]
struct Ring {
    spans: Vec<Span>,
    cap: usize,
    head: usize,
    recorded: u64,
}

impl Ring {
    fn push(&mut self, span: Span) {
        if self.spans.len() < self.cap {
            self.spans.push(span);
        } else {
            self.spans[self.head] = span;
            self.head = (self.head + 1) % self.cap;
        }
        self.recorded += 1;
    }

    fn snapshot(&self) -> Vec<Span> {
        let len = self.spans.len();
        let mut out = Vec::with_capacity(len);
        for i in 0..len {
            out.push(self.spans[(self.head + i) % len.max(1)].clone());
        }
        out
    }
}

#[derive(Debug)]
struct StoreShared {
    /// Outside the `RefCell` so the per-dispatch enabled-check is a
    /// plain load, not a borrow — same contract as `ObsHub`.
    enabled: Cell<bool>,
    tag: u16,
    next_trace: Cell<u64>,
    next_span: Cell<u64>,
    ring: RefCell<Ring>,
}

/// A bounded, cheaply-clonable span store. One per shard (tagged with
/// the shard index) plus one in the ingress front door, so ids minted
/// concurrently never collide. Single-threaded like [`crate::ObsHub`];
/// cross-thread collection ships `Vec<Span>` clones.
#[derive(Debug, Clone)]
pub struct TraceStore {
    shared: Rc<StoreShared>,
}

impl Default for TraceStore {
    fn default() -> Self {
        TraceStore::new(0)
    }
}

impl TraceStore {
    /// A store whose ids carry `tag` in their high 16 bits, retaining
    /// [`DEFAULT_TRACE_CAPACITY`] spans. Starts enabled.
    pub fn new(tag: u16) -> TraceStore {
        TraceStore::with_capacity(tag, DEFAULT_TRACE_CAPACITY)
    }

    /// A store retaining at most `capacity` spans (clamped to ≥ 1).
    pub fn with_capacity(tag: u16, capacity: usize) -> TraceStore {
        TraceStore {
            shared: Rc::new(StoreShared {
                enabled: Cell::new(true),
                tag,
                next_trace: Cell::new(1),
                next_span: Cell::new(1),
                ring: RefCell::new(Ring {
                    spans: Vec::new(),
                    cap: capacity.max(1),
                    head: 0,
                    recorded: 0,
                }),
            }),
        }
    }

    /// True when spans are being recorded. The hot-path check every
    /// instrumentation site performs before doing any work.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.shared.enabled.get()
    }

    /// Turns recording on or off without detaching the store.
    pub fn set_enabled(&self, on: bool) {
        self.shared.enabled.set(on);
    }

    /// Mints a fresh trace id (tag-partitioned).
    #[inline]
    pub fn mint_trace(&self) -> TraceId {
        let n = self.shared.next_trace.get();
        self.shared.next_trace.set(n + 1);
        TraceId((u64::from(self.shared.tag) << 48) | n)
    }

    /// Allocates the next span id without recording anything — callers
    /// bracket work: allocate, run, then [`TraceStore::record`] the
    /// completed span (children may already reference the id).
    #[inline]
    pub fn next_span_id(&self) -> SpanId {
        let n = self.shared.next_span.get();
        self.shared.next_span.set(n + 1);
        SpanId((u64::from(self.shared.tag) << 48) | n)
    }

    /// Resolves a context: an explicit `ctx` wins; otherwise a fresh
    /// trace is minted and the span becomes its root. Returns
    /// `(trace, parent, allocated span id)`.
    #[inline]
    pub fn begin(&self, ctx: Option<TraceCtx>) -> (TraceId, Option<SpanId>, SpanId) {
        let (trace, parent) = match ctx {
            Some(c) => (c.trace, Some(c.parent)),
            None => (self.mint_trace(), None),
        };
        (trace, parent, self.next_span_id())
    }

    /// Appends a completed span to the ring.
    #[inline]
    pub fn record(&self, span: Span) {
        self.shared.ring.borrow_mut().push(span);
    }

    /// Records an instant (or pre-timed) span under `ctx` — minting a
    /// fresh trace when `ctx` is `None` — and returns the new span's
    /// context for further children. No-op returning `None` when
    /// disabled.
    #[inline]
    pub fn record_under(
        &self,
        ctx: Option<TraceCtx>,
        start_ns: u64,
        end_ns: u64,
        kind: SpanKind,
    ) -> Option<TraceCtx> {
        if !self.enabled() {
            return None;
        }
        let (trace, parent, id) = self.begin(ctx);
        self.record(Span {
            id,
            trace,
            parent,
            start_ns,
            end_ns,
            kind,
        });
        Some(TraceCtx { trace, parent: id })
    }

    /// Every retained span, oldest first.
    pub fn spans(&self) -> Vec<Span> {
        self.shared.ring.borrow().snapshot()
    }

    /// Total spans ever recorded (monotone; exceeds the ring length
    /// once the ring wraps).
    pub fn recorded(&self) -> u64 {
        self.shared.ring.borrow().recorded
    }

    /// Retained spans belonging to `trace`, oldest first.
    pub fn for_trace(&self, trace: TraceId) -> Vec<Span> {
        self.spans()
            .into_iter()
            .filter(|s| s.trace == trace)
            .collect()
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Nanoseconds → the microsecond strings Chrome's trace viewer expects
/// (`ts`/`dur` are µs; fractional part keeps ns precision).
fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

/// Exports spans as Chrome trace-event JSON (`{"traceEvents":[…]}`),
/// loadable in `about:tracing` or Perfetto. Each span becomes a
/// complete ("X") event: `pid` is the trace id (so one trace renders as
/// one process group), `tid` is the layer, and `args` carries the span
/// and parent ids so the DAG edges survive the export.
pub fn export_chrome(spans: &[Span]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    for (i, s) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let detail = match &s.kind {
            SpanKind::Ingress { request, conn } => {
                format!(
                    ",\"request\":\"{}\",\"conn\":{}",
                    json_escape(request),
                    conn
                )
            }
            SpanKind::Raise { event, mode } => format!(",\"event\":{event},\"mode\":\"{mode}\""),
            SpanKind::Dispatch {
                event,
                fast,
                src,
                queued_ns,
            } => format!(
                ",\"event\":{event},\"lane\":\"{}\",\"src\":\"{src}\",\"queued_ns\":{queued_ns}",
                if *fast { "fast" } else { "slow" }
            ),
            SpanKind::GuardMiss { event } | SpanKind::Despecialize { event } => {
                format!(",\"event\":{event}")
            }
            SpanKind::ChainAudit { event, action, why } => format!(
                ",\"event\":{},\"action\":\"{action}\",\"why\":\"{}\"",
                event.map_or_else(|| "-1".into(), |e| e.to_string()),
                json_escape(why)
            ),
            SpanKind::Wire {
                proto,
                frames,
                retransmits,
            } => format!(
                ",\"proto\":\"{}\",\"frames\":{frames},\"retransmits\":{retransmits}",
                json_escape(proto)
            ),
        };
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{},\"tid\":\"{}\",\"args\":{{\"span\":{},\"parent\":{}{detail}}}}}",
            s.kind.name(),
            s.kind.layer(),
            us(s.start_ns),
            us(s.dur_ns()),
            s.trace.0,
            s.kind.layer(),
            s.id.0,
            s.parent.map_or_else(|| "null".into(), |p| p.0.to_string()),
        ));
    }
    out.push_str("]}");
    out
}

/// Exports spans one per line in a machine-parseable `key=value` form —
/// the oracle's and `trace_report`'s input format. Inverse of
/// [`parse_lines`]. Free-text `why` fields come last on the line with
/// newlines escaped.
pub fn export_lines(spans: &[Span]) -> String {
    let mut out = String::new();
    for s in spans {
        let parent = s.parent.map_or_else(|| "-".into(), |p| p.0.to_string());
        out.push_str(&format!(
            "span trace={} id={} parent={} start={} end={} layer={} kind={}",
            s.trace.0,
            s.id.0,
            parent,
            s.start_ns,
            s.end_ns,
            s.kind.layer(),
            s.kind.name()
        ));
        match &s.kind {
            SpanKind::Ingress { request, conn } => {
                out.push_str(&format!(" req={request} conn={conn}"));
            }
            SpanKind::Raise { event, mode } => out.push_str(&format!(" event={event} mode={mode}")),
            SpanKind::Dispatch {
                event,
                fast,
                src,
                queued_ns,
            } => out.push_str(&format!(
                " event={event} lane={} src={src} queued={queued_ns}",
                if *fast { "fast" } else { "slow" }
            )),
            SpanKind::GuardMiss { event } | SpanKind::Despecialize { event } => {
                out.push_str(&format!(" event={event}"));
            }
            SpanKind::ChainAudit { event, action, why } => out.push_str(&format!(
                " event={} action={action} why={}",
                event.map_or_else(|| "-".into(), |e| e.to_string()),
                why.replace('\n', "\\n")
            )),
            SpanKind::Wire {
                proto,
                frames,
                retransmits,
            } => out.push_str(&format!(
                " proto={proto} frames={frames} retransmits={retransmits}"
            )),
        }
        out.push('\n');
    }
    out
}

/// Parses a line dump produced by [`export_lines`]; unparseable lines
/// are skipped (the oracle may interleave other diagnostics).
pub fn parse_lines(text: &str) -> Vec<Span> {
    let mut out = Vec::new();
    for line in text.lines() {
        if let Some(span) = parse_line(line.trim()) {
            out.push(span);
        }
    }
    out
}

fn parse_line(line: &str) -> Option<Span> {
    let rest = line.strip_prefix("span ")?;
    // `why=` consumes the remainder of the line; split it off first.
    let (head, why) = match rest.split_once(" why=") {
        Some((h, w)) => (h, Some(w.replace("\\n", "\n"))),
        None => (rest, None),
    };
    let mut kv = BTreeMap::new();
    for tok in head.split_whitespace() {
        let (k, v) = tok.split_once('=')?;
        kv.insert(k, v);
    }
    let trace = TraceId(kv.get("trace")?.parse().ok()?);
    let id = SpanId(kv.get("id")?.parse().ok()?);
    let parent = match *kv.get("parent")? {
        "-" => None,
        p => Some(SpanId(p.parse().ok()?)),
    };
    let start_ns: u64 = kv.get("start")?.parse().ok()?;
    let end_ns: u64 = kv.get("end")?.parse().ok()?;
    let src_of = |s: &str| match s {
        "sync" => Some(DispatchSrc::Sync),
        "queue" => Some(DispatchSrc::Queue),
        "timer" => Some(DispatchSrc::Timer),
        _ => None,
    };
    let kind = match *kv.get("kind")? {
        "ingress" => SpanKind::Ingress {
            request: (*kv.get("req")?).to_string(),
            conn: kv.get("conn")?.parse().ok()?,
        },
        "raise" => SpanKind::Raise {
            event: kv.get("event")?.parse().ok()?,
            mode: src_of(kv.get("mode")?)?,
        },
        "dispatch" => SpanKind::Dispatch {
            event: kv.get("event")?.parse().ok()?,
            fast: *kv.get("lane")? == "fast",
            src: src_of(kv.get("src")?)?,
            queued_ns: kv.get("queued")?.parse().ok()?,
        },
        "guard_miss" => SpanKind::GuardMiss {
            event: kv.get("event")?.parse().ok()?,
        },
        "despecialize" => SpanKind::Despecialize {
            event: kv.get("event")?.parse().ok()?,
        },
        "audit" => SpanKind::ChainAudit {
            event: match *kv.get("event")? {
                "-" => None,
                e => Some(e.parse().ok()?),
            },
            action: match *kv.get("action")? {
                "install" => AuditAction::Install,
                "drop" => AuditAction::Drop,
                "despecialize" => AuditAction::Despecialize,
                "quarantine" => AuditAction::Quarantine,
                "reprofile" => AuditAction::Reprofile,
                _ => return None,
            },
            why: why.unwrap_or_default(),
        },
        "wire" => SpanKind::Wire {
            proto: (*kv.get("proto")?).to_string(),
            frames: kv.get("frames")?.parse().ok()?,
            retransmits: kv.get("retransmits")?.parse().ok()?,
        },
        _ => return None,
    };
    Some(Span {
        id,
        trace,
        parent,
        start_ns,
        end_ns,
        kind,
    })
}

/// Every distinct trace id present in `spans`, ascending.
pub fn trace_ids(spans: &[Span]) -> Vec<TraceId> {
    let mut ids: Vec<TraceId> = spans.iter().map(|s| s.trace).collect();
    ids.sort();
    ids.dedup();
    ids
}

/// The critical path of `trace`: from the latest-ending span, follow
/// parent edges back to the root (or to the oldest retained ancestor if
/// the ring evicted earlier spans). Returned root-first.
pub fn critical_path(spans: &[Span], trace: TraceId) -> Vec<Span> {
    let mut by_id: BTreeMap<SpanId, &Span> = BTreeMap::new();
    let mut tip: Option<&Span> = None;
    for s in spans.iter().filter(|s| s.trace == trace) {
        by_id.insert(s.id, s);
        let better = match tip {
            None => true,
            Some(t) => (s.end_ns, s.id) > (t.end_ns, t.id),
        };
        if better {
            tip = Some(s);
        }
    }
    let mut path = Vec::new();
    let mut cur = tip;
    let mut hops = 0usize;
    while let Some(s) = cur {
        path.push(s.clone());
        hops += 1;
        if hops > by_id.len() {
            break; // defensive: a corrupt parse could introduce a cycle
        }
        cur = s.parent.and_then(|p| by_id.get(&p).copied());
    }
    path.reverse();
    path
}

/// Where a critical path's latency went, in virtual-clock nanoseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Attribution {
    /// Self time of fast-lane (specialized chain) dispatches.
    pub fast_ns: u64,
    /// Self time of slow-lane (generic) dispatches.
    pub slow_ns: u64,
    /// Self time of wire spans (CTP segments / SecComm frames).
    pub wire_ns: u64,
    /// Time spent queued (async run queue or timer heap) before
    /// dispatch began.
    pub sched_wait_ns: u64,
    /// Everything else on the path (ingress framing, raise overhead).
    pub other_ns: u64,
}

impl Attribution {
    /// Total attributed nanoseconds.
    pub fn total_ns(&self) -> u64 {
        self.fast_ns + self.slow_ns + self.wire_ns + self.sched_wait_ns + self.other_ns
    }
}

/// Attributes a critical path's latency (path as returned by
/// [`critical_path`], root-first). Nested spans are charged self time
/// only — a parent's duration minus its on-path child's — so nothing is
/// double-counted; `queued_ns` of each dispatch is charged to scheduler
/// wait.
pub fn attribute(path: &[Span]) -> Attribution {
    let mut a = Attribution::default();
    for (i, s) in path.iter().enumerate() {
        let child_dur = path.get(i + 1).map_or(0, Span::dur_ns);
        let self_ns = s.dur_ns().saturating_sub(child_dur);
        match &s.kind {
            SpanKind::Dispatch {
                fast, queued_ns, ..
            } => {
                a.sched_wait_ns += queued_ns;
                if *fast {
                    a.fast_ns += self_ns;
                } else {
                    a.slow_ns += self_ns;
                }
            }
            SpanKind::Wire { .. } => a.wire_ns += self_ns,
            _ => a.other_ns += self_ns,
        }
    }
    a
}

/// Renders a critical path as indented one-line-per-span text with an
/// attribution footer — the form the chaos oracle appends to its panic
/// message and `trace_report` prints per trace.
pub fn render_path(path: &[Span]) -> String {
    let mut out = String::new();
    for (depth, s) in path.iter().enumerate() {
        let detail = match &s.kind {
            SpanKind::Ingress { request, conn } => format!("{request} conn={conn}"),
            SpanKind::Raise { event, mode } => format!("event={event} mode={mode}"),
            SpanKind::Dispatch {
                event,
                fast,
                src,
                queued_ns,
            } => format!(
                "event={event} lane={} src={src} queued={queued_ns}ns",
                if *fast { "fast" } else { "slow" }
            ),
            SpanKind::GuardMiss { event } | SpanKind::Despecialize { event } => {
                format!("event={event}")
            }
            SpanKind::ChainAudit { event, action, why } => format!(
                "event={} action={action} why: {why}",
                event.map_or_else(|| "-".into(), |e| e.to_string())
            ),
            SpanKind::Wire {
                proto,
                frames,
                retransmits,
            } => format!("proto={proto} frames={frames} retx={retransmits}"),
        };
        out.push_str(&format!(
            "{:indent$}{} [{}] {}..{} ({}ns) {}\n",
            "",
            s.kind.name(),
            s.kind.layer(),
            s.start_ns,
            s.end_ns,
            s.dur_ns(),
            detail,
            indent = depth * 2
        ));
    }
    let a = attribute(path);
    out.push_str(&format!(
        "attribution: fast={}ns slow={}ns wire={}ns sched_wait={}ns other={}ns total={}ns\n",
        a.fast_ns,
        a.slow_ns,
        a.wire_ns,
        a.sched_wait_ns,
        a.other_ns,
        a.total_ns()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(store: &TraceStore, ctx: Option<TraceCtx>, s: u64, e: u64, kind: SpanKind) -> TraceCtx {
        store.record_under(ctx, s, e, kind).expect("enabled")
    }

    fn sample_trace(store: &TraceStore) -> TraceId {
        let root = mk(
            store,
            None,
            0,
            5000,
            SpanKind::Ingress {
                request: "raise".into(),
                conn: 7,
            },
        );
        let raise = mk(
            store,
            Some(root),
            100,
            100,
            SpanKind::Raise {
                event: 3,
                mode: DispatchSrc::Queue,
            },
        );
        let disp = mk(
            store,
            Some(raise),
            600,
            4000,
            SpanKind::Dispatch {
                event: 3,
                fast: false,
                src: DispatchSrc::Queue,
                queued_ns: 500,
            },
        );
        mk(
            store,
            Some(disp),
            700,
            700,
            SpanKind::GuardMiss { event: 3 },
        );
        mk(
            store,
            Some(disp),
            800,
            3000,
            SpanKind::Wire {
                proto: "ctp".into(),
                frames: 4,
                retransmits: 1,
            },
        );
        mk(
            store,
            Some(disp),
            3500,
            3600,
            SpanKind::ChainAudit {
                event: Some(3),
                action: AuditAction::Install,
                why: "fresh=40 threshold=0.5 cache=miss".into(),
            },
        );
        root.trace
    }

    #[test]
    fn line_dump_round_trips() {
        let store = TraceStore::new(1);
        sample_trace(&store);
        let spans = store.spans();
        let text = export_lines(&spans);
        let back = parse_lines(&text);
        assert_eq!(back, spans);
    }

    #[test]
    fn critical_path_walks_to_the_root_and_attributes_latency() {
        let store = TraceStore::new(2);
        let trace = sample_trace(&store);
        let spans = store.spans();
        let path = critical_path(&spans, trace);
        // Latest-ending span is the ingress root itself (end=5000), so
        // the path is just the root; check the dispatch-tipped subgraph
        // instead by looking at the full-trace span set.
        assert_eq!(path.first().unwrap().kind.layer(), "ingress");
        let layers: std::collections::BTreeSet<&str> =
            spans.iter().map(|s| s.kind.layer()).collect();
        assert!(layers.contains("ingress") && layers.contains("runtime"));
        assert!(layers.contains("adapt") && layers.contains("wire"));
        // Attribution on a hand-built nested path.
        let a = attribute(&critical_path(
            &spans
                .iter()
                .filter(|s| s.kind.layer() != "ingress")
                .cloned()
                .collect::<Vec<_>>(),
            trace,
        ));
        // Path: raise(0ns) -> dispatch(3400ns, queued 500).
        assert_eq!(a.sched_wait_ns, 500);
        assert_eq!(a.slow_ns, 3400);
    }

    #[test]
    fn chrome_export_contains_every_span_and_balanced_braces() {
        let store = TraceStore::new(3);
        sample_trace(&store);
        let spans = store.spans();
        let json = export_chrome(&spans);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert_eq!(json.matches("\"ph\":\"X\"").count(), spans.len());
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "balanced braces"
        );
        // Escaping: a hostile why string stays inside its JSON string.
        let s = store
            .record_under(
                None,
                0,
                1,
                SpanKind::ChainAudit {
                    event: None,
                    action: AuditAction::Reprofile,
                    why: "quote=\" slash=\\ nl=\n".into(),
                },
            )
            .unwrap();
        let json = export_chrome(&store.for_trace(s.trace));
        assert!(json.contains("quote=\\\" slash=\\\\ nl=\\n"));
    }

    #[test]
    fn ring_bounds_memory_and_recorded_is_monotone() {
        let store = TraceStore::with_capacity(4, 8);
        for i in 0..20u64 {
            store.record_under(None, i, i, SpanKind::GuardMiss { event: i as u32 });
        }
        let spans = store.spans();
        assert_eq!(spans.len(), 8);
        assert_eq!(store.recorded(), 20);
        // Oldest-first snapshot of the newest 8.
        let events: Vec<u32> = spans
            .iter()
            .map(|s| match s.kind {
                SpanKind::GuardMiss { event } => event,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(events, (12..20).collect::<Vec<u32>>());
    }

    #[test]
    fn disabled_store_records_nothing() {
        let store = TraceStore::new(5);
        store.set_enabled(false);
        assert!(store
            .record_under(None, 0, 1, SpanKind::GuardMiss { event: 1 })
            .is_none());
        assert_eq!(store.recorded(), 0);
        store.set_enabled(true);
        assert!(store
            .record_under(None, 0, 1, SpanKind::GuardMiss { event: 1 })
            .is_some());
    }

    #[test]
    fn ids_are_tag_partitioned() {
        let a = TraceStore::new(1);
        let b = TraceStore::new(2);
        assert_ne!(a.mint_trace(), b.mint_trace());
        assert_ne!(a.next_span_id(), b.next_span_id());
        assert_eq!(a.mint_trace().0 >> 48, 1);
        assert_eq!(b.next_span_id().0 >> 48, 2);
    }
}
