//! Point-in-time metric snapshots with Prometheus-style text exposition.
//!
//! A [`MetricsSnapshot`] is built at scrape time from whatever native
//! stat structs each layer keeps (pull model — the hot paths never
//! format strings). Series are keyed by family name plus a sorted label
//! set, stored in `BTreeMap`s so `render()` is deterministic; merging
//! two snapshots adds counters and gauges and merges histograms, which
//! is how per-session scrapes roll up into one server-wide snapshot.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::hist::Histogram;

/// Label set: sorted `(key, value)` pairs.
pub type Labels = Vec<(String, String)>;

fn series_key(labels: &[(String, String)]) -> String {
    let mut sorted: Vec<&(String, String)> = labels.iter().collect();
    sorted.sort();
    let mut out = String::new();
    for (i, (k, v)) in sorted.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{}\"", escape_label(v));
    }
    out
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

#[derive(Debug, Clone, PartialEq)]
enum Family {
    Counter(BTreeMap<String, u64>),
    Gauge(BTreeMap<String, i64>),
    Histogram(BTreeMap<String, Histogram>),
}

/// A point-in-time collection of metric series, renderable as
/// Prometheus-style text and mergeable across sessions and shards.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    families: BTreeMap<String, (String, Family)>,
}

impl MetricsSnapshot {
    /// An empty snapshot.
    pub fn new() -> MetricsSnapshot {
        MetricsSnapshot::default()
    }

    /// Adds `value` to the counter series `name{labels}`, registering the
    /// family with `help` on first use.
    pub fn counter(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: u64) {
        let key = series_key(&own(labels));
        match self.family(name, help, || Family::Counter(BTreeMap::new())) {
            Family::Counter(series) => *series.entry(key).or_insert(0) += value,
            _ => panic!("metric family {name} registered with a different type"),
        }
    }

    /// Adds `value` (may be negative) to the gauge series `name{labels}`.
    /// Merging sums gauges, so per-shard gauges aggregate to totals.
    pub fn gauge(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: i64) {
        let key = series_key(&own(labels));
        match self.family(name, help, || Family::Gauge(BTreeMap::new())) {
            Family::Gauge(series) => *series.entry(key).or_insert(0) += value,
            _ => panic!("metric family {name} registered with a different type"),
        }
    }

    /// Merges `hist` into the histogram series `name{labels}`.
    pub fn histogram(&mut self, name: &str, help: &str, labels: &[(&str, &str)], hist: &Histogram) {
        let key = series_key(&own(labels));
        match self.family(name, help, || Family::Histogram(BTreeMap::new())) {
            Family::Histogram(series) => {
                series.entry(key).or_insert_with(Histogram::new).merge(hist)
            }
            _ => panic!("metric family {name} registered with a different type"),
        }
    }

    fn family(&mut self, name: &str, help: &str, mk: impl FnOnce() -> Family) -> &mut Family {
        &mut self
            .families
            .entry(name.to_string())
            .or_insert_with(|| (help.to_string(), mk()))
            .1
    }

    /// Folds `other` into `self`: counters and gauges add, histograms
    /// merge. Associative and commutative, so shard snapshots roll up in
    /// any grouping.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (name, (help, fam)) in &other.families {
            match fam {
                Family::Counter(series) => {
                    for (key, v) in series {
                        match self.family(name, help, || Family::Counter(BTreeMap::new())) {
                            Family::Counter(s) => *s.entry(key.clone()).or_insert(0) += v,
                            _ => panic!("metric family {name} registered with a different type"),
                        }
                    }
                }
                Family::Gauge(series) => {
                    for (key, v) in series {
                        match self.family(name, help, || Family::Gauge(BTreeMap::new())) {
                            Family::Gauge(s) => *s.entry(key.clone()).or_insert(0) += v,
                            _ => panic!("metric family {name} registered with a different type"),
                        }
                    }
                }
                Family::Histogram(series) => {
                    for (key, h) in series {
                        match self.family(name, help, || Family::Histogram(BTreeMap::new())) {
                            Family::Histogram(s) => {
                                s.entry(key.clone()).or_insert_with(Histogram::new).merge(h)
                            }
                            _ => panic!("metric family {name} registered with a different type"),
                        }
                    }
                }
            }
        }
    }

    /// The counter value at `name{labels}`, if present.
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        match &self.families.get(name)?.1 {
            Family::Counter(s) => s.get(&series_key(&own(labels))).copied(),
            _ => None,
        }
    }

    /// The gauge value at `name{labels}`, if present.
    pub fn gauge_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<i64> {
        match &self.families.get(name)?.1 {
            Family::Gauge(s) => s.get(&series_key(&own(labels))).copied(),
            _ => None,
        }
    }

    /// The histogram at `name{labels}`, if present.
    pub fn histogram_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<&Histogram> {
        match &self.families.get(name)?.1 {
            Family::Histogram(s) => s.get(&series_key(&own(labels))),
            _ => None,
        }
    }

    /// Drops every family for which `keep` returns false. Used to strip
    /// wall-clock families (reprofile wall-ns, shard busy-ns) before
    /// comparing snapshots from runs that must agree on everything the
    /// virtual clock governs but not on host timing.
    pub fn retain_families(&mut self, mut keep: impl FnMut(&str) -> bool) {
        self.families.retain(|name, _| keep(name));
    }

    /// Prometheus-style text exposition. Deterministic: families and
    /// series render in sorted order. Histograms render summary-style
    /// (`quantile="0.5|0.9|0.99"` labels) plus `_sum`, `_count`, and
    /// `_max` series.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, (help, fam)) in &self.families {
            let _ = writeln!(out, "# HELP {name} {help}");
            match fam {
                Family::Counter(series) => {
                    let _ = writeln!(out, "# TYPE {name} counter");
                    for (key, v) in series {
                        let _ = writeln!(out, "{name}{} {v}", braced(key));
                    }
                }
                Family::Gauge(series) => {
                    let _ = writeln!(out, "# TYPE {name} gauge");
                    for (key, v) in series {
                        let _ = writeln!(out, "{name}{} {v}", braced(key));
                    }
                }
                Family::Histogram(series) => {
                    let _ = writeln!(out, "# TYPE {name} summary");
                    for (key, h) in series {
                        for (q, qs) in [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99")] {
                            let _ = writeln!(
                                out,
                                "{name}{} {}",
                                braced(&with_quantile(key, qs)),
                                h.quantile(q)
                            );
                        }
                        let _ = writeln!(out, "{name}_sum{} {}", braced(key), h.sum());
                        let _ = writeln!(out, "{name}_count{} {}", braced(key), h.count());
                        let _ = writeln!(out, "{name}_max{} {}", braced(key), h.max());
                    }
                }
            }
        }
        out
    }
}

fn own(labels: &[(&str, &str)]) -> Labels {
    labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect()
}

fn braced(key: &str) -> String {
    if key.is_empty() {
        String::new()
    } else {
        format!("{{{key}}}")
    }
}

fn with_quantile(key: &str, q: &str) -> String {
    if key.is_empty() {
        format!("quantile=\"{q}\"")
    } else {
        format!("{key},quantile=\"{q}\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_is_deterministic_and_sorted() {
        let mut s = MetricsSnapshot::new();
        s.counter("pdo_b_total", "second", &[], 2);
        s.counter("pdo_a_total", "first", &[("shard", "1")], 1);
        s.counter("pdo_a_total", "first", &[("shard", "0")], 7);
        s.gauge("pdo_live", "live things", &[], -3);
        let text = s.render();
        let a = text.find("pdo_a_total").unwrap();
        let b = text.find("pdo_b_total").unwrap();
        assert!(a < b);
        let s0 = text.find("pdo_a_total{shard=\"0\"} 7").unwrap();
        let s1 = text.find("pdo_a_total{shard=\"1\"} 1").unwrap();
        assert!(s0 < s1);
        assert!(text.contains("pdo_live -3"));
        assert_eq!(text, s.render());
    }

    #[test]
    fn histogram_renders_summary_series() {
        let mut s = MetricsSnapshot::new();
        let mut h = Histogram::new();
        for v in 1..=4u64 {
            h.record(v);
        }
        s.histogram("pdo_lat_ns", "latency", &[("path", "fast")], &h);
        let text = s.render();
        assert!(text.contains("# TYPE pdo_lat_ns summary"));
        assert!(text.contains("pdo_lat_ns{path=\"fast\",quantile=\"0.5\"} 2"));
        assert!(text.contains("pdo_lat_ns_sum{path=\"fast\"} 10"));
        assert!(text.contains("pdo_lat_ns_count{path=\"fast\"} 4"));
        assert!(text.contains("pdo_lat_ns_max{path=\"fast\"} 4"));
    }

    #[test]
    fn merge_adds_counters_and_merges_histograms() {
        let mut a = MetricsSnapshot::new();
        let mut b = MetricsSnapshot::new();
        a.counter("pdo_x_total", "x", &[("shard", "0")], 3);
        b.counter("pdo_x_total", "x", &[("shard", "0")], 4);
        b.counter("pdo_x_total", "x", &[("shard", "1")], 9);
        let mut h = Histogram::new();
        h.record(10);
        a.histogram("pdo_h_ns", "h", &[], &h);
        b.histogram("pdo_h_ns", "h", &[], &h);
        a.merge(&b);
        assert_eq!(a.counter_value("pdo_x_total", &[("shard", "0")]), Some(7));
        assert_eq!(a.counter_value("pdo_x_total", &[("shard", "1")]), Some(9));
        assert_eq!(a.histogram_value("pdo_h_ns", &[]).unwrap().count(), 2);
    }

    #[test]
    fn retain_families_drops_only_rejected_families() {
        let mut s = MetricsSnapshot::new();
        s.counter("pdo_keep_total", "kept", &[], 1);
        s.counter("pdo_wall_ns", "wall clock", &[], 9);
        let mut h = Histogram::new();
        h.record(5);
        s.histogram("pdo_wall_hist_ns", "wall hist", &[], &h);
        s.retain_families(|name| !name.starts_with("pdo_wall"));
        assert_eq!(s.counter_value("pdo_keep_total", &[]), Some(1));
        assert_eq!(s.counter_value("pdo_wall_ns", &[]), None);
        assert!(s.histogram_value("pdo_wall_hist_ns", &[]).is_none());
        assert!(!s.render().contains("pdo_wall"));
    }

    #[test]
    fn label_order_does_not_matter() {
        let mut s = MetricsSnapshot::new();
        s.counter("pdo_y_total", "y", &[("a", "1"), ("b", "2")], 1);
        s.counter("pdo_y_total", "y", &[("b", "2"), ("a", "1")], 1);
        assert_eq!(
            s.counter_value("pdo_y_total", &[("a", "1"), ("b", "2")]),
            Some(2)
        );
    }
}
