//! Log-linear latency histograms on the virtual clock.
//!
//! The paper's thesis is that profiles — cheap, always-on measurements —
//! are what let an optimizer act; `Histogram` is the operational
//! counterpart for latency. It is a fixed-size log-linear histogram
//! (8 linear sub-buckets per power-of-two octave), so recording is O(1)
//! with no allocation, quantile estimates carry a proven ≤12.5% relative
//! error bound, and two histograms merge by element-wise addition —
//! which makes per-session histograms aggregate associatively across
//! shards and servers.

/// Values below this are counted exactly (one bucket per value).
const LINEAR_MAX: u64 = 8;
/// log2 of the sub-buckets per octave; the quantile error bound is
/// `2^-SUB_BITS` (12.5%) of the true value.
const SUB_BITS: u32 = 3;
const SUB: usize = 1 << SUB_BITS;
/// Octaves above the linear region: magnitudes 3..=63.
const OCTAVES: usize = 61;
/// Total bucket count (8 exact + 61 octaves × 8 sub-buckets).
pub const BUCKETS: usize = LINEAR_MAX as usize + OCTAVES * SUB;

/// A mergeable log-linear histogram of `u64` samples (latencies in
/// virtual-clock nanoseconds, durations, sizes…).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: Box<[u64; BUCKETS]>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// The bucket a value falls into.
fn bucket_index(v: u64) -> usize {
    if v < LINEAR_MAX {
        v as usize
    } else {
        let m = 63 - v.leading_zeros(); // 3..=63
        let sub = ((v >> (m - SUB_BITS)) & (SUB as u64 - 1)) as usize;
        LINEAR_MAX as usize + (m as usize - SUB_BITS as usize) * SUB + sub
    }
}

/// Inclusive lower bound of bucket `b` (the smallest value mapping to it).
fn bucket_lower(b: usize) -> u64 {
    if b < LINEAR_MAX as usize {
        b as u64
    } else {
        let rel = b - LINEAR_MAX as usize;
        let m = (rel / SUB) as u32 + SUB_BITS;
        let sub = (rel % SUB) as u64;
        (1u64 << m) + (sub << (m - SUB_BITS))
    }
}

/// Width of bucket `b` (number of distinct values mapping to it).
fn bucket_width(b: usize) -> u64 {
    if b < 2 * LINEAR_MAX as usize {
        1
    } else {
        let m = ((b - LINEAR_MAX as usize) / SUB) as u32 + SUB_BITS;
        1u64 << (m - SUB_BITS)
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: Box::new([0; BUCKETS]),
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Records one sample. O(1), no allocation.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        if v > self.max {
            self.max = v;
        }
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest sample recorded (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Estimate of the `q`-quantile (`0.0 < q <= 1.0`) as the inclusive
    /// upper bound of the bucket holding the rank-`ceil(q·count)` sample.
    /// The estimate `e` satisfies `t <= e` and `8·(e − t) <= t` for the
    /// true order statistic `t` (≤12.5% relative overestimate); values in
    /// the linear region are exact. Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // `lower + (width − 1)`: the top bucket's exclusive end is
                // 2^64, so adding width first would overflow.
                return bucket_lower(b) + (bucket_width(b) - 1);
            }
        }
        self.max
    }

    /// Element-wise merge: the histogram of the union of both sample
    /// sets. Associative and commutative, which is what lets per-session
    /// histograms roll up across shards in any grouping.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// (bucket lower bound, count) for every non-empty bucket, ascending.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(b, &n)| (bucket_lower(b), n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_region_is_exact() {
        for v in 0..LINEAR_MAX {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_lower(v as usize), v);
            assert_eq!(bucket_width(v as usize), 1);
        }
        // The first octave (8..15) is also exact: width 1.
        for v in 8..16u64 {
            assert_eq!(bucket_lower(bucket_index(v)), v);
        }
    }

    #[test]
    fn bucket_boundaries_tile_the_domain() {
        // Consecutive buckets must tile [0, 2^63·…) with no gap or overlap.
        for b in 0..BUCKETS - 1 {
            assert_eq!(
                bucket_lower(b) + bucket_width(b),
                bucket_lower(b + 1),
                "gap/overlap between buckets {b} and {}",
                b + 1
            );
        }
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn every_value_maps_into_its_own_bucket_range() {
        for shift in 0..63 {
            for off in [0u64, 1, 3] {
                let v = (1u64 << shift).saturating_add(off);
                let b = bucket_index(v);
                let lo = bucket_lower(b);
                assert!(lo <= v && v < lo + bucket_width(b), "v={v} b={b}");
            }
        }
    }

    #[test]
    fn quantiles_and_max() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.max(), 1000);
        let p50 = h.quantile(0.5);
        assert!((500..=563).contains(&p50), "p50={p50}");
        let p99 = h.quantile(0.99);
        assert!((990..=1114).contains(&p99), "p99={p99}");
    }

    #[test]
    fn merge_equals_union() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut u = Histogram::new();
        for v in [0u64, 5, 17, 900, 1 << 40] {
            a.record(v);
            u.record(v);
        }
        for v in [3u64, 17, 65_535] {
            b.record(v);
            u.record(v);
        }
        a.merge(&b);
        assert_eq!(a, u);
    }
}
