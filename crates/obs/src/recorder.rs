//! The flight recorder: a bounded ring buffer of structured runtime
//! events, cheap enough to leave on in production and dumped post-mortem
//! (on a fault, a panic, or a chaos-oracle mismatch) to show *why* a run
//! went wrong — the last thing the dispatcher, the adaptation loop, and
//! the containment machinery did, in order, on the virtual clock.
//!
//! Records are `Copy` and appended in O(1) with no allocation; the ring
//! overwrites the oldest record once full.

use std::fmt;

/// Raise mode, mirrored here so the recorder stays dependency-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RaiseKind {
    /// Handlers run before the raiser continues.
    Sync,
    /// Enqueued for the event loop.
    Async,
    /// Enqueued with a virtual-clock delay.
    Timed,
}

impl fmt::Display for RaiseKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            RaiseKind::Sync => "sync",
            RaiseKind::Async => "async",
            RaiseKind::Timed => "timed",
        })
    }
}

/// One structured flight-recorder entry. Event ids are raw `u32`s (the
/// recorder cannot depend on `pdo-ir`); the owning runtime knows the
/// names.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObsKind {
    /// A dispatch started (fast = guarded compiled chain).
    DispatchBegin {
        /// Raw event id.
        event: u32,
        /// Fast (compiled chain) vs slow (generic registry walk) path.
        fast: bool,
    },
    /// A dispatch finished; `latency_ns` is the virtual-clock delta.
    DispatchEnd {
        /// Raw event id.
        event: u32,
        /// Fast vs slow path.
        fast: bool,
        /// Virtual-clock time the dispatch consumed.
        latency_ns: u64,
    },
    /// An event was raised.
    Raise {
        /// Raw event id.
        event: u32,
        /// Raise mode.
        mode: RaiseKind,
    },
    /// An installed chain failed its guards and fell back.
    GuardMiss {
        /// Raw event id.
        event: u32,
    },
    /// A fault (injected or organic) was recorded.
    Fault {
        /// Raw event id.
        event: u32,
        /// Short static name of the fault kind.
        kind: &'static str,
    },
    /// The adaptation loop ran a full profile-and-optimize pass.
    Reprofile {
        /// Chains the pass produced.
        chains: u32,
        /// Wall-clock duration of the pass.
        duration_ns: u64,
    },
    /// A compiled chain was installed for `event`.
    ChainInstalled {
        /// Raw event id.
        event: u32,
    },
    /// A compiled chain for `event` was dropped (shifted away or removed
    /// before a hot swap).
    ChainDropped {
        /// Raw event id.
        event: u32,
    },
    /// `event` entered quarantine until `until_ns` on the virtual clock.
    Quarantined {
        /// Raw event id.
        event: u32,
        /// Backoff expiry (virtual ns).
        until_ns: u64,
    },
    /// A quiescent session migrated between shards.
    SessionMigrated {
        /// Session id.
        session: u64,
        /// Source shard.
        from: u32,
        /// Destination shard.
        to: u32,
    },
    /// A server image (all quiescent sessions) was encoded and persisted.
    SnapshotPersisted {
        /// Sessions captured in the image.
        sessions: u32,
        /// Encoded size in bytes.
        bytes: u64,
    },
    /// A persisted server image was decoded and its sessions reopened.
    SnapshotRestored {
        /// Sessions recovered from the image.
        sessions: u32,
        /// Decoded size in bytes.
        bytes: u64,
    },
    /// One session was rebuilt from a snapshot onto `shard`.
    SessionRestored {
        /// Session id.
        session: u64,
        /// Shard the session was placed on.
        shard: u32,
    },
    /// A network connection reached the ingress and was mapped onto a
    /// shard.
    ConnOpened {
        /// Connection id (ingress-assigned, monotone).
        conn: u64,
        /// Shard the connection's commands flow to.
        shard: u32,
    },
    /// A network connection ended.
    ConnClosed {
        /// Connection id.
        conn: u64,
        /// Why: `"eof"`, `"io"`, `"corrupt"`, `"slow"`, or `"shutdown"`.
        reason: &'static str,
    },
    /// An over-capacity request was refused with a typed `Shed` reply
    /// instead of queueing unboundedly.
    RequestShed {
        /// Connection the request arrived on.
        conn: u64,
        /// Which limit fired: `"permits"`, `"queue"`, or `"quiesced"`.
        reason: &'static str,
    },
    /// The fusion pass rewrote hot instruction sequences in a function
    /// into a superinstruction — the flight record of which pattern fired
    /// where, with the frequency evidence that justified it.
    SequenceFused {
        /// Raw function id of the rewritten function.
        func: u32,
        /// Fused mnemonic (e.g. `"lfold.i"`).
        pattern: &'static str,
        /// Sites rewritten to this pattern in this function.
        sites: u32,
        /// Minimum adjacent-pair frequency along the sequence (0 when
        /// fusion ran unconditionally).
        evidence: u64,
    },
}

impl fmt::Display for ObsKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObsKind::DispatchBegin { event, fast } => {
                write!(f, "dispatch-begin e{event} path={}", path(*fast))
            }
            ObsKind::DispatchEnd {
                event,
                fast,
                latency_ns,
            } => write!(
                f,
                "dispatch-end e{event} path={} latency={latency_ns}ns",
                path(*fast)
            ),
            ObsKind::Raise { event, mode } => write!(f, "raise e{event} mode={mode}"),
            ObsKind::GuardMiss { event } => write!(f, "guard-miss e{event}"),
            ObsKind::Fault { event, kind } => write!(f, "fault e{event} kind={kind}"),
            ObsKind::Reprofile {
                chains,
                duration_ns,
            } => write!(f, "reprofile chains={chains} took={duration_ns}ns"),
            ObsKind::ChainInstalled { event } => write!(f, "chain-installed e{event}"),
            ObsKind::ChainDropped { event } => write!(f, "chain-dropped e{event}"),
            ObsKind::Quarantined { event, until_ns } => {
                write!(f, "quarantined e{event} until={until_ns}ns")
            }
            ObsKind::SessionMigrated { session, from, to } => {
                write!(f, "session-migrated s{session} shard{from}->shard{to}")
            }
            ObsKind::SnapshotPersisted { sessions, bytes } => {
                write!(f, "snapshot-persisted sessions={sessions} bytes={bytes}")
            }
            ObsKind::SnapshotRestored { sessions, bytes } => {
                write!(f, "snapshot-restored sessions={sessions} bytes={bytes}")
            }
            ObsKind::SessionRestored { session, shard } => {
                write!(f, "session-restored s{session} shard={shard}")
            }
            ObsKind::ConnOpened { conn, shard } => {
                write!(f, "conn-opened c{conn} shard={shard}")
            }
            ObsKind::ConnClosed { conn, reason } => {
                write!(f, "conn-closed c{conn} reason={reason}")
            }
            ObsKind::RequestShed { conn, reason } => {
                write!(f, "request-shed c{conn} reason={reason}")
            }
            ObsKind::SequenceFused {
                func,
                pattern,
                sites,
                evidence,
            } => write!(
                f,
                "sequence-fused f{func} pattern={pattern} sites={sites} evidence={evidence}"
            ),
        }
    }
}

fn path(fast: bool) -> &'static str {
    if fast {
        "fast"
    } else {
        "slow"
    }
}

/// One timestamped record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObsRecord {
    /// Monotone sequence number (global order across the ring's life).
    pub seq: u64,
    /// Virtual-clock timestamp.
    pub at_ns: u64,
    /// What happened.
    pub kind: ObsKind,
}

impl fmt::Display for ObsRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{:<6} t={:<12} {}", self.seq, self.at_ns, self.kind)
    }
}

/// Bounded ring buffer of [`ObsRecord`]s.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    ring: Vec<ObsRecord>,
    cap: usize,
    head: usize,
    next_seq: u64,
}

impl FlightRecorder {
    /// A recorder retaining the last `capacity` records (min 1).
    pub fn new(capacity: usize) -> FlightRecorder {
        let cap = capacity.max(1);
        FlightRecorder {
            ring: Vec::with_capacity(cap),
            cap,
            head: 0,
            next_seq: 0,
        }
    }

    /// Appends one record, overwriting the oldest when full. O(1).
    #[inline]
    pub fn record(&mut self, at_ns: u64, kind: ObsKind) {
        let rec = ObsRecord {
            seq: self.next_seq,
            at_ns,
            kind,
        };
        self.next_seq += 1;
        if self.ring.len() < self.cap {
            self.ring.push(rec);
        } else {
            self.ring[self.head] = rec;
            self.head = (self.head + 1) % self.cap;
        }
    }

    /// Total records ever appended (including overwritten ones).
    pub fn recorded(&self) -> u64 {
        self.next_seq
    }

    /// The last `n` records, oldest first.
    pub fn tail(&self, n: usize) -> Vec<ObsRecord> {
        let len = self.ring.len();
        let take = n.min(len);
        let mut out = Vec::with_capacity(take);
        for i in (len - take)..len {
            out.push(self.ring[(self.head + i) % len.max(1)]);
        }
        out
    }

    /// The last `n` records rendered one per line, oldest first — the
    /// post-mortem dump appended to fault reports and chaos-oracle
    /// failures.
    pub fn dump(&self, n: usize) -> String {
        let tail = self.tail(n);
        let mut out = String::new();
        for rec in tail {
            out.push_str(&rec.to_string());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_the_newest_records_in_order() {
        let mut r = FlightRecorder::new(4);
        for i in 0..10u32 {
            r.record(u64::from(i) * 10, ObsKind::GuardMiss { event: i });
        }
        assert_eq!(r.recorded(), 10);
        let tail = r.tail(64);
        assert_eq!(tail.len(), 4);
        let seqs: Vec<u64> = tail.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
        let two = r.tail(2);
        assert_eq!(two[0].seq, 8);
        assert_eq!(two[1].seq, 9);
    }

    #[test]
    fn dump_renders_one_line_per_record() {
        let mut r = FlightRecorder::new(8);
        r.record(
            5,
            ObsKind::DispatchBegin {
                event: 1,
                fast: true,
            },
        );
        r.record(
            7,
            ObsKind::Fault {
                event: 1,
                kind: "trap_dispatch",
            },
        );
        let dump = r.dump(8);
        assert_eq!(dump.lines().count(), 2);
        assert!(dump.contains("dispatch-begin e1 path=fast"));
        assert!(dump.contains("fault e1 kind=trap_dispatch"));
    }

    #[test]
    fn tail_larger_than_capacity_returns_everything_retained() {
        let mut r = FlightRecorder::new(3);
        // Before the ring is full: tail(n > len) is just everything.
        r.record(1, ObsKind::GuardMiss { event: 0 });
        assert_eq!(r.tail(100).len(), 1);
        for i in 1..5u32 {
            r.record(u64::from(i), ObsKind::GuardMiss { event: i });
        }
        // n > capacity clamps to the retained window, never panics and
        // never fabricates records.
        let tail = r.tail(usize::MAX);
        assert_eq!(tail.len(), 3);
        assert_eq!(
            tail.iter().map(|t| t.seq).collect::<Vec<_>>(),
            vec![2, 3, 4]
        );
        // tail(0) is empty regardless of state.
        assert!(r.tail(0).is_empty());
    }

    #[test]
    fn wraparound_preserves_oldest_first_order_across_many_overwrites() {
        let mut r = FlightRecorder::new(5);
        for i in 0..23u32 {
            r.record(u64::from(i) * 2, ObsKind::GuardMiss { event: i });
            // At every step the tail must be contiguous, strictly
            // ascending in seq, and end at the newest record.
            let tail = r.tail(5);
            let seqs: Vec<u64> = tail.iter().map(|t| t.seq).collect();
            let newest = u64::from(i);
            let oldest = newest.saturating_sub(4).min(newest + 1 - tail.len() as u64);
            assert_eq!(seqs, (oldest..=newest).collect::<Vec<u64>>());
        }
    }

    #[test]
    fn recorded_is_monotone_and_counts_overwritten_records() {
        let mut r = FlightRecorder::new(2);
        assert_eq!(r.recorded(), 0);
        let mut last = 0;
        for i in 0..9u32 {
            r.record(0, ObsKind::GuardMiss { event: i });
            let now = r.recorded();
            assert!(now > last, "recorded() must strictly increase");
            last = now;
        }
        // 9 appends through a capacity-2 ring: recorded() counts all 9,
        // while only 2 records remain retrievable.
        assert_eq!(r.recorded(), 9);
        assert_eq!(r.tail(64).len(), 2);
    }
}
