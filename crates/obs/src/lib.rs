//! `pdo-obs` — the unified observability layer for the PDO runtime
//! family.
//!
//! The paper's premise is that profiling is the optimizer's sensory
//! organ; this crate is the operational counterpart, giving every layer
//! (runtime dispatch, adaptive engine, server shards, wire/CTP/SecComm)
//! one way to measure and one way to explain:
//!
//! * [`Histogram`] — fixed-size log-linear latency histograms on the
//!   virtual clock: O(1) record, bounded quantile error, associative
//!   merge for cross-shard rollup.
//! * [`MetricsSnapshot`] — scrape-time metric collection (counters,
//!   gauges, histograms) with Prometheus-style text exposition via
//!   [`MetricsSnapshot::render`] and snapshot-level [`MetricsSnapshot::merge`].
//! * [`FlightRecorder`] / [`ObsHub`] — a bounded ring buffer of
//!   structured runtime records (dispatch, raise, guard miss, fault,
//!   reprofile, chain install/drop, quarantine) dumped post-mortem when
//!   a fault or chaos-oracle mismatch needs explaining.
//! * [`TraceStore`] / [`Span`] — causal trace graphs: a [`TraceId`]
//!   minted per external stimulus, spans with parent edges across
//!   layers (ingress, runtime, adaptive engine, wire), Chrome
//!   trace-event and line-dump exporters, and critical-path latency
//!   attribution (DESIGN.md §16).
//!
//! The crate is dependency-free by design: every other crate in the
//! workspace can use it, including over the wire boundary, and event
//! ids cross into it as raw `u32`s.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod hist;
mod hub;
mod recorder;
mod snapshot;
pub mod trace;

pub use hist::{Histogram, BUCKETS};
pub use hub::{ObsHub, DEFAULT_RECORDER_CAPACITY};
pub use recorder::{FlightRecorder, ObsKind, ObsRecord, RaiseKind};
pub use snapshot::{Labels, MetricsSnapshot};
pub use trace::{
    AuditAction, DispatchSrc, Span, SpanId, SpanKind, TraceCtx, TraceId, TraceStore,
    DEFAULT_TRACE_CAPACITY,
};
